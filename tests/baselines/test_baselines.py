"""Tests for the LambdaML, Siren, Cirrus and Fixed baselines."""

import pytest

from repro.common.errors import ConstraintError
from repro.common.types import StorageKind
from repro.analytical.pareto import pareto_front
from repro.ml.models import workload
from repro.tuning.plan import Objective, evaluate_plan
from repro.tuning.sha import SHASpec
from repro.baselines.cirrus import CirrusScheduler, cirrus_tuning_plan, vmps_only
from repro.baselines.fixed import fixed_tuning_plan
from repro.baselines.lambdaml import LambdaMLScheduler, lambdaml_tuning_plan
from repro.baselines.siren import SirenPolicy, SirenScheduler, s3_only, siren_tuning_plan


@pytest.fixture(scope="module")
def spec():
    return SHASpec(64, 2, 2)


@pytest.fixture(scope="module")
def s3_front(lr_profile):
    return pareto_front(
        [p for p in lr_profile.all_points if p.allocation.storage is StorageKind.S3]
    )


@pytest.fixture(scope="module")
def vmps_front(lr_profile):
    return pareto_front(
        [p for p in lr_profile.all_points if p.allocation.storage is StorageKind.VMPS]
    )


class TestPinning:
    def test_s3_only_filters(self, lr_profile):
        pts = s3_only(lr_profile.all_points)
        assert pts
        assert all(p.allocation.storage is StorageKind.S3 for p in pts)

    def test_vmps_only_filters(self, lr_profile):
        pts = vmps_only(lr_profile.all_points)
        assert all(p.allocation.storage is StorageKind.VMPS for p in pts)

    def test_empty_pin_rejected(self, vmps_front):
        with pytest.raises(ConstraintError):
            s3_only(vmps_front)


class TestLambdaML:
    def test_tuning_plan_is_uniform(self, lr_profile, spec):
        plan = lambdaml_tuning_plan(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=100.0
        )
        assert len({p.allocation for p in plan.stages}) == 1

    def test_training_scheduler_static(self, lr_higgs, lr_profile):
        sched = LambdaMLScheduler(
            workload=lr_higgs, candidates=lr_profile.pareto,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=5.0, seed=0,
        )
        d0 = sched.initial_decision()
        for _ in range(5):
            d = sched.on_epoch_end(0.68, 0.01, 5.0)
            assert not d.restart
            assert d.point.allocation == d0.point.allocation
        assert sched.n_searches == 1


class TestSiren:
    def test_policy_trains_and_samples_s3(self, s3_front):
        policy = SirenPolicy(
            candidates=s3_front, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=10.0, seed=0,
        )
        policy.train()
        for _ in range(10):
            assert policy.sample().allocation.storage is StorageKind.S3

    def test_policy_concentrates_on_good_actions(self, s3_front):
        """After CEM training the probability mass is not uniform."""
        import numpy as np

        policy = SirenPolicy(
            candidates=s3_front, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=10.0, seed=0,
        )
        policy.train()
        assert policy.probs.max() > 2.0 / len(s3_front)
        assert np.isclose(policy.probs.sum(), 1.0)

    def test_scheduler_readjusts_every_epoch(self, lr_higgs, s3_front):
        sched = SirenScheduler(
            workload=lr_higgs, candidates=s3_front,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=10.0, seed=0,
        )
        sched.initial_decision()
        before = sched.n_searches
        for _ in range(6):
            sched.on_epoch_end(0.68, 0.01, 5.0)
        assert sched.n_searches == before + 6

    def test_tuning_plan_front_loaded(self, lr_profile, spec, s3_front):
        cheap = min(s3_front, key=lambda p: p.cost_usd)
        from repro.tuning.plan import PartitionPlan

        budget = evaluate_plan(
            PartitionPlan.uniform(cheap, spec.n_stages), spec
        ).cost_usd * 1.5
        plan = siren_tuning_plan(
            s3_front, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget
        )
        # Early stages get at least as expensive allocations as late ones.
        assert plan.stages[0].cost_usd >= plan.stages[-1].cost_usd
        assert all(p.allocation.storage is StorageKind.S3 for p in plan.stages)


class TestCirrus:
    def test_tuning_plan_vmps_only(self, lr_profile, spec, vmps_front):
        plan = cirrus_tuning_plan(
            vmps_front, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1e6
        )
        assert all(p.allocation.storage is StorageKind.VMPS for p in plan.stages)

    def test_modified_adapts_static_does_not(self, lr_higgs, vmps_front):
        static = CirrusScheduler(
            workload=lr_higgs, candidates=vmps_front,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=5.0,
            modified=False, seed=0,
        )
        static.initial_decision()
        params = lr_higgs.curve_params()
        for e in range(1, 10):
            d = static.on_epoch_end(params.loss_at(e) * 1.5, 0.01, 5.0)
            assert not d.restart

        modified = CirrusScheduler(
            workload=lr_higgs, candidates=vmps_front,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=5.0,
            modified=True, seed=0,
        )
        modified.initial_decision()
        assert modified.n_searches >= 1

    def test_all_decisions_vmps(self, lr_higgs, vmps_front):
        sched = CirrusScheduler(
            workload=lr_higgs, candidates=vmps_front,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=5.0, seed=0,
        )
        d = sched.initial_decision()
        assert d.point.allocation.storage is StorageKind.VMPS


class TestFixed:
    def test_even_split_runs(self, lr_profile, spec):
        plan = fixed_tuning_plan(lr_profile.pareto, spec, budget_usd=50.0)
        assert len(plan.stages) == spec.n_stages

    def test_needs_budget(self, lr_profile, spec):
        from repro.workflow.runner import make_tuning_plan
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            make_tuning_plan(
                "fixed", lr_profile, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                None, None,
            )
