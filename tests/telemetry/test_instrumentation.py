"""Instrumentation wiring: components record onto the installed collectors.

Each test installs a real registry/tracer (conftest fixtures), drives one
component, and asserts the expected metric families and spans appear with
values consistent with the component's returned results.
"""

import numpy as np
import pytest

from repro.common.types import StorageKind
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.storage.catalog import make_service
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def _spec(group="g", n=4, **kw):
    defaults = dict(memory_mb=1769, load_s=1.0, compute_s=5.0, sync_s=2.0)
    defaults.update(kw)
    return EpochExecution(group=group, n_functions=n, **defaults)


class TestPlatformMetrics:
    def test_invocations_and_cold_starts(self, registry):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(n=4))
        p.execute_epoch(_spec(n=4))  # warm second epoch
        assert registry.get("repro_faas_invocations_total").value == 8
        assert registry.get("repro_faas_cold_starts_total").value == 4
        # One critical-path cold window, not n_cold windows.
        cold_s = registry.get("repro_faas_cold_start_seconds_total").value
        assert 0 < cold_s < 4 * p.platform.limits.cold_start_s

    def test_epoch_wall_histogram_matches_results(self, registry):
        p = FaaSPlatform(seed=0)
        a = p.execute_epoch(_spec())
        b = p.execute_epoch(_spec())
        (sample,) = registry.get("repro_faas_epoch_wall_seconds").snapshot().samples
        assert sample.count == 2
        assert sample.sum == a.wall_time_s + b.wall_time_s

    def test_occupancy_gauges(self, registry):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(n=6))
        assert registry.get("repro_faas_concurrency_in_use").value == 6
        assert registry.get("repro_faas_concurrency_peak_in_use").value == 6

    def test_billing_components(self, registry):
        p = FaaSPlatform(seed=0)
        res = p.execute_epoch(_spec())
        snap = registry.get("repro_faas_billed_usd_total").snapshot()
        by_component = {s.labels["component"]: s.value for s in snap.samples}
        total = by_component["invocation"] + by_component["compute"]
        assert total == pytest.approx(res.billed_usd)
        assert registry.get("repro_faas_billed_gb_seconds_total").value > 0

    def test_live_spans_cover_epoch_phases(self, registry, tracer):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(group="a"))
        names = {e.name for e in tracer.recorder.events}
        assert {"cold-start", "load", "compute", "sync"} <= names
        tracks = {e.track for e in tracer.recorder.events}
        assert tracks == {"group:a"}

    def test_no_cold_span_when_prewarmed(self, registry, tracer):
        p = FaaSPlatform(seed=0)
        p.prewarm("a", 4)
        p.execute_epoch(_spec(group="a", prewarmed=True))
        assert "cold-start" not in {e.name for e in tracer.recorder.events}


class TestWarmPoolMetrics:
    def test_hits_misses_evictions(self, registry):
        p = FaaSPlatform(seed=0, warm_ttl_s=1.0)
        p.execute_epoch(_spec(n=2, load_s=0.0, compute_s=0.1, sync_s=0.0))
        # TTL expires during a long unrelated epoch.
        p.execute_epoch(
            _spec(group="other", n=1, load_s=0.0, compute_s=50.0, sync_s=0.0)
        )
        p.execute_epoch(_spec(n=2, load_s=0.0, compute_s=0.1, sync_s=0.0))
        assert registry.get("repro_faas_warm_pool_misses_total").value >= 4
        assert registry.get("repro_faas_warm_pool_evictions_total").value >= 2

    def test_warm_hits_recorded(self, registry):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(n=3))
        p.execute_epoch(_spec(n=3))
        assert registry.get("repro_faas_warm_pool_hits_total").value == 3

    def test_prewarm_counted(self, registry):
        p = FaaSPlatform(seed=0)
        p.prewarm("g", 5)
        assert registry.get("repro_faas_warm_pool_prewarmed_total").value == 5


class TestStorageMetrics:
    def test_requests_labeled_by_kind_and_op(self, registry):
        svc = make_service(StorageKind.S3)
        svc.put("k", np.zeros(1000))
        svc.get("k")
        snap = registry.get("repro_storage_requests_total").snapshot()
        ops = {(s.labels["kind"], s.labels["op"]): s.value for s in snap.samples}
        assert ops[("s3", "put")] == 1
        assert ops[("s3", "get")] == 1

    def test_bytes_and_latency_match_legacy_metrics(self, registry):
        svc = make_service(StorageKind.DYNAMODB)
        svc.put("k", np.zeros(500))
        svc.get("k")
        mb = registry.get("repro_storage_transferred_mb_total").snapshot()
        assert mb.samples[0].value == svc.metrics.transferred_mb
        lat = registry.get("repro_storage_op_latency_seconds").snapshot()
        assert lat.samples[0].sum == svc.metrics.busy_time_s

    def test_vmps_aggregate_op(self, registry):
        svc = make_service(StorageKind.VMPS)
        svc.put("a", np.ones(100))
        svc.put("b", np.ones(100))
        svc.server_aggregate(["a", "b"], "out")
        snap = registry.get("repro_storage_requests_total").snapshot()
        ops = {(s.labels["kind"], s.labels["op"]): s.value for s in snap.samples}
        assert ops[("vmps", "aggregate")] == 1


class TestSchedulerAndPlannerMetrics:
    def test_training_run_populates_scheduler_families(
        self, registry, mobilenet, mobilenet_profile
    ):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run = run_training(
            mobilenet, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=9, max_epochs=15, profile=mobilenet_profile,
        )
        assert registry.get("repro_scheduler_searches_total").value > 0
        updates = registry.get("repro_scheduler_prediction_updates_total")
        assert updates.value > 0
        realloc = registry.get("repro_scheduler_reallocations_total").value
        holds = registry.get("repro_scheduler_holds_total").value
        assert realloc + holds > 0
        assert realloc == sum(1 for e in run.result.epochs if e.restarted)

    def test_tuning_run_populates_planner_families(
        self, registry, lr_higgs, lr_profile
    ):
        from repro.tuning.sha import SHASpec
        from repro.workflow.job import tuning_envelope
        from repro.workflow.runner import run_tuning

        spec = SHASpec(32, 2, 2)
        budget = tuning_envelope(lr_profile, spec).budget(1.3)
        run_tuning(
            lr_higgs, spec, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=5, profile=lr_profile,
        )
        assert registry.get("repro_planner_candidates_evaluated_total").value > 0
        assert registry.get("repro_planner_greedy_iterations_total").value > 0

    def test_restart_seconds_match_epoch_records(
        self, registry, mobilenet, mobilenet_profile
    ):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run = run_training(
            mobilenet, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=9, max_epochs=15, profile=mobilenet_profile,
        )
        hidden = registry.get("repro_scheduler_restart_hidden_seconds_total")
        recorded = sum(e.hidden_restart_overlap_s for e in run.result.epochs)
        assert hidden.value == recorded

    def test_profiler_pareto_metrics(self, registry, lr_higgs):
        profile_workload(lr_higgs)
        points = registry.get("repro_profiler_points_evaluated_total").value
        ratio = registry.get("repro_profiler_pareto_pruning_ratio").value
        assert points > 0
        assert 0 < ratio <= 1.0


class TestLiveTraceTimeline:
    def test_restart_overlap_span_sits_inside_running_epoch(
        self, registry, tracer, mobilenet, mobilenet_profile
    ):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run = run_training(
            mobilenet, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=9, max_epochs=15, profile=mobilenet_profile,
        )
        events = tracer.recorder.events
        epochs = {
            e.args["epoch"]: e for e in events
            if e.name == "epoch" and e.track == "epochs"
        }
        overlaps = [e for e in events if e.name == "restart-overlap"]
        if not overlaps:  # depends on whether this run reallocates
            assert all(
                r.hidden_restart_overlap_s == 0.0 for r in run.result.epochs
            )
            return
        for ov in overlaps:
            running = epochs[ov.args["epoch"]]
            # Hidden prewarm occupies the running epoch's trailing window.
            assert ov.start_s >= running.start_s - 1e-9
            end = running.start_s + running.duration_s
            assert ov.start_s + ov.duration_s <= end + 1e-9

    def test_trace_spans_end_at_jct(
        self, registry, tracer, mobilenet, mobilenet_profile
    ):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run = run_training(
            mobilenet, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=9, max_epochs=15, profile=mobilenet_profile,
        )
        end = max(e.start_s + e.duration_s for e in tracer.recorder.events)
        assert abs(end - run.result.jct_s) < 1e-6
