"""Tests for the RunReport aggregator and its text rendering."""

import json

import pytest

from repro.telemetry.exporters import from_json_payload, to_json
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import RunReport


def _registry_for_run() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_faas_cold_start_seconds_total").inc(5.0)
    reg.counter("repro_faas_invocations_total").inc(120)
    reg.counter("repro_faas_cold_starts_total").inc(10)
    reg.counter("repro_faas_billed_gb_seconds_total").inc(333.0)
    usd = reg.counter("repro_faas_billed_usd_total", labelnames=("component",))
    usd.labels(component="invocation").inc(0.01)
    usd.labels(component="compute").inc(0.08)
    usd.labels(component="storage").inc(0.01)
    reg.histogram("repro_faas_queue_wait_seconds", buckets=(1.0,)).observe(2.5)
    reg.counter("repro_scheduler_reallocations_total").inc(3)
    reg.counter("repro_scheduler_restart_hidden_seconds_total").inc(4.0)
    return reg


RUN = {"jct_s": 100.0, "cost_usd": 0.1, "comm_overhead_s": 20.0,
       "scheduling_overhead_s": 2.0}


class TestRunReport:
    def test_time_shares_are_fractions_of_jct(self):
        report = RunReport.from_registry(_registry_for_run(), run=RUN)
        rows = {r.label: r for r in report.time_rows}
        assert rows["total JCT"].value == 100.0
        assert rows["cold starts"].share == 0.05
        assert rows["gang queue wait"].value == 2.5
        assert rows["communication (sync)"].share == 0.2
        assert rows["scheduling overhead"].share == 0.02
        assert rows["restart overhead hidden"].value == 4.0

    def test_cost_split_by_component(self):
        report = RunReport.from_registry(_registry_for_run(), run=RUN)
        rows = {r.label: r for r in report.cost_rows}
        assert rows["total cost"].value == 0.1
        assert rows["compute cost"].share == pytest.approx(0.8)
        assert rows["invocation cost"].share == pytest.approx(0.1)
        assert rows["storage cost"].share == pytest.approx(0.1)

    def test_activity_counts(self):
        report = RunReport.from_registry(_registry_for_run(), run=RUN)
        rows = {r.label: r.value for r in report.activity_rows}
        assert rows["invocations"] == 120
        assert rows["cold starts"] == 10
        assert rows["scheduler reallocations"] == 3
        assert rows["billed GB-seconds"] == 333.0

    def test_total_cost_falls_back_to_billed_sum(self):
        run = {k: v for k, v in RUN.items() if k != "cost_usd"}
        report = RunReport.from_registry(_registry_for_run(), run=run)
        rows = {r.label: r for r in report.cost_rows}
        assert rows["total cost"].value == pytest.approx(0.1)

    def test_empty_capture_renders_without_error(self):
        text = RunReport.from_registry(MetricsRegistry()).render()
        assert "time breakdown" in text
        for row in RunReport.from_registry(MetricsRegistry()).time_rows:
            assert row.share is None  # no JCT ⇒ shares undefined

    def test_round_trip_through_json_document(self):
        reg = _registry_for_run()
        doc = to_json(reg.snapshot(), run=RUN, meta={"command": "train"})
        report = RunReport.from_payload(from_json_payload(doc))
        direct = RunReport.from_registry(reg, run=RUN, meta={"command": "train"})
        assert report.render() == direct.render()

    def test_render_contains_sections_and_percent(self):
        text = RunReport.from_registry(
            _registry_for_run(), run=RUN,
            meta={"command": "train", "workload": "lr-higgs"},
        ).render()
        assert "command=train workload=lr-higgs" in text
        assert "time breakdown" in text
        assert "cost breakdown" in text
        assert "activity" in text
        assert "(  5.0%)" in text  # cold-start share of JCT
        assert "$0.100000" in text

    def test_render_is_json_free_plain_text(self):
        text = RunReport.from_registry(_registry_for_run(), run=RUN).render()
        for line in text.splitlines():
            assert not line.startswith("{")
        json.dumps(text)  # printable
