"""Tests for Prometheus text exposition and the JSON round trip."""

import json
import re

import pytest

from repro.telemetry.exporters import (
    from_json_payload,
    payload_to_snapshots,
    snapshots_to_payload,
    to_json,
    to_prometheus_text,
)
from repro.telemetry.metrics import MetricsRegistry

# Prometheus text exposition format 0.0.4 line shapes.
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "Requests", labelnames=("kind", "op"))\
        .labels(kind="s3", op="get").inc(7)
    reg.counter("requests_total", labelnames=("kind", "op"))\
        .labels(kind="vmps", op="put").inc(2)
    reg.gauge("occupancy", "Slots in use").set(12)
    h = reg.histogram("latency_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    return reg


class TestPrometheusText:
    def test_every_line_parses(self):
        text = to_prometheus_text(_populated_registry().snapshot())
        for line in text.strip().splitlines():
            assert _COMMENT_LINE.match(line) or _METRIC_LINE.match(line), line

    def test_counter_gauge_and_histogram_series_present(self):
        text = to_prometheus_text(_populated_registry().snapshot())
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{kind="s3",op="get"} 7' in text
        assert '# TYPE occupancy gauge' in text
        assert 'occupancy 12' in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert 'latency_seconds_count 4' in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(_populated_registry().snapshot())
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'latency_seconds_bucket\{le="[^"]+"\} (\d+)', text
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf bucket equals total count

    def test_empty_registry_exports_empty(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("k",)).labels(k='a"b\\c').inc()
        text = to_prometheus_text(reg.snapshot())
        assert r'c_total{k="a\"b\\c"} 1' in text


class TestJsonRoundTrip:
    def test_snapshots_survive_round_trip(self):
        snaps = _populated_registry().snapshot()
        restored = payload_to_snapshots(
            json.loads(json.dumps(snapshots_to_payload(snaps)))
        )
        assert restored == snaps

    def test_document_round_trip(self):
        reg = _populated_registry()
        doc = to_json(
            reg.snapshot(),
            run={"jct_s": 12.5, "cost_usd": 0.5},
            meta={"command": "train", "workload": "lr-higgs"},
        )
        payload = from_json_payload(doc)
        assert payload["run"]["jct_s"] == 12.5
        assert payload["meta"]["command"] == "train"
        assert payload_to_snapshots(payload["metrics"]) == reg.snapshot()

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            from_json_payload(json.dumps({"schema": "other/v9"}))
