"""Telemetry-test fixtures: install real collectors, restore no-ops after."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
)


@pytest.fixture
def registry():
    prev = get_registry()
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(prev)


@pytest.fixture
def tracer():
    prev = get_tracer()
    t = Tracer()
    set_tracer(t)
    yield t
    set_tracer(prev)
