"""Telemetry must be strictly observational.

Acceptance criterion of the observability PR: the same seed produces
byte-identical simulation results whether telemetry collectors are
installed or not. Instruments never consume RNG draws and never branch
simulation logic, so enabling them cannot perturb a run.
"""

import json

from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
)
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import run_training


def _run(workload, profile):
    budget = training_envelope(workload, profile).budget(2.5)
    return run_training(
        workload,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=9,
        max_epochs=15,
        profile=profile,
    ).result


def _fingerprint(result) -> str:
    """A byte-exact serialization of everything the simulation produced."""
    return json.dumps(
        {
            "jct_s": result.jct_s,
            "cost_usd": result.cost_usd,
            "epochs": [
                [
                    e.index,
                    e.allocation.describe(),
                    e.loss,
                    e.cost.total_usd,
                    e.time.total_s,
                    e.scheduling_overhead_s,
                    e.hidden_restart_overlap_s,
                ]
                for e in result.epochs
            ],
        },
        sort_keys=True,
    )


class TestTelemetryDeterminism:
    def test_results_identical_with_telemetry_on_and_off(
        self, mobilenet, mobilenet_profile
    ):
        baseline = _fingerprint(_run(mobilenet, mobilenet_profile))

        prev_reg, prev_tracer = get_registry(), get_tracer()
        set_registry(MetricsRegistry())
        set_tracer(Tracer())
        try:
            instrumented = _fingerprint(_run(mobilenet, mobilenet_profile))
        finally:
            set_registry(prev_reg)
            set_tracer(prev_tracer)

        assert instrumented == baseline

    def test_metrics_only_run_matches_too(self, mobilenet, mobilenet_profile):
        baseline = _fingerprint(_run(mobilenet, mobilenet_profile))
        prev = get_registry()
        set_registry(MetricsRegistry())
        try:
            assert _fingerprint(_run(mobilenet, mobilenet_profile)) == baseline
        finally:
            set_registry(prev)

    def test_instrumented_run_actually_recorded(
        self, mobilenet, mobilenet_profile, registry, tracer
    ):
        """Guard against the trivial pass: the collectors saw the run."""
        _run(mobilenet, mobilenet_profile)
        inv = registry.get("repro_faas_invocations_total")
        assert inv is not None and inv.value > 0
        assert len(tracer.recorder.events) > 0
