"""Tests for the metric instruments and the registry."""

import pytest

from repro.common.errors import ValidationError
from repro.telemetry.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("events_total")
        with pytest.raises(ValidationError):
            c.inc(-1.0)

    def test_labels_create_independent_children(self):
        c = MetricsRegistry().counter("ops_total", labelnames=("kind",))
        c.labels(kind="s3").inc(3)
        c.labels(kind="vmps").inc(1)
        snap = c.snapshot()
        assert {tuple(s.labels.items()): s.value for s in snap.samples} == {
            (("kind", "s3"),): 3.0,
            (("kind", "vmps"),): 1.0,
        }

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("ops_total", labelnames=("kind",))
        with pytest.raises(ValidationError):
            c.labels(wrong="x")
        with pytest.raises(ValidationError):
            c.inc()  # labeled family has no unlabeled child


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == pytest.approx(12.0)


class TestHistogram:
    def test_bucket_assignment(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0))
        for v in (0.5, 0.9, 3.0, 7.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        (sample,) = snap.samples
        assert sample.buckets == (2, 1, 2)  # <=1, <=5, +Inf
        assert sample.count == 5
        assert sample.sum == pytest.approx(111.4)

    def test_boundary_value_counts_in_its_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0))
        h.observe(1.0)
        (sample,) = h.snapshot().samples
        assert sample.buckets == (1, 0, 0)  # le="1.0" is inclusive

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().histogram("lat", buckets=(5.0, 1.0))


class TestTimer:
    def test_observes_elapsed_wall_time(self):
        h = MetricsRegistry().histogram("wall", buckets=(10.0,))
        with Timer(h) as t:
            pass
        assert t.last_s >= 0.0
        (sample,) = h.snapshot().samples
        assert sample.count == 1


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")

    def test_namespace_prefixes_names(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("a_total").inc()
        assert [s.name for s in reg.snapshot()] == ["repro_a_total"]

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        assert [s.name for s in reg.snapshot()] == ["a_total", "z_total"]

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NullRegistry().enabled


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        reg = NullRegistry()
        c = reg.counter("a_total", labelnames=("k",))
        c.inc()
        c.labels(k="v").inc(5)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == []
        assert reg.get("a_total") is None

    def test_shared_instrument_instance(self):
        """The null registry hands out one singleton — zero allocation."""
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.gauge("c")


class TestSnapshotImmutability:
    def test_snapshot_is_a_point_in_time_copy(self):
        c = MetricsRegistry().counter("a_total")
        c.inc()
        snap = c.snapshot()
        c.inc()
        assert snap.samples[0].value == 1.0

    def test_counter_is_counter_type(self):
        assert isinstance(MetricsRegistry().counter("a_total"), Counter)
        assert isinstance(MetricsRegistry().histogram("h"), Histogram)
