"""Unit tests for repro.common.types."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import (
    Allocation,
    EpochCostBreakdown,
    EpochRecord,
    EpochTimeBreakdown,
    JobResult,
    StorageKind,
)


class TestAllocation:
    def test_valid_construction(self):
        a = Allocation(10, 1769, StorageKind.S3)
        assert a.n_functions == 10
        assert a.memory_mb == 1769
        assert a.storage is StorageKind.S3

    def test_rejects_zero_functions(self):
        with pytest.raises(ValidationError):
            Allocation(0, 1769, StorageKind.S3)

    def test_rejects_negative_functions(self):
        with pytest.raises(ValidationError):
            Allocation(-3, 1769, StorageKind.S3)

    def test_rejects_tiny_memory(self):
        with pytest.raises(ValidationError):
            Allocation(1, 64, StorageKind.S3)

    def test_rejects_non_storage(self):
        with pytest.raises(ValidationError):
            Allocation(1, 1769, "s3")  # type: ignore[arg-type]

    def test_with_storage_copies(self):
        a = Allocation(10, 1769, StorageKind.S3)
        b = a.with_storage(StorageKind.VMPS)
        assert b.storage is StorageKind.VMPS
        assert b.n_functions == a.n_functions
        assert a.storage is StorageKind.S3

    def test_describe(self):
        assert Allocation(10, 1769, StorageKind.S3).describe() == "10fn/1769MB/s3"

    def test_is_hashable_and_eq(self):
        a = Allocation(10, 1769, StorageKind.S3)
        b = Allocation(10, 1769, StorageKind.S3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestStorageKind:
    def test_vmps_is_not_passive(self):
        assert not StorageKind.VMPS.is_passive

    def test_others_are_passive(self):
        for kind in (StorageKind.S3, StorageKind.DYNAMODB, StorageKind.ELASTICACHE):
            assert kind.is_passive

    def test_short_labels_match_paper(self):
        shorts = {k.short for k in StorageKind}
        assert shorts == {"S", "D", "E", "V"}


class TestBreakdowns:
    def test_time_total(self):
        t = EpochTimeBreakdown(load_s=1.0, compute_s=2.0, sync_s=3.0)
        assert t.total_s == pytest.approx(6.0)

    def test_time_scaled(self):
        t = EpochTimeBreakdown(1.0, 2.0, 3.0).scaled(0.5)
        assert t.total_s == pytest.approx(3.0)
        assert t.sync_s == pytest.approx(1.5)

    def test_cost_total(self):
        c = EpochCostBreakdown(invocation_usd=0.1, compute_usd=0.2, storage_usd=0.3)
        assert c.total_usd == pytest.approx(0.6)


class TestJobResult:
    def _record(self, sync_s: float, storage_usd: float) -> EpochRecord:
        return EpochRecord(
            index=1,
            allocation=Allocation(1, 512, StorageKind.S3),
            time=EpochTimeBreakdown(1.0, 1.0, sync_s),
            cost=EpochCostBreakdown(0.0, 0.01, storage_usd),
            loss=0.5,
        )

    def test_comm_overhead_sums_sync(self):
        r = JobResult(jct_s=10, cost_usd=1, epochs=[self._record(2.0, 0.0)] * 3)
        assert r.comm_overhead_s == pytest.approx(6.0)

    def test_storage_cost_sums(self):
        r = JobResult(jct_s=10, cost_usd=1, epochs=[self._record(0.0, 0.2)] * 4)
        assert r.storage_cost_usd == pytest.approx(0.8)

    def test_empty_job(self):
        r = JobResult(jct_s=0, cost_usd=0)
        assert r.comm_overhead_s == 0.0
        assert r.storage_cost_usd == 0.0
