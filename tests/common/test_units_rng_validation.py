"""Unit tests for units, RNG helpers and validation utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common import units
from repro.common.errors import ValidationError
from repro.common.rng import iter_seeds, lognormal_factor, make_rng, spawn, stream_for
from repro.common.validation import (
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_one_of,
    require_positive,
)


class TestUnits:
    def test_mb_from_bytes(self):
        assert units.mb_from_bytes(1024 * 1024) == pytest.approx(1.0)

    def test_bytes_roundtrip(self):
        assert units.mb_from_bytes(units.bytes_from_mb(3.5)) == pytest.approx(3.5)

    def test_gb_seconds(self):
        assert units.gb_seconds(1024, 10) == pytest.approx(10.0)

    def test_usd_per_million(self):
        assert units.usd_per_million(2_000_000, 0.20) == pytest.approx(0.4)

    def test_format_usd_large(self):
        assert units.format_usd(1234.5) == "$1,234.50"

    def test_format_usd_small(self):
        assert units.format_usd(0.0000123).startswith("$0.0000")

    def test_format_duration_buckets(self):
        assert "ms" in units.format_duration(0.01)
        assert units.format_duration(5.0).endswith(" s")
        assert "min" in units.format_duration(300)
        assert units.format_duration(10_000).endswith(" h")


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_explicit_seed(self):
        assert make_rng(7).random() == make_rng(7).random()
        assert make_rng(7).random() != make_rng(8).random()

    def test_stream_for_stable(self):
        a = stream_for(1, "x", 2).random()
        b = stream_for(1, "x", 2).random()
        assert a == b

    def test_stream_for_distinct_labels(self):
        assert stream_for(1, "x").random() != stream_for(1, "y").random()

    def test_spawn_children_independent(self):
        children = spawn(make_rng(0), 3)
        values = {c.random() for c in children}
        assert len(values) == 3

    def test_lognormal_factor_zero_sigma(self):
        assert lognormal_factor(make_rng(0), 0.0) == 1.0

    def test_lognormal_factor_positive(self):
        rng = make_rng(0)
        assert all(lognormal_factor(rng, 0.3) > 0 for _ in range(100))

    def test_iter_seeds_distinct(self):
        seeds = list(iter_seeds(0, 10))
        assert len(set(seeds)) == 10

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_stream_for_any_seed(self, seed):
        rng = stream_for(seed, "prop")
        assert isinstance(rng, np.random.Generator)


class TestValidation:
    def test_require_positive_ok(self):
        assert require_positive(1.5, "x") == 1.5

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0
        with pytest.raises(ValidationError):
            require_non_negative(-1, "x")

    def test_require_in_range(self):
        assert require_in_range(5, 0, 10, "x") == 5
        with pytest.raises(ValidationError):
            require_in_range(11, 0, 10, "x")

    def test_require_non_empty(self):
        assert require_non_empty([1], "x") == [1]
        with pytest.raises(ValidationError):
            require_non_empty([], "x")

    def test_require_one_of(self):
        assert require_one_of("a", ["a", "b"], "x") == "a"
        with pytest.raises(ValidationError):
            require_one_of("c", ["a", "b"], "x")
