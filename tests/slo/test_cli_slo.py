"""CLI surface: `repro slo` exit codes, JSON output, and the error paths
of `repro report` / `repro diagnose` on missing or truncated captures."""

import json

import pytest

from repro.cli import main
from repro.slo import SLOSpec
from repro.slo.events import EventLog
from repro.telemetry.exporters import to_json


@pytest.fixture
def events_file(tmp_path):
    """A synthetic but schema-valid events log: 10 s run, 0.10 USD spent."""
    log = EventLog(meta={"command": "train", "workload": "synthetic"})
    log.append("plan_chosen", 0.0, scope="train", predicted_total_epochs=5)
    for i in range(1, 6):
        log.append(
            "epoch_done", 2.0 * i, scope="train",
            epoch=i, wall_s=2.0, cost_usd=0.02,
        )
    path = tmp_path / "events.jsonl"
    path.write_text(log.to_jsonl())
    return path


def _spec_file(tmp_path, name, **kwargs):
    path = tmp_path / f"{name}.json"
    SLOSpec(name=name, **kwargs).save(path)
    return path


class TestSloExitCodes:
    def test_met_exits_zero(self, tmp_path, events_file, capsys):
        spec = _spec_file(tmp_path, "generous", deadline_s=100.0, budget_usd=1.0)
        code = main(["slo", "--spec", str(spec), "--capture", str(events_file)])
        assert code == 0
        assert "verdict: met" in capsys.readouterr().out

    def test_violated_exits_one(self, tmp_path, events_file, capsys):
        spec = _spec_file(tmp_path, "tight", deadline_s=5.0, budget_usd=0.05)
        code = main(["slo", "--spec", str(spec), "--capture", str(events_file)])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict: VIOLATED (deadline, budget)" in out

    def test_missing_spec_exits_two(self, tmp_path, events_file, capsys):
        code = main([
            "slo", "--spec", str(tmp_path / "nope.json"),
            "--capture", str(events_file),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro slo:") and err.count("\n") == 1

    def test_truncated_events_exits_two(self, tmp_path, events_file, capsys):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0)
        text = events_file.read_text()
        events_file.write_text(text[: len(text) - 15])
        code = main(["slo", "--spec", str(spec), "--capture", str(events_file)])
        assert code == 2
        assert "truncated or malformed" in capsys.readouterr().err

    def test_neither_capture_nor_workload_exits_two(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0)
        assert main(["slo", "--spec", str(spec)]) == 2
        assert "provide --capture" in capsys.readouterr().err

    def test_empty_capture_dir_exits_two(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0)
        empty = tmp_path / "rundir"
        empty.mkdir()
        assert main(["slo", "--spec", str(spec), "--capture", str(empty)]) == 2
        assert "neither events.jsonl nor telemetry.json" in capsys.readouterr().err


class TestSloOutputs:
    def test_capture_dir_picks_events_log(self, tmp_path, events_file, capsys):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0, budget_usd=1.0)
        code = main(["slo", "--spec", str(spec), "--capture", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "burn" in out  # replay mode: projections/burn rates present

    def test_json_format_is_deterministic_and_round_trips(
        self, tmp_path, events_file, capsys
    ):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0, budget_usd=1.0)
        argv = [
            "slo", "--spec", str(spec), "--capture", str(events_file),
            "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["schema"] == "repro-slo-report/v1"
        assert payload["verdict"] == {"violated": False, "violations": []}
        assert [o["dimension"] for o in payload["objectives"]] == [
            "deadline", "budget",
        ]

    def test_out_flag_writes_the_report(self, tmp_path, events_file):
        spec = _spec_file(tmp_path, "s", deadline_s=100.0)
        out = tmp_path / "report.json"
        main([
            "slo", "--spec", str(spec), "--capture", str(events_file),
            "--out", str(out),
        ])
        assert json.loads(out.read_text())["schema"] == "repro-slo-report/v1"

    def test_telemetry_capture_summary_mode(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.json"
        telemetry.write_text(
            to_json((), run={"jct_s": 10.0, "cost_usd": 0.1}, meta={"seed": 0})
        )
        spec = _spec_file(tmp_path, "s", deadline_s=5.0, budget_usd=1.0)
        code = main(["slo", "--spec", str(spec), "--capture", str(telemetry)])
        assert code == 1
        assert "VIOLATED (deadline)" in capsys.readouterr().out

    def test_telemetry_capture_without_run_summary_exits_two(
        self, tmp_path, capsys
    ):
        telemetry = tmp_path / "telemetry.json"
        telemetry.write_text(to_json(()))
        spec = _spec_file(tmp_path, "s", deadline_s=5.0)
        assert main(["slo", "--spec", str(spec), "--capture", str(telemetry)]) == 2
        assert "no run summary" in capsys.readouterr().err


class TestReportErrorPaths:
    def test_missing_capture_exits_two(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "missing.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro report:") and err.count("\n") == 1

    def test_truncated_capture_exits_two(self, tmp_path, capsys):
        path = tmp_path / "telemetry.json"
        path.write_text('{"schema": "repro-telemetry/v1", "metr')
        code = main(["report", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro report:") and err.count("\n") == 1

    def test_wrong_schema_exits_two(self, tmp_path, capsys):
        path = tmp_path / "telemetry.json"
        path.write_text('{"schema": "other/v1"}')
        assert main(["report", str(path)]) == 2
        assert "unsupported telemetry schema" in capsys.readouterr().err


class TestDiagnoseErrorPaths:
    def test_missing_capture_path_exits_two(self, tmp_path, capsys):
        code = main(["diagnose", str(tmp_path / "missing.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro diagnose:") and "does not exist" in err
        assert err.count("\n") == 1

    def test_truncated_capture_exits_two(self, tmp_path, capsys):
        path = tmp_path / "telemetry.json"
        path.write_text('{"schema": "repro-telemetry/v1", "metr')
        code = main(["diagnose", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro diagnose:") and err.count("\n") == 1

    def test_missing_slo_spec_exits_two(self, tmp_path, capsys):
        code = main([
            "diagnose", "lr-higgs", "--slo", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert capsys.readouterr().err.startswith("repro diagnose:")
