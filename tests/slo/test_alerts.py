"""Alert engine: rule catalogue, fire/resolve lifecycle, deduplication."""

from repro.slo import RULES, AlertEngine, BudgetState, SLOSpec


def _deadline_state(consumed, limit=10.0, projected=None, burn=None, status="ok"):
    return BudgetState(
        dimension="deadline", limit=limit, consumed=consumed,
        projected=projected, burn_rate=burn, status=status,
    )


class TestCatalogue:
    def test_every_rule_named_and_documented(self):
        names = [rule.name for rule in RULES]
        assert len(names) == len(set(names)) == 9
        assert all(rule.description for rule in RULES)
        assert all(rule.severity in ("warning", "critical") for rule in RULES)


class TestLifecycle:
    def test_fire_once_while_condition_holds(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0))
        state = _deadline_state(consumed=2.0, projected=15.0)
        fired, _ = engine.evaluate(2.0, (state,), epoch=1)
        assert [a.rule for a in fired] == ["deadline-projected-miss"]
        # The same condition at the next epoch fires nothing new.
        fired, resolved = engine.evaluate(4.0, (state,), epoch=2)
        assert fired == [] and resolved == []
        assert len(engine.alerts) == 1

    def test_resolve_stamps_time_and_epoch(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0))
        engine.evaluate(2.0, (_deadline_state(2.0, projected=15.0),), epoch=1)
        _, resolved = engine.evaluate(
            4.0, (_deadline_state(4.0, projected=8.0),), epoch=2
        )
        assert [a.rule for a in resolved] == ["deadline-projected-miss"]
        alert = resolved[0]
        assert not alert.active
        assert alert.fired_t_s == 2.0 and alert.fired_epoch == 1
        assert alert.resolved_t_s == 4.0 and alert.resolved_epoch == 2

    def test_refire_after_resolve_is_a_new_alert(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0))
        engine.evaluate(2.0, (_deadline_state(2.0, projected=15.0),), epoch=1)
        engine.evaluate(4.0, (_deadline_state(4.0, projected=8.0),), epoch=2)
        fired, _ = engine.evaluate(
            6.0, (_deadline_state(6.0, projected=16.0),), epoch=3
        )
        assert len(fired) == 1 and len(engine.alerts) == 2

    def test_burn_alert_survives_escalation_to_exhausted(self):
        """deadline-burn must not bounce when the dimension escalates."""
        engine = AlertEngine(SLOSpec(deadline_s=10.0))
        engine.evaluate(9.0, (_deadline_state(9.0),), epoch=5)  # 90% consumed
        fired, resolved = engine.evaluate(
            11.0, (_deadline_state(11.0),), epoch=6
        )
        assert [a.rule for a in fired] == ["deadline-exhausted"]
        assert resolved == []
        burn = [a for a in engine.alerts if a.rule == "deadline-burn"]
        assert burn[0].active


class TestAuxiliaryRules:
    def test_predictor_drift_threshold(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0, predictor_drift_threshold=0.25))
        fired, _ = engine.evaluate(
            1.0, (_deadline_state(1.0),), predictor_drift=0.30
        )
        assert [a.rule for a in fired] == ["predictor-drift"]
        assert fired[0].scope == "predictor"
        _, resolved = engine.evaluate(
            2.0, (_deadline_state(2.0),), predictor_drift=0.10
        )
        assert [a.rule for a in resolved] == ["predictor-drift"]

    def test_drift_rule_disabled_by_spec(self):
        engine = AlertEngine(
            SLOSpec(deadline_s=10.0, predictor_drift_threshold=None)
        )
        fired, _ = engine.evaluate(
            1.0, (_deadline_state(1.0),), predictor_drift=9.0
        )
        assert fired == []

    def test_straggler_threshold(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0, straggler_slowdown=3.0))
        fired, _ = engine.evaluate(
            1.0, (_deadline_state(1.0),), straggler_slowdown=3.5
        )
        assert [a.rule for a in fired] == ["straggler"]
        assert fired[0].scope == "workers"

    def test_stage_budget_overrun(self):
        spec = SLOSpec(stage_budgets_usd={0: 0.5})
        engine = AlertEngine(spec)
        state = BudgetState(
            dimension="stage:0", limit=0.5, consumed=0.6,
            projected=None, burn_rate=None, status="exhausted",
        )
        fired, _ = engine.evaluate(1.0, (state,))
        assert [a.rule for a in fired] == ["stage-budget-overrun"]
        assert fired[0].scope == "stage:0"

    def test_payload_round_trip_fields(self):
        engine = AlertEngine(SLOSpec(deadline_s=10.0))
        fired, _ = engine.evaluate(2.0, (_deadline_state(11.0),), epoch=3)
        payload = fired[0].to_payload()
        assert payload["rule"] == "deadline-exhausted"
        assert payload["severity"] == "critical"
        assert payload["fired_epoch"] == 3
        assert payload["resolved_t_s"] is None
