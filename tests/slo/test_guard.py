"""The live guard end to end: projection-before-miss, replay, determinism.

The determinism contract mirrors the telemetry layer's: the guard is
strictly observational (same seed, same simulation results with it on or
off), and a guarded run that raises *no* alerts leaves telemetry and
trace captures byte-identical to a guard-off run.
"""

import json

from repro.slo import (
    SLOGuard,
    SLOSession,
    SLOSpec,
    evaluate_guard,
    replay_events,
)
from repro.slo.events import EventLog
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    set_registry,
    set_tracer,
)
from repro.telemetry.exporters import snapshots_to_payload
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import run_training


def _run(workload, profile, seed=9, max_epochs=15):
    """One ce-scaling training run (default: short, for the cheap tests)."""
    budget = training_envelope(workload, profile).budget(2.5)
    return run_training(
        workload,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=seed,
        max_epochs=max_epochs,
        profile=profile,
    ).result


def _quiet_spec() -> SLOSpec:
    """Limits no run can reach and auxiliary rules disabled: zero alerts."""
    return SLOSpec(
        name="quiet",
        deadline_s=1e15,
        budget_usd=1e15,
        predictor_drift_threshold=None,
        straggler_slowdown=None,
    )


class TestProjectionBeforeMiss:
    def test_projected_miss_fires_before_the_deadline_is_crossed(
        self, lr_higgs, lr_profile
    ):
        """The acceptance criterion: the guard forecasts the violation
        epochs before the run actually crosses the deadline."""
        unguarded = _run(lr_higgs, lr_profile, seed=0, max_epochs=400)
        deadline = 0.6 * unguarded.jct_s

        spec = SLOSpec(name="tight", deadline_s=deadline)
        with SLOSession(spec=spec) as session:
            guarded = _run(lr_higgs, lr_profile, seed=0, max_epochs=400)

        by_rule = {a.rule: a for a in session.guard.alerts}
        projected = by_rule["deadline-projected-miss"]
        exhausted = by_rule["deadline-exhausted"]
        assert projected.fired_epoch < exhausted.fired_epoch
        assert projected.fired_t_s < deadline <= exhausted.fired_t_s
        # The guard never perturbs the simulation it watches.
        assert guarded.jct_s == unguarded.jct_s
        assert guarded.cost_usd == unguarded.cost_usd
        report = evaluate_guard(session.guard)
        assert report.violated and report.violations == ("deadline",)


class TestReplay:
    def test_replay_matches_live_guard(self, mobilenet, mobilenet_profile):
        spec = SLOSpec(name="replay", deadline_s=60.0, budget_usd=1.0)
        with SLOSession(spec=spec) as session:
            _run(mobilenet, mobilenet_profile)
        live = evaluate_guard(session.guard)

        text = session.log.to_jsonl()
        replayed = replay_events(spec, text)
        assert (
            replayed.to_payload()["objectives"] == live.to_payload()["objectives"]
        )
        assert [a.to_payload() for a in replayed.alerts] == [
            a.to_payload() for a in session.guard.alerts
        ]
        # The log itself round-trips byte-exactly.
        assert EventLog.from_jsonl(text).to_jsonl() == text

    def test_events_path_written_on_clean_exit(
        self, tmp_path, mobilenet, mobilenet_profile
    ):
        path = tmp_path / "events.jsonl"
        with SLOSession(events_path=path, meta={"seed": 9}) as session:
            _run(mobilenet, mobilenet_profile)
        assert session.guard is None  # log-only session
        log = EventLog.from_jsonl(path.read_text())
        assert log.meta == {"seed": 9}
        assert {e.kind for e in log.events} >= {"plan_chosen", "epoch_done"}


class TestDeterminism:
    def test_event_log_identical_across_same_seed_runs(
        self, mobilenet, mobilenet_profile
    ):
        texts = []
        for _ in range(2):
            with SLOSession(spec=_quiet_spec()) as session:
                _run(mobilenet, mobilenet_profile)
            texts.append(session.log.to_jsonl())
        assert texts[0] == texts[1]

    def test_quiet_guard_leaves_telemetry_and_trace_byte_identical(
        self, mobilenet, mobilenet_profile
    ):
        """A guarded run with zero alerts must not leave any footprint in
        the metrics snapshot or the Chrome trace."""

        def capture(slo_session):
            registry, tracer = MetricsRegistry(), Tracer()
            set_registry(registry)
            set_tracer(tracer)
            try:
                with slo_session:
                    _run(mobilenet, mobilenet_profile)
            finally:
                set_registry(None)
                set_tracer(None)
            metrics = json.dumps(
                snapshots_to_payload(registry.snapshot()), sort_keys=True
            )
            return metrics, tracer.to_chrome_trace()

        off_metrics, off_trace = capture(SLOSession())  # inert session
        on_metrics, on_trace = capture(SLOSession(spec=_quiet_spec()))
        assert on_metrics == off_metrics
        assert on_trace == off_trace

    def test_alerting_guard_marks_metrics_and_trace(
        self, mobilenet, mobilenet_profile
    ):
        """Guard against the trivial pass: when alerts do fire, the lazy
        counter family and the trace instants appear."""
        registry, tracer = MetricsRegistry(), Tracer()
        set_registry(registry)
        set_tracer(tracer)
        try:
            spec = SLOSpec(name="tight", deadline_s=1.0)
            with SLOSession(spec=spec) as session:
                _run(mobilenet, mobilenet_profile)
        finally:
            set_registry(None)
            set_tracer(None)
        assert session.guard.alerts
        fired = registry.get("repro_slo_alerts_total")
        assert fired is not None
        trace = json.loads(tracer.to_chrome_trace())
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert instants and instants[0]["cat"] == "slo"


class TestGuardUnit:
    def test_epoch_events_advance_accounting(self):
        guard = SLOGuard(SLOSpec(name="u", deadline_s=100.0, budget_usd=1.0))
        log = EventLog()
        log.append("plan_chosen", 0.0, scope="train", predicted_total_epochs=4)
        for i, t in enumerate((2.0, 4.0), start=1):
            log.append(
                "epoch_done", t, scope="train",
                epoch=i, wall_s=2.0, cost_usd=0.05,
            )
        for event in log.events:
            guard.on_event(event)
        acct = guard.accountant
        assert acct.epochs_done == 2
        assert acct.elapsed_s == 4.0
        assert acct.billed_usd == 0.1
        assert acct.projected_jct_s() == 8.0

    def test_alert_lines_mirrored_into_the_log(self):
        guard = SLOGuard(SLOSpec(name="u", deadline_s=1.0))
        guard.on_event(
            EventLog().append("epoch_done", 2.0, scope="train",
                              epoch=1, wall_s=2.0, cost_usd=0.0)
        )
        kinds = [e.kind for e in guard.log.events]
        assert kinds == ["epoch_done", "alert_fired", "alert_fired"]
        mirrored = guard.log.events[1]
        assert mirrored.data["rule"] in ("deadline-exhausted", "deadline-burn")
        assert mirrored.data["severity"] in ("critical", "warning")
