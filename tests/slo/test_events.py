"""Event bus semantics and the repro-events/v1 JSONL document."""

import json

import pytest

from repro.common.errors import SLOError
from repro.slo.events import (
    EVENT_KINDS,
    EVENTS_SCHEMA,
    Event,
    EventBus,
    EventLog,
    NullEventBus,
    get_event_bus,
    set_event_bus,
)


class TestEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SLOError, match="unknown event kind"):
            Event(kind="made_up", t_s=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SLOError, match=">= 0"):
            Event(kind="epoch_done", t_s=-1.0)

    def test_every_declared_kind_constructs(self):
        for kind in EVENT_KINDS:
            assert Event(kind=kind, t_s=0.0).kind == kind


class TestBus:
    def test_null_bus_is_the_default(self):
        bus = get_event_bus()
        assert isinstance(bus, NullEventBus)
        assert not bus.enabled
        assert bus.emit("epoch_done", 1.0, wall_s=2.0) is None

    def test_null_bus_rejects_subscribers(self):
        with pytest.raises(SLOError, match="null event bus"):
            NullEventBus().subscribe(lambda e: None)

    def test_emit_delivers_in_subscription_order(self, bus):
        order = []
        bus.subscribe(lambda e: order.append(("a", e.kind)))
        bus.subscribe(lambda e: order.append(("b", e.kind)))
        event = bus.emit("epoch_done", 1.5, scope="train", epoch=3)
        assert order == [("a", "epoch_done"), ("b", "epoch_done")]
        assert event.data == {"epoch": 3}

    def test_set_none_restores_null_bus(self):
        prev = get_event_bus()
        live = EventBus()
        set_event_bus(live)
        assert get_event_bus() is live
        set_event_bus(None)
        assert isinstance(get_event_bus(), NullEventBus)
        set_event_bus(prev)


class TestEventLog:
    def _log(self) -> EventLog:
        log = EventLog(meta={"command": "train", "seed": 7})
        log.append("plan_chosen", 0.0, scope="train", predicted_total_epochs=12)
        log.append("epoch_done", 2.5, scope="train", epoch=1, wall_s=2.5,
                   cost_usd=0.01)
        log.append("epoch_done", 5.0, scope="train", epoch=2, wall_s=2.5,
                   cost_usd=0.01)
        return log

    def test_jsonl_round_trips_byte_exact(self):
        text = self._log().to_jsonl()
        assert EventLog.from_jsonl(text).to_jsonl() == text

    def test_header_and_seq_layout(self):
        lines = self._log().to_jsonl().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == EVENTS_SCHEMA
        assert header["meta"] == {"command": "train", "seed": 7}
        assert [json.loads(line)["seq"] for line in lines[1:]] == [0, 1, 2]

    def test_empty_document_rejected(self):
        with pytest.raises(SLOError, match="empty event log"):
            EventLog.from_jsonl("")

    def test_bad_header_rejected(self):
        with pytest.raises(SLOError, match="header is not valid JSON"):
            EventLog.from_jsonl("{nope\n")
        with pytest.raises(SLOError, match="must be an object"):
            EventLog.from_jsonl("[1, 2]\n")
        with pytest.raises(SLOError, match="expected schema"):
            EventLog.from_jsonl('{"schema": "other/v1", "meta": {}}\n')

    def test_truncated_line_rejected(self):
        text = self._log().to_jsonl()
        truncated = text[: len(text) - 20]
        with pytest.raises(SLOError, match="truncated or malformed"):
            EventLog.from_jsonl(truncated)
