"""Burn-rate accounting: clocks, projections, and the status ladder."""

import pytest

from repro.slo import BurnRateAccountant, SLOSpec


def _acct(**spec_kwargs) -> BurnRateAccountant:
    return BurnRateAccountant(SLOSpec(name="t", **spec_kwargs))


def _state(acct, dimension):
    for st in acct.states():
        if st.dimension == dimension:
            return st
    raise AssertionError(f"no {dimension} dimension in {acct.states()}")


class TestClocks:
    def test_per_scope_high_water_marks_sum(self):
        acct = _acct(deadline_s=100.0)
        acct.observe_clock("tune", 10.0)
        acct.observe_clock("tune", 8.0)     # regressions never rewind a clock
        acct.observe_clock("train", 5.0)
        assert acct.elapsed_s == 15.0

    def test_epoch_accounting(self):
        acct = _acct(budget_usd=1.0)
        for _ in range(7):
            acct.on_epoch(wall_s=2.0, cost_usd=0.05)
        assert acct.epochs_done == 7
        assert acct.billed_usd == pytest.approx(0.35)
        # window keeps only the trailing 5 epochs
        assert len(acct._recent_wall_s) == 5

    def test_stage_accounting(self):
        acct = _acct(stage_budgets_usd={0: 0.5, 1: 0.5})
        acct.on_stage(0, 0.2)
        acct.on_stage(0, 0.4)
        acct.on_stage(1, 0.1)
        assert acct.billed_usd == pytest.approx(0.7)
        assert _state(acct, "stage:0").consumed == pytest.approx(0.6)
        assert _state(acct, "stage:1").consumed == pytest.approx(0.1)


class TestProjection:
    def test_no_projection_before_prediction(self):
        acct = _acct(deadline_s=100.0)
        acct.on_epoch(2.0, 0.01)
        assert acct.projected_jct_s() is None
        assert _state(acct, "deadline").status == "ok"

    def test_projection_uses_window_mean(self):
        acct = _acct(deadline_s=100.0)
        acct.on_prediction(10)
        for t in (2.0, 4.0):
            acct.observe_clock("train", t)
            acct.on_epoch(2.0, 0.01)
        # 4 s elapsed + 8 remaining epochs x 2 s mean = 20 s
        assert acct.projected_jct_s() == pytest.approx(20.0)

    def test_projected_cost(self):
        acct = _acct(budget_usd=1.0)
        acct.on_prediction(10)
        for _ in range(5):
            acct.on_epoch(2.0, 0.02)
        assert acct.projected_cost_usd() == pytest.approx(0.1 + 5 * 0.02)


class TestStatusLadder:
    def test_exhausted_beats_everything(self):
        acct = _acct(deadline_s=10.0)
        acct.observe_clock("train", 10.0)
        assert _state(acct, "deadline").status == "exhausted"

    def test_critical_on_projected_overshoot(self):
        acct = _acct(deadline_s=10.0)
        acct.on_prediction(10)
        acct.observe_clock("train", 2.0)
        acct.on_epoch(2.0, 0.0)  # projection: 2 + 9 x 2 = 20 s > 10 s
        assert _state(acct, "deadline").status == "critical"

    def test_warn_on_consumption_ratio(self):
        acct = _acct(deadline_s=10.0)
        acct.observe_clock("train", 9.0)  # 90% > default warn_ratio 0.85
        assert _state(acct, "deadline").status == "warn"

    def test_warn_on_burn_rate(self):
        # 20% of the budget consumed at 10% progress -> burn rate 2x.
        acct = _acct(budget_usd=1.0)
        acct.on_prediction(10)
        acct.on_epoch(1.0, 0.2)
        st = _state(acct, "budget")
        assert st.burn_rate == pytest.approx(2.0)
        assert st.status in ("warn", "critical")

    def test_burn_rate_ignored_below_min_fraction(self):
        # 2% consumed at 1% progress is a 2x burn rate, but too early to act.
        acct = _acct(budget_usd=1.0)
        acct.on_prediction(100)
        acct.on_epoch(1.0, 0.02)
        st = _state(acct, "budget")
        assert st.status == "critical"  # projection, not burn, flags it
        acct2 = _acct(budget_usd=1.0)
        acct2.on_prediction(100)
        acct2.epochs_done = 1  # no cost window -> no projection
        assert _state(acct2, "budget").status == "ok"

    def test_ok_when_on_track(self):
        acct = _acct(deadline_s=100.0, budget_usd=1.0)
        acct.on_prediction(10)
        for t in (2.0, 4.0):
            acct.observe_clock("train", t)
            acct.on_epoch(2.0, 0.01)
        assert {st.status for st in acct.states()} == {"ok"}

    def test_dimension_order_is_fixed(self):
        acct = _acct(deadline_s=1.0, budget_usd=1.0, stage_budgets_usd={1: 0.5, 0: 0.5})
        assert [st.dimension for st in acct.states()] == [
            "deadline", "budget", "stage:0", "stage:1",
        ]
