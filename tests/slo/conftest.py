"""SLO-test fixtures: install a live event bus, restore the null bus after."""

from __future__ import annotations

import pytest

from repro.slo.events import EventBus, get_event_bus, set_event_bus


@pytest.fixture
def bus():
    prev = get_event_bus()
    live = EventBus()
    set_event_bus(live)
    yield live
    set_event_bus(prev)
