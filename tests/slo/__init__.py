"""Tests for the QoS/SLO guard layer (``repro.slo``)."""
