"""SLOSpec validation, normalization, and JSON round-trips."""

import pytest

from repro.common.errors import SLOError
from repro.slo import SLO_SCHEMA, SLOSpec


class TestValidation:
    def test_needs_at_least_one_objective(self):
        with pytest.raises(SLOError, match="at least one objective"):
            SLOSpec(name="empty")

    def test_single_objective_suffices(self):
        assert SLOSpec(deadline_s=10.0).budget_usd is None
        assert SLOSpec(budget_usd=1.0).deadline_s is None
        assert SLOSpec(stage_budgets_usd={0: 0.5}).deadline_s is None

    @pytest.mark.parametrize("field,value", [
        ("deadline_s", 0.0),
        ("deadline_s", -5.0),
        ("budget_usd", -1.0),
        ("warn_ratio", 0.0),
        ("warn_ratio", 1.0),
        ("predictor_drift_threshold", 0.0),
        ("straggler_slowdown", 1.0),
    ])
    def test_out_of_range_rejected(self, field, value):
        kwargs = {"deadline_s": 10.0, field: value}
        with pytest.raises(SLOError):
            SLOSpec(**kwargs)

    def test_bad_stage_budgets_rejected(self):
        with pytest.raises(SLOError, match="stage indices"):
            SLOSpec(stage_budgets_usd={-1: 0.5})
        with pytest.raises(SLOError, match="positive"):
            SLOSpec(stage_budgets_usd={0: 0.0})
        with pytest.raises(SLOError, match="duplicate"):
            SLOSpec(stage_budgets_usd=((0, 0.5), (0, 0.6)))

    def test_empty_name_rejected(self):
        with pytest.raises(SLOError, match="name"):
            SLOSpec(name="", deadline_s=10.0)

    def test_stage_budget_dict_normalized_to_sorted_pairs(self):
        spec = SLOSpec(stage_budgets_usd={2: 0.3, 0: 0.1})
        assert spec.stage_budgets_usd == ((0, 0.1), (2, 0.3))
        assert spec.stage_budget_usd(2) == 0.3
        assert spec.stage_budget_usd(1) is None


class TestRoundTrip:
    def test_json_round_trip(self):
        spec = SLOSpec(
            name="rt", deadline_s=120.0, budget_usd=2.0,
            stage_budgets_usd={0: 0.5, 3: 0.25}, warn_ratio=0.9,
        )
        again = SLOSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_payload_carries_schema(self):
        assert SLOSpec(deadline_s=1.0).to_payload()["schema"] == SLO_SCHEMA

    def test_load_save(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = SLOSpec(name="disk", budget_usd=3.0)
        spec.save(path)
        assert SLOSpec.load(path) == spec

    def test_unknown_key_rejected(self):
        payload = SLOSpec(deadline_s=1.0).to_payload()
        payload["surprise"] = 1
        with pytest.raises(SLOError, match="unknown key"):
            SLOSpec.from_payload(payload)

    def test_wrong_schema_rejected(self):
        payload = SLOSpec(deadline_s=1.0).to_payload()
        payload["schema"] = "repro-slo/v0"
        with pytest.raises(SLOError, match="schema"):
            SLOSpec.from_payload(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(SLOError, match="not valid JSON"):
            SLOSpec.from_json("{truncated")
