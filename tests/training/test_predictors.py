"""Tests for the online and offline epoch predictors."""

import numpy as np
import pytest

from repro.common.errors import PredictionError
from repro.ml.curves import CurveParams, LossCurveSampler
from repro.ml.models import workload
from repro.training.offline_predictor import OfflinePredictor
from repro.training.online_predictor import OnlinePredictor, _fit_ipl_grid


def _clean_curve(n, l_inf=0.1, a=2.0, alpha=0.8):
    e = np.arange(1, n + 1, dtype=float)
    return e, l_inf + a * (e + 1) ** (-alpha)


class TestOnlinePredictor:
    def test_needs_min_points(self):
        p = OnlinePredictor(target_loss=0.5)
        p.observe(1.0)
        with pytest.raises(PredictionError):
            p.predict_total_epochs()

    def test_rejects_bad_target(self):
        with pytest.raises(PredictionError):
            OnlinePredictor(target_loss=0.0)

    def test_rejects_unknown_family(self):
        with pytest.raises(PredictionError):
            OnlinePredictor(target_loss=0.5, families=("cubic-spline",))

    def test_exact_on_clean_ipl(self):
        params = CurveParams(init_loss=2.1, floor_loss=0.1, alpha=0.8)
        target = 0.3
        true = params.epochs_to(target)
        p = OnlinePredictor(target_loss=target)
        for e in range(1, int(true * 0.5)):
            p.observe(params.loss_at(e))
        assert p.predict_total_epochs() == pytest.approx(true, rel=0.15)

    def test_already_converged_returns_crossing_epoch(self):
        p = OnlinePredictor(target_loss=0.5)
        for loss in (0.9, 0.7, 0.4, 0.3, 0.2):
            p.observe(loss)
        assert p.predict_total_epochs() == 3.0

    def test_prediction_never_below_observations(self):
        params = CurveParams(init_loss=2.1, floor_loss=0.5, alpha=0.8)
        p = OnlinePredictor(target_loss=0.51)
        for e in range(1, 30):
            p.observe(params.loss_at(e))
        assert p.predict_total_epochs() >= p.n_observations

    def test_prior_improves_early_accuracy(self):
        """With four noisy points, the prior-informed fit must be closer to
        the truth than the prior-free fit, on average."""
        w = workload("mobilenet-cifar10")
        prior_errs, free_errs = [], []
        for seed in range(10):
            sampler = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            )
            true = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            ).epochs_to_target(w.target_loss)
            losses = [sampler.next_loss() for _ in range(6)]
            for errs, prior in ((prior_errs, w.curve_params()), (free_errs, None)):
                p = OnlinePredictor(w.target_loss, prior=prior)
                for loss in losses:
                    p.observe(loss)
                try:
                    errs.append(abs(p.predict_total_epochs() - true) / true)
                except PredictionError:
                    errs.append(5.0)
        assert np.mean(prior_errs) < np.mean(free_errs)

    def test_error_decreases_with_observations(self):
        """Fig. 4b's shape: late-run predictions beat early-run predictions."""
        w = workload("resnet50-cifar10")
        early, late = [], []
        for seed in range(8):
            true = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            ).epochs_to_target(w.target_loss)
            sampler = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            )
            p = OnlinePredictor(w.target_loss, prior=w.curve_params())
            for e in range(1, int(true * 0.9)):
                p.observe(sampler.next_loss())
                if e == max(4, int(true * 0.2)):
                    early.append(abs(p.predict_total_epochs() - true) / true)
            late.append(abs(p.predict_total_epochs() - true) / true)
        assert np.mean(late) < np.mean(early)

    def test_grid_fit_recovers_parameters(self):
        e, y = _clean_curve(40, l_inf=0.2, a=1.5, alpha=0.6)
        fit = _fit_ipl_grid(e, y)
        floor, a, alpha = fit.params
        assert alpha == pytest.approx(0.6, rel=0.15)
        assert floor == pytest.approx(0.2, abs=0.08)


class TestOfflinePredictor:
    def test_prediction_positive(self):
        w = workload("lr-higgs")
        assert OfflinePredictor(w, seed=0).predict_total_epochs() >= 1

    def test_deterministic_per_seed(self):
        w = workload("lr-higgs")
        assert (
            OfflinePredictor(w, seed=3).predict_total_epochs()
            == OfflinePredictor(w, seed=3).predict_total_epochs()
        )

    def test_error_band_matches_fig4a(self):
        """Mean offline error across seeds should be substantial (tens of
        percent) but not absurd — the paper's ~40% band, loosely."""
        w = workload("mobilenet-cifar10")
        errs = []
        for seed in range(12):
            true = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            ).epochs_to_target(w.target_loss)
            pred = OfflinePredictor(w, seed=seed).predict_total_epochs()
            errs.append(abs(pred - true) / true)
        mean = float(np.mean(errs))
        assert 0.10 < mean < 1.0

    def test_offline_worse_than_late_online(self):
        """Finding 2: online prediction (late in training) beats offline."""
        w = workload("mobilenet-cifar10")
        off_errs, on_errs = [], []
        for seed in range(10):
            true = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            ).epochs_to_target(w.target_loss)
            off = OfflinePredictor(w, seed=seed).predict_total_epochs()
            off_errs.append(abs(off - true) / true)
            sampler = LossCurveSampler(
                w.curve_params(), seed=seed, run_label=("train", w.name),
                anchor_target=w.target_loss,
            )
            p = OnlinePredictor(w.target_loss, prior=w.curve_params())
            for _ in range(max(4, int(true * 0.7))):
                p.observe(sampler.next_loss())
            on_errs.append(abs(p.predict_total_epochs() - true) / true)
        assert np.mean(on_errs) < np.mean(off_errs)

    def test_bad_sample_fraction_rejected(self):
        w = workload("lr-higgs")
        with pytest.raises(PredictionError):
            OfflinePredictor(w, sample_fraction=0.0).run_pilot()

    def test_pilot_trajectory_length(self):
        w = workload("lr-higgs")
        assert len(OfflinePredictor(w, pilot_epochs=7).run_pilot()) == 7

    def test_extrapolate_variant_positive(self):
        w = workload("mobilenet-cifar10")
        assert OfflinePredictor(w, seed=1).extrapolate_from_pilot() > 0
