"""Integration tests for the training executor."""

import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.plan import Objective
from repro.training.adaptive_scheduler import AdaptiveScheduler
from repro.training.delayed_restart import DelayedRestartPlanner
from repro.training.executor import (
    SGDLossProvider,
    SurrogateLossProvider,
    TrainingExecutor,
    TrainingJobSpec,
)
from repro.workflow.job import training_envelope


@pytest.fixture(scope="module")
def budget(mobilenet, mobilenet_profile):
    return training_envelope(mobilenet, mobilenet_profile).budget(2.5)


def _run(mobilenet, mobilenet_profile, budget, seed=0, **sched_kw):
    sched = AdaptiveScheduler(
        workload=mobilenet,
        candidates=mobilenet_profile.pareto,
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=seed,
        **sched_kw,
    )
    spec = TrainingJobSpec(
        workload=mobilenet,
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=seed,
    )
    return TrainingExecutor(spec=spec, scheduler=sched).run()


class TestSpecValidation:
    def test_jct_min_needs_budget(self, mobilenet):
        with pytest.raises(ValidationError):
            TrainingJobSpec(mobilenet, Objective.MIN_JCT_GIVEN_BUDGET)

    def test_cost_min_needs_qos(self, mobilenet):
        with pytest.raises(ValidationError):
            TrainingJobSpec(mobilenet, Objective.MIN_COST_GIVEN_QOS)

    def test_loss_provider_selection(self, lr_higgs, mobilenet):
        real = TrainingJobSpec(
            lr_higgs, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1.0,
            use_real_sgd=True,
        ).make_loss_provider()
        assert isinstance(real, SGDLossProvider)
        surrogate = TrainingJobSpec(
            mobilenet, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1.0,
            use_real_sgd=True,
        ).make_loss_provider()
        assert isinstance(surrogate, SurrogateLossProvider)


class TestExecution:
    def test_converges(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget)
        assert result.converged
        assert result.final_loss <= mobilenet.target_loss

    def test_deterministic(self, mobilenet, mobilenet_profile, budget):
        a = _run(mobilenet, mobilenet_profile, budget, seed=3)
        b = _run(mobilenet, mobilenet_profile, budget, seed=3)
        assert a.jct_s == b.jct_s
        assert a.cost_usd == b.cost_usd
        assert len(a.epochs) == len(b.epochs)

    def test_epochs_recorded(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget)
        assert len(result.epochs) >= 5
        assert all(e.time.total_s > 0 for e in result.epochs)
        assert all(e.cost.total_usd > 0 for e in result.epochs)

    def test_losses_reach_target(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget)
        assert result.epochs[-1].loss <= mobilenet.target_loss
        assert result.epochs[0].loss > mobilenet.target_loss

    def test_breakdowns_consistent(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget)
        assert 0 < result.comm_overhead_s < result.jct_s
        assert 0 < result.storage_cost_usd < result.cost_usd

    def test_scheduling_overhead_counted(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget)
        assert result.scheduling_overhead_s > 0

    def test_max_epochs_cap(self, mobilenet, mobilenet_profile, budget):
        sched = AdaptiveScheduler(
            workload=mobilenet, candidates=mobilenet_profile.pareto,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget, seed=0,
        )
        spec = TrainingJobSpec(
            workload=mobilenet, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, max_epochs=3, seed=0,
        )
        result = TrainingExecutor(spec=spec, scheduler=sched).run()
        assert len(result.epochs) == 3
        assert not result.converged

    def test_real_sgd_path(self, lr_higgs, lr_profile):
        """Linear models can train with genuine numpy SGD end to end."""
        budget = training_envelope(lr_higgs, lr_profile).budget(2.5)
        sched = AdaptiveScheduler(
            workload=lr_higgs, candidates=lr_profile.pareto,
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget, seed=0,
        )
        spec = TrainingJobSpec(
            workload=lr_higgs, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, use_real_sgd=True, max_epochs=25, seed=0,
        )
        result = TrainingExecutor(spec=spec, scheduler=sched).run()
        losses = [e.loss for e in result.epochs]
        assert losses[-1] < losses[0]  # SGD genuinely learns

    def test_restarts_marked_in_records(self, mobilenet, mobilenet_profile, budget):
        result = _run(mobilenet, mobilenet_profile, budget, delta=0.01)
        if result.n_restarts:
            assert any(e.restarted for e in result.epochs)

    def test_delayed_restart_reduces_overhead(
        self, mobilenet, mobilenet_profile, budget
    ):
        import numpy as np

        def total(enabled):
            vals = []
            for seed in range(4):
                sched = AdaptiveScheduler(
                    workload=mobilenet, candidates=mobilenet_profile.pareto,
                    objective=Objective.MIN_JCT_GIVEN_BUDGET,
                    budget_usd=budget, seed=seed, delta=0.05,
                )
                spec = TrainingJobSpec(
                    workload=mobilenet, objective=Objective.MIN_JCT_GIVEN_BUDGET,
                    budget_usd=budget, seed=seed,
                )
                result = TrainingExecutor(
                    spec=spec, scheduler=sched,
                    restart_planner=DelayedRestartPlanner(enabled=enabled),
                ).run()
                vals.append(result.scheduling_overhead_s)
            return float(np.mean(vals))

        assert total(True) < total(False)
