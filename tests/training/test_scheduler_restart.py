"""Tests for Algorithm 2 (adaptive scheduler), selection, delayed restart."""

import pytest

from repro.common.errors import ConstraintError
from repro.common.types import Allocation, StorageKind
from repro.ml.models import workload
from repro.tuning.plan import Objective
from repro.training.adaptive_scheduler import (
    AdaptiveScheduler,
    select_best_allocation,
)
from repro.training.delayed_restart import DelayedRestartPlanner


class TestSelectBestAllocation:
    def test_fastest_affordable(self, lr_profile):
        budget = 1000.0  # effectively unconstrained
        p = select_best_allocation(
            lr_profile.pareto, Objective.MIN_JCT_GIVEN_BUDGET, 10, budget_usd=budget
        )
        assert p is lr_profile.fastest()

    def test_cheapest_meeting_deadline(self, lr_profile):
        qos = 1e9
        p = select_best_allocation(
            lr_profile.pareto, Objective.MIN_COST_GIVEN_QOS, 10, qos_s=qos
        )
        assert p is lr_profile.cheapest()

    def test_budget_constrains_choice(self, lr_profile):
        horizon = 40
        tight = lr_profile.cheapest().cost_usd * horizon * 1.2
        p = select_best_allocation(
            lr_profile.pareto, Objective.MIN_JCT_GIVEN_BUDGET, horizon,
            budget_usd=tight,
        )
        assert horizon * p.cost_usd <= tight

    def test_mixed_rule_when_infeasible(self, lr_profile):
        """With a budget that cannot cover the horizon at any point, the
        selection still returns something runnable."""
        horizon = 1000
        budget = lr_profile.cheapest().cost_usd * 10
        p = select_best_allocation(
            lr_profile.pareto, Objective.MIN_JCT_GIVEN_BUDGET, horizon,
            budget_usd=budget,
        )
        assert p in lr_profile.pareto

    def test_missing_constraint_rejected(self, lr_profile):
        with pytest.raises(ConstraintError):
            select_best_allocation(
                lr_profile.pareto, Objective.MIN_JCT_GIVEN_BUDGET, 10
            )

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConstraintError):
            select_best_allocation([], Objective.MIN_JCT_GIVEN_BUDGET, 1,
                                   budget_usd=1.0)


class TestAdaptiveScheduler:
    def _scheduler(self, lr_higgs, lr_profile, budget=5.0, delta=0.1):
        return AdaptiveScheduler(
            workload=lr_higgs,
            candidates=lr_profile.pareto,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
            delta=delta,
            seed=0,
        )

    def test_initial_decision_uses_offline(self, lr_higgs, lr_profile):
        sched = self._scheduler(lr_higgs, lr_profile)
        d = sched.initial_decision()
        assert d.predicted_total_epochs >= 1
        assert not d.restart
        assert d.search_overhead_s > 0

    def test_on_epoch_end_requires_init(self, lr_higgs, lr_profile):
        sched = self._scheduler(lr_higgs, lr_profile)
        with pytest.raises(ConstraintError):
            sched.on_epoch_end(0.5, 0.01, 10.0)

    def test_no_restart_without_drift(self, lr_higgs, lr_profile):
        """Feeding losses from the exact nominal curve keeps predictions at
        the prior horizon: no restarts fire."""
        sched = self._scheduler(lr_higgs, lr_profile)
        sched.initial_decision()
        # Force the offline horizon to the nominal value for cleanliness.
        sched.predicted_total_epochs = lr_higgs.nominal_epochs
        params = lr_higgs.curve_params()
        restarts = 0
        for e in range(1, 20):
            d = sched.on_epoch_end(params.loss_at(e), 0.01, 5.0)
            restarts += d.restart
        assert restarts <= 1

    def test_budget_accounting(self, lr_higgs, lr_profile):
        sched = self._scheduler(lr_higgs, lr_profile, budget=10.0)
        sched.initial_decision()
        sched.on_epoch_end(0.69, 2.0, 5.0)
        sched.on_epoch_end(0.68, 3.0, 5.0)
        assert sched.spent_usd == pytest.approx(5.0)
        assert sched._remaining_budget() == pytest.approx(5.0)

    def test_siren_mode_adjusts_every_epoch(self, lr_higgs, lr_profile):
        sched = AdaptiveScheduler(
            workload=lr_higgs,
            candidates=lr_profile.pareto,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=5.0,
            adjust_every_epoch=True,
            seed=0,
        )
        sched.initial_decision()
        params = lr_higgs.curve_params()
        searches_before = sched.n_searches
        for e in range(1, 8):
            sched.on_epoch_end(params.loss_at(e), 0.01, 5.0)
        assert sched.n_searches > searches_before + 2


class TestDelayedRestart:
    def test_overhead_hidden_when_epoch_long(self, lr_higgs):
        planner = DelayedRestartPlanner()
        alloc = Allocation(10, 1769, StorageKind.S3)
        lead = planner.lead_time_s(lr_higgs, alloc)
        plan = planner.plan_restart(lr_higgs, alloc, overlap_epoch_duration_s=lead * 3)
        assert plan.visible_overhead_s == 0.0
        assert plan.hidden_overhead_s == pytest.approx(lead)

    def test_partial_hiding_when_epoch_short(self, lr_higgs):
        planner = DelayedRestartPlanner()
        alloc = Allocation(10, 1769, StorageKind.S3)
        lead = planner.lead_time_s(lr_higgs, alloc)
        plan = planner.plan_restart(lr_higgs, alloc, overlap_epoch_duration_s=lead / 2)
        assert plan.visible_overhead_s == pytest.approx(lead / 2)

    def test_disabled_exposes_everything(self, lr_higgs):
        planner = DelayedRestartPlanner(enabled=False)
        alloc = Allocation(10, 1769, StorageKind.S3)
        lead = planner.lead_time_s(lr_higgs, alloc)
        plan = planner.plan_restart(lr_higgs, alloc, overlap_epoch_duration_s=1e9)
        assert plan.visible_overhead_s == pytest.approx(lead)
        assert plan.hidden_overhead_s == 0.0

    def test_lead_time_includes_cold_start_and_load(self, lr_higgs):
        from repro.analytical.timemodel import epoch_time
        from repro.config import DEFAULT_PLATFORM

        planner = DelayedRestartPlanner()
        alloc = Allocation(10, 1769, StorageKind.S3)
        t = epoch_time(lr_higgs, alloc)
        assert planner.lead_time_s(lr_higgs, alloc) == pytest.approx(
            DEFAULT_PLATFORM.limits.cold_start_s + t.load_s
        )

    def test_launch_offset_geometry(self, lr_higgs):
        """New functions launch so they finish exactly at epoch end."""
        planner = DelayedRestartPlanner()
        alloc = Allocation(10, 1769, StorageKind.S3)
        lead = planner.lead_time_s(lr_higgs, alloc)
        epoch = lead * 2
        plan = planner.plan_restart(lr_higgs, alloc, overlap_epoch_duration_s=epoch)
        assert plan.launch_offset_s + lead == pytest.approx(epoch)
