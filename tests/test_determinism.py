"""Cross-component determinism: one seed reproduces everything bit-exactly.

Reproducibility is a deliverable of this repository: every stochastic
component draws from CRC32-labelled seed streams (`common.rng.stream_for`),
so results are identical across processes and platforms. These tests pin
that contract at every layer.
"""

import json

import numpy as np
import pytest

from repro.common.types import StorageKind
from repro.profiling import Profiler, get_profiler, set_profiler
from repro.timeseries import TimeSeriesSampler, get_sampler, set_sampler
from repro.telemetry.exporters import to_json
from repro.telemetry.metrics import MetricsRegistry
from repro.ml.curves import LossCurveSampler
from repro.ml.models import workload
from repro.tuning.plan import Objective
from repro.tuning.sha import SHAEngine, SHASpec
from repro.workflow.job import training_envelope, tuning_envelope
from repro.workflow.runner import profile_workload, run_training, run_tuning


class TestLayerDeterminism:
    def test_curve_sampler_bit_exact(self, mobilenet):
        kw = dict(seed=11, run_label="d", anchor_target=mobilenet.target_loss)
        a = LossCurveSampler(mobilenet.curve_params(), **kw).trajectory(50)
        b = LossCurveSampler(mobilenet.curve_params(), **kw).trajectory(50)
        np.testing.assert_array_equal(a, b)

    def test_profiling_deterministic(self, lr_higgs):
        a = profile_workload(lr_higgs)
        b = profile_workload(lr_higgs)
        assert [p.allocation for p in a.pareto] == [p.allocation for p in b.pareto]
        assert [p.time_s for p in a.pareto] == [p.time_s for p in b.pareto]

    def test_sha_trial_population_deterministic(self, lr_higgs):
        a = SHAEngine(SHASpec(32, 2, 2), lr_higgs, seed=4)
        b = SHAEngine(SHASpec(32, 2, 2), lr_higgs, seed=4)
        assert [t.learning_rate for t in a.trials] == [
            t.learning_rate for t in b.trials
        ]

    @pytest.mark.parametrize("method", ["ce-scaling", "siren", "cirrus"])
    def test_training_bit_exact_per_method(self, method, mobilenet, mobilenet_profile):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        kw = dict(
            method=method, objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=9, max_epochs=15, profile=mobilenet_profile,
        )
        a = run_training(mobilenet, **kw).result
        b = run_training(mobilenet, **kw).result
        assert a.jct_s == b.jct_s
        assert a.cost_usd == b.cost_usd
        assert [e.allocation for e in a.epochs] == [e.allocation for e in b.epochs]
        assert [e.loss for e in a.epochs] == [e.loss for e in b.epochs]

    def test_tuning_bit_exact(self, lr_higgs, lr_profile):
        spec = SHASpec(32, 2, 2)
        budget = tuning_envelope(lr_profile, spec).budget(1.3)
        kw = dict(
            method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=5, profile=lr_profile,
        )
        a = run_tuning(lr_higgs, spec, **kw)
        b = run_tuning(lr_higgs, spec, **kw)
        assert a.result.jct_s == b.result.jct_s
        assert a.result.winner.index == b.result.winner.index
        assert [p.allocation for p in a.plan.stages] == [
            p.allocation for p in b.plan.stages
        ]

    def test_seeds_actually_differ(self, mobilenet, mobilenet_profile):
        """Determinism must come from the seed, not from ignoring it."""
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        results = {
            seed: run_training(
                mobilenet, budget_usd=budget, seed=seed, max_epochs=20,
                profile=mobilenet_profile,
            ).result.jct_s
            for seed in (1, 2, 3)
        }
        assert len(set(results.values())) == 3

    def test_telemetry_export_insertion_order_independent(self):
        """Exports sort every unordered collection; insertion order is noise.

        The `repro-lint` REP007 rule bans raw set/dict iteration on export
        paths; this pins the behaviour the rule protects — registering the
        same metrics in two different orders (and labelling children in two
        different orders) must produce byte-identical JSON.
        """

        def build(order: int) -> MetricsRegistry:
            reg = MetricsRegistry()
            names = ["epochs_total", "cost_usd", "alloc_changes_total"]
            labels = [{"phase": "tune"}, {"phase": "train"}, {"phase": "warm"}]
            if order:
                names, labels = names[::-1], labels[::-1]
            for name in names:
                counter = reg.counter(name, labelnames=("phase",))
                for kv in labels:
                    counter.labels(**kv).inc(3.5)
            return reg

        a = to_json(build(0).snapshot(), run={"jct_s": 1.0}, meta={"seed": 0})
        b = to_json(build(1).snapshot(), run={"jct_s": 1.0}, meta={"seed": 0})
        assert a == b

    def test_storage_pin_does_not_leak_state(self, mobilenet):
        """Profiling with a pin never mutates the default profile."""
        base_before = profile_workload(mobilenet)
        profile_workload(mobilenet, storage_pin=StorageKind.S3)
        base_after = profile_workload(mobilenet)
        assert [p.allocation for p in base_before.pareto] == [
            p.allocation for p in base_after.pareto
        ]


class TestHotPathProfilerDeterminism:
    """The hot-path profiler is observational: on or off, same bytes out.

    Same contract the telemetry collectors carry (see
    ``tests/telemetry/test_determinism.py``): profiler phases never consume
    randomness and never branch simulation logic.
    """

    @staticmethod
    def _fingerprint(result) -> str:
        return json.dumps(
            {
                "jct_s": result.jct_s,
                "cost_usd": result.cost_usd,
                "epochs": [
                    [
                        e.index,
                        e.allocation.describe(),
                        e.loss,
                        e.cost.total_usd,
                        e.time.total_s,
                        e.scheduling_overhead_s,
                    ]
                    for e in result.epochs
                ],
            },
            sort_keys=True,
        )

    def _train(self, w, profile):
        budget = training_envelope(w, profile).budget(2.5)
        return run_training(
            w, method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=9, max_epochs=15, profile=profile,
        ).result

    def test_training_identical_with_profiler_on_and_off(
        self, mobilenet, mobilenet_profile
    ):
        baseline = self._fingerprint(self._train(mobilenet, mobilenet_profile))
        prev = get_profiler()
        profiler = Profiler()
        set_profiler(profiler)
        try:
            profiled = self._fingerprint(
                self._train(mobilenet, mobilenet_profile)
            )
        finally:
            set_profiler(prev)
            profiler.close()
        assert profiled == baseline
        # Guard against the trivial pass: the profiler saw the run.
        assert ("train/run",) in profiler.frames

    def test_tuning_identical_with_profiler_on_and_off(
        self, lr_higgs, lr_profile
    ):
        spec = SHASpec(32, 2, 2)
        budget = tuning_envelope(lr_profile, spec).budget(1.3)
        kw = dict(
            method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=5, profile=lr_profile,
        )
        a = run_tuning(lr_higgs, spec, **kw)
        prev = get_profiler()
        profiler = Profiler()
        set_profiler(profiler)
        try:
            b = run_tuning(lr_higgs, spec, **kw)
        finally:
            set_profiler(prev)
            profiler.close()
        assert a.result.jct_s == b.result.jct_s
        assert a.result.cost_usd == b.result.cost_usd
        assert a.result.winner.index == b.result.winner.index
        assert [p.allocation for p in a.plan.stages] == [
            p.allocation for p in b.plan.stages
        ]
        assert ("planner/plan",) in profiler.frames


class TestTimeSeriesSamplerDeterminism:
    """The time-series sampler is observational: on or off, same bytes out.

    Same contract the telemetry collectors and hot-path profiler carry:
    sampling sites never consume randomness and never branch simulation
    logic, so a run is byte-identical with the sampler installed or not —
    and two sampled runs produce byte-identical captures.
    """

    def _train(self, w, profile):
        budget = training_envelope(w, profile).budget(2.5)
        return run_training(
            w, method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=9, max_epochs=15, profile=profile,
        ).result

    def test_training_identical_with_sampler_on_and_off(
        self, mobilenet, mobilenet_profile
    ):
        fingerprint = TestHotPathProfilerDeterminism._fingerprint
        baseline = fingerprint(self._train(mobilenet, mobilenet_profile))
        prev = get_sampler()
        sampler = TimeSeriesSampler()
        set_sampler(sampler)
        try:
            sampled = fingerprint(self._train(mobilenet, mobilenet_profile))
        finally:
            set_sampler(prev)
        assert sampled == baseline
        # Guard against the trivial pass: the sampler saw the run.
        assert "train.allocation.m" in sampler.series
        assert "platform.inflight" in sampler.series

    def test_tuning_identical_with_sampler_on_and_off(self, lr_higgs, lr_profile):
        spec = SHASpec(32, 2, 2)
        budget = tuning_envelope(lr_profile, spec).budget(1.3)
        kw = dict(
            method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=5, profile=lr_profile,
        )
        a = run_tuning(lr_higgs, spec, **kw)
        prev = get_sampler()
        sampler = TimeSeriesSampler()
        set_sampler(sampler)
        try:
            b = run_tuning(lr_higgs, spec, **kw)
        finally:
            set_sampler(prev)
        assert a.result.jct_s == b.result.jct_s
        assert a.result.cost_usd == b.result.cost_usd
        assert a.result.winner.index == b.result.winner.index
        assert "tune.survivors" in sampler.series

    def test_capture_bit_exact_across_runs(self, mobilenet, mobilenet_profile):
        from repro.timeseries import TimeSeriesSession, to_json

        captures = []
        for _ in range(2):
            with TimeSeriesSession(force_install=True) as session:
                self._train(mobilenet, mobilenet_profile)
            captures.append(to_json(session.payload()))
        assert captures[0] == captures[1]

    def test_telemetry_bytes_identical_with_sampler_on_and_off(
        self, mobilenet, mobilenet_profile
    ):
        """The telemetry export itself must not see the sampler."""
        from repro.telemetry import get_registry, set_registry
        from repro.telemetry.metrics import MetricsRegistry

        def capture(with_sampler: bool) -> str:
            registry = MetricsRegistry()
            prev_reg = get_registry()
            set_registry(registry)
            prev = get_sampler()
            if with_sampler:
                set_sampler(TimeSeriesSampler())
            try:
                result = self._train(mobilenet, mobilenet_profile)
            finally:
                set_sampler(prev)
                set_registry(prev_reg)
            return to_json(
                registry.snapshot(),
                run={"jct_s": result.jct_s, "cost_usd": result.cost_usd},
                meta={"seed": 9},
            )

        assert capture(False) == capture(True)
