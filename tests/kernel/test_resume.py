"""`repro resume`: crash mid-run, replay, and bundle byte-identity."""

import json

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan


def _train_args(tmp_path, extra=()):
    return [
        "train", "mobilenet-cifar10", "--seed", "3",
        "--journal", str(tmp_path / "run.journal"),
        "--save-run", str(tmp_path / "store"),
        *extra,
    ]


def _manifests(tmp_path):
    root = tmp_path / "store" / "manifests"
    return sorted(p.name for p in root.glob("*.json")) if root.exists() else []


def _simulate_sigkill(journal_path, keep_epochs):
    """Rewrite the journal as a crash would leave it: ``keep_epochs`` full
    records, then a torn half-written line, and no commit."""
    lines = journal_path.read_text().splitlines()
    kept = lines[: 1 + keep_epochs]
    torn = lines[1 + keep_epochs][:37]
    journal_path.write_text("\n".join(kept) + "\n" + torn)


class TestResumeCLI:
    def test_interrupted_run_resumes_to_identical_bundle(self, tmp_path, capsys):
        assert main(_train_args(tmp_path)) == 0
        out = capsys.readouterr().out
        run_line = next(s for s in out.splitlines() if s.startswith("run"))
        journal = tmp_path / "run.journal"
        finished = journal.read_bytes()
        before = _manifests(tmp_path)
        assert len(before) == 1

        _simulate_sigkill(journal, keep_epochs=20)
        assert main(["resume", str(journal)]) == 0
        resumed = capsys.readouterr().out
        assert "replaying 20 journaled epoch boundary(ies)" in resumed
        # Same run id, same single manifest (the store is content-addressed,
        # so a byte-identical bundle dedups onto the first save), and the
        # journal's bytes match the uninterrupted run's exactly.
        assert run_line in resumed
        assert _manifests(tmp_path) == before
        assert journal.read_bytes() == finished

    def test_resume_after_faulted_crash(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(FaultPlan.default_profile().to_json())
        args = _train_args(tmp_path, extra=["--faults", str(plan)])
        assert main(args) == 0
        capsys.readouterr()
        journal = tmp_path / "run.journal"
        finished = journal.read_bytes()
        before = _manifests(tmp_path)

        _simulate_sigkill(journal, keep_epochs=7)
        assert main(["resume", str(journal)]) == 0
        assert _manifests(tmp_path) == before
        assert journal.read_bytes() == finished

    def test_committed_journal_is_a_noop(self, tmp_path, capsys):
        assert main(_train_args(tmp_path)) == 0
        capsys.readouterr()
        journal = tmp_path / "run.journal"
        stamp = journal.stat().st_mtime_ns
        assert main(["resume", str(journal)]) == 0
        assert "already committed" in capsys.readouterr().out
        assert journal.stat().st_mtime_ns == stamp

    def test_resume_rejects_foreign_journal(self, tmp_path, capsys):
        bogus = tmp_path / "other.journal"
        bogus.write_text(
            json.dumps(
                {"schema": "repro-journal/v1", "kind": "header",
                 "run": {"command": "tune"}, "meta": {}}
            )
            + "\n"
        )
        assert main(["resume", str(bogus)]) == 2
        assert "not resumable" in capsys.readouterr().err

    def test_resume_rejects_missing_journal(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "absent.journal")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_divergent_code_path_fails_loudly(self, tmp_path, capsys):
        assert main(_train_args(tmp_path)) == 0
        capsys.readouterr()
        journal = tmp_path / "run.journal"
        lines = journal.read_text().splitlines()
        # Tamper coherently: change a journaled value AND its digest, so
        # the record parses as consistent but no longer matches what the
        # deterministic re-execution produces.
        from repro.kernel import epoch_record_digest

        rec = json.loads(lines[5])
        rec["loss"] = 123.456
        rec["digest"] = epoch_record_digest(rec)
        lines[5] = json.dumps(rec, sort_keys=True)
        journal.write_text("\n".join(lines[:8]) + "\n")
        from repro.common.errors import ReproError

        with pytest.raises(ReproError, match="diverged"):
            main(["resume", str(journal)])
