"""The unified event kernel: priorities, clocks, and the faas shim."""

import pytest

from repro.common.errors import SimulationError
from repro.kernel import Acquire, EventKernel, Join, Priority, Release, Resource


class TestPriorityDispatch:
    def test_equal_time_fires_by_priority_class(self):
        kernel = EventKernel()
        order = []
        # Scheduled worst-first: the heap must reorder them by class.
        kernel.schedule(1.0, lambda: order.append("slo"), Priority.SLO)
        kernel.schedule(1.0, lambda: order.append("sched"), Priority.SCHEDULER)
        kernel.schedule(1.0, lambda: order.append("storage"), Priority.STORAGE)
        kernel.schedule(1.0, lambda: order.append("exec"), Priority.EXECUTION)
        kernel.schedule(1.0, lambda: order.append("fault"), Priority.FAULT)
        kernel.run()
        assert order == ["fault", "exec", "storage", "sched", "slo"]

    def test_same_priority_keeps_scheduling_order(self):
        kernel = EventKernel()
        order = []
        for i in range(5):
            kernel.schedule(2.0, lambda i=i: order.append(i))
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_beats_priority(self):
        kernel = EventKernel()
        order = []
        kernel.schedule(1.0, lambda: order.append("early-slo"), Priority.SLO)
        kernel.schedule(2.0, lambda: order.append("late-fault"), Priority.FAULT)
        kernel.run()
        assert order == ["early-slo", "late-fault"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventKernel().schedule(-0.1, lambda: None)


class TestJobClock:
    def test_credit_accumulates_in_order(self):
        kernel = EventKernel()
        assert kernel.job_clock_s == 0.0
        assert kernel.credit_job_time(1.5) == 1.5
        assert kernel.credit_job_time(0.0) == 1.5
        assert kernel.credit_job_time(2.25) == 3.75
        assert kernel.job_clock_s == 3.75

    def test_credit_order_is_bitwise_reproducible(self):
        overheads = [0.1, 0.7, 1e-9, 3.3, 0.2]
        a, b = EventKernel(), EventKernel()
        for dt in overheads:
            a.credit_job_time(dt)
            b.credit_job_time(dt)
        assert a.job_clock_s == b.job_clock_s

    def test_negative_credit_rejected(self):
        with pytest.raises(SimulationError):
            EventKernel().credit_job_time(-1.0)

    def test_job_clock_independent_of_event_clock(self):
        kernel = EventKernel()
        kernel.schedule(5.0, lambda: None)
        kernel.run()
        assert kernel.now == 5.0
        assert kernel.job_clock_s == 0.0


class TestProcesses:
    def test_gang_with_resource_and_join(self):
        kernel = EventKernel()
        pool = Resource(2, name="slots")
        done = []

        def worker(i):
            yield 1.0 * (i + 1)
            done.append(i)

        def driver():
            yield Acquire(pool, 2)
            tasks = [kernel.spawn(worker(i)) for i in range(2)]
            yield Join.of(tasks)
            yield Release(pool, 2)

        task = kernel.spawn(driver())
        kernel.run()
        assert task.done and done == [0, 1]
        assert pool.available == 2 and pool.peak_in_use == 2

    def test_events_processed_counts_dispatches(self):
        kernel = EventKernel()
        for _ in range(3):
            kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert kernel.events_processed == 3

    def test_max_events_guards_livelock(self):
        kernel = EventKernel()

        def forever():
            while True:
                yield 0.0

        kernel.spawn(forever())
        with pytest.raises(SimulationError):
            kernel.run(max_events=50)


class TestFaasShim:
    def test_simulator_is_the_kernel(self):
        from repro.faas.events import Simulator

        assert Simulator is EventKernel

    def test_platform_runs_on_the_kernel(self):
        from repro.faas.platform import FaaSPlatform

        platform = FaaSPlatform()
        assert isinstance(platform.sim, EventKernel)
        assert platform.noise_draws == 0
