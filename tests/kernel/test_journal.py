"""The repro-journal/v1 write-ahead log: durability and torn-tail repair."""

import json

import pytest

from repro.kernel import JOURNAL_SCHEMA, JournalError, RunJournal, epoch_record_digest


def _fields(epoch=1, **over):
    fields = {
        "epoch": epoch, "attempt": 0, "job_clock_s": 10.5 * epoch,
        "event_clock_s": 9.25 * epoch, "events_processed": 100 * epoch,
        "noise_draws": 7 * epoch, "fault_records": 0, "loss": 1.0 / epoch,
        "cost_usd": 0.01 * epoch, "allocation": "4fn/1769MB/s3",
    }
    fields.update(over)
    return fields


@pytest.fixture()
def journal_path(tmp_path):
    return tmp_path / "run.journal"


class TestFreshJournal:
    def test_header_then_records_then_commit(self, journal_path):
        with RunJournal.create(journal_path, run={"command": "train"}) as j:
            j.record_epoch(**_fields(1))
            j.record_epoch(**_fields(2))
            j.commit({"n_epochs": 2})
        lines = [json.loads(s) for s in journal_path.read_text().splitlines()]
        assert lines[0]["schema"] == JOURNAL_SCHEMA
        assert lines[0]["kind"] == "header"
        assert [r["kind"] for r in lines[1:]] == ["epoch", "epoch", "commit"]
        assert lines[1]["digest"] == epoch_record_digest(lines[1])

    def test_missing_field_rejected(self, journal_path):
        with RunJournal.create(journal_path, run={}) as j:
            bad = _fields()
            bad.pop("noise_draws")
            with pytest.raises(JournalError, match="noise_draws"):
                j.record_epoch(**bad)

    def test_write_after_close_rejected(self, journal_path):
        j = RunJournal.create(journal_path, run={})
        j.close()
        with pytest.raises(JournalError, match="closed"):
            j.record_epoch(**_fields())


def _write_journal(path, n_epochs, committed=False):
    with RunJournal.create(path, run={"command": "train"}) as j:
        for e in range(1, n_epochs + 1):
            j.record_epoch(**_fields(e))
        if committed:
            j.commit()


class TestTornTailRepair:
    def test_partial_last_line_truncated(self, journal_path):
        _write_journal(journal_path, 3)
        text = journal_path.read_text()
        lines = text.splitlines()
        journal_path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:25])
        with RunJournal.open_resume(journal_path) as j:
            assert j.n_epochs_journaled == 2
        # The torn bytes are gone: the file ends at a clean boundary.
        assert journal_path.read_text().endswith("\n")
        reopened = RunJournal.open_resume(journal_path)
        assert reopened.n_epochs_journaled == 2
        reopened.close()

    def test_corrupt_json_line_truncates_from_there(self, journal_path):
        _write_journal(journal_path, 3)
        lines = journal_path.read_text().splitlines()
        lines[2] = "{not json"
        journal_path.write_text("\n".join(lines) + "\n")
        with RunJournal.open_resume(journal_path) as j:
            # Epoch 1 survives; the corrupt line and everything after go.
            assert j.n_epochs_journaled == 1

    def test_digest_mismatch_truncates(self, journal_path):
        _write_journal(journal_path, 2)
        lines = journal_path.read_text().splitlines()
        tampered = json.loads(lines[2])
        tampered["cost_usd"] += 1.0  # bytes no longer match the digest
        lines[2] = json.dumps(tampered, sort_keys=True)
        journal_path.write_text("\n".join(lines) + "\n")
        with RunJournal.open_resume(journal_path) as j:
            assert j.n_epochs_journaled == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            RunJournal.open_resume(tmp_path / "absent.journal")

    def test_wrong_header_raises(self, journal_path):
        journal_path.write_text('{"kind": "epoch"}\n')
        with pytest.raises(JournalError, match="header"):
            RunJournal.open_resume(journal_path)


class TestReplayValidation:
    def test_matching_replay_then_append(self, journal_path):
        _write_journal(journal_path, 2)
        with RunJournal.open_resume(journal_path) as j:
            assert j.replay_remaining == 2
            j.record_epoch(**_fields(1))
            assert j.replay_remaining == 1
            j.record_epoch(**_fields(2))
            assert j.replay_remaining == 0
            j.record_epoch(**_fields(3))  # past the prefix: appended
            j.commit()
        reopened = RunJournal.open_resume(journal_path)
        assert reopened.n_epochs_journaled == 3
        assert reopened.committed
        reopened.close()

    def test_divergent_replay_fails_loudly(self, journal_path):
        _write_journal(journal_path, 1)
        with RunJournal.open_resume(journal_path) as j:
            with pytest.raises(JournalError, match="cost_usd"):
                j.record_epoch(**_fields(1, cost_usd=99.0))

    def test_commit_is_idempotent(self, journal_path):
        _write_journal(journal_path, 1, committed=True)
        with RunJournal.open_resume(journal_path) as j:
            assert j.committed
            j.commit()  # no second commit line
        lines = journal_path.read_text().splitlines()
        assert sum(1 for s in lines if json.loads(s)["kind"] == "commit") == 1
