"""CLI surface of the run registry: --save-run, repro runs, exit codes."""

import json

import pytest

from repro.cli import build_parser, main
from repro.faults import FaultPlan
from repro.runs import RunStore


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """One store holding a clean run and a storage-throttled run."""
    root = tmp_path_factory.mktemp("registry")
    store = root / "runs"
    plan = root / "throttle.json"
    plan.write_text(
        json.dumps(
            {
                "schema": "repro-faults/v1",
                "name": "storage-throttle",
                "storage": {
                    "*": {
                        "throttle_windows": [
                            {"start_s": 0.0, "duration_s": 1e6, "slowdown": 4.0}
                        ]
                    }
                },
            }
        )
    )
    FaultPlan.load(plan)  # the fixture plan itself must be valid
    base = ["train", "lr-higgs", "--budget", "2.0", "--save-run", str(store)]
    assert main(base) == 0
    assert main(base + ["--faults", str(plan)]) == 0
    ids = RunStore(store).run_ids()
    assert len(ids) == 2
    manifests = {run_id: RunStore(store).load(run_id) for run_id in ids}
    clean = next(
        r for r, m in manifests.items() if "faults" not in
        {e["kind"] for e in m["artifacts"]}
    )
    throttled = next(r for r in ids if r != clean)
    return {"store": store, "clean": clean, "throttled": throttled}


class TestParser:
    def test_save_run_flag_defaults(self):
        args = build_parser().parse_args(["train", "lr-higgs", "--save-run"])
        assert args.save_run == ".repro/runs"
        args = build_parser().parse_args(
            ["train", "lr-higgs", "--save-run", "/tmp/x"]
        )
        assert args.save_run == "/tmp/x"
        assert build_parser().parse_args(["train", "lr-higgs"]).save_run is None

    def test_runs_actions(self):
        args = build_parser().parse_args(["runs", "compare", "ra", "rb"])
        assert args.action == "compare"
        assert args.refs == ["ra", "rb"]
        assert args.threshold == 0.01
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "frobnicate"])


class TestSaveRun:
    def test_save_is_byte_stable_across_reruns(self, populated, capsys):
        store = RunStore(populated["store"])
        path = store.manifest_dir / f"{populated['clean']}.json"
        before = path.read_bytes()
        assert main(
            ["train", "lr-higgs", "--budget", "2.0",
             "--save-run", str(populated["store"])]
        ) == 0
        assert f"run    : {populated['clean']}" in capsys.readouterr().out
        assert path.read_bytes() == before
        assert len(store.run_ids()) == 2  # no new run materialized

    def test_bundle_carries_default_artifacts(self, populated):
        store = RunStore(populated["store"])
        manifest = store.load(populated["clean"])
        kinds = {e["kind"] for e in manifest["artifacts"]}
        assert kinds == {"telemetry", "trace", "events", "timeseries"}
        assert all(e["deterministic"] for e in manifest["artifacts"])
        assert manifest["summary"]["jct_s"] > 0

    def test_meta_stamp_consistent_across_artifacts(self, populated):
        """Every capture in one bundle carries the same provenance core."""
        store = RunStore(populated["store"])
        manifest = store.load(populated["throttled"])
        metas = [manifest["meta"]]
        for kind in ("telemetry", "timeseries", "faults"):
            doc = json.loads(store.read_artifact(manifest, kind))
            metas.append(doc["meta"])
        header = json.loads(
            store.read_artifact(manifest, "events").splitlines()[0]
        )
        metas.append(header["meta"])
        cores = {
            (
                m["command"], m["workload"], m["method"], m["seed"],
                m["provenance"]["package_version"],
                m["provenance"]["config_hash"],
            )
            for m in metas
        }
        assert len(cores) == 1

    def test_works_alongside_explicit_capture_paths(self, tmp_path, capsys):
        tel = tmp_path / "tel.json"
        assert main(
            ["train", "lr-higgs", "--telemetry", str(tel),
             "--save-run", str(tmp_path / "runs")]
        ) == 0
        capsys.readouterr()
        store = RunStore(tmp_path / "runs")
        (run_id,) = store.run_ids()
        manifest = store.load(run_id)
        # The file on disk and the bundled artifact are the same bytes.
        assert store.read_artifact(manifest, "telemetry") == tel.read_text()


class TestRunsCommand:
    def test_list_table_and_ids(self, populated, capsys):
        argv = ["runs", "list", "--store", str(populated["store"])]
        assert main(argv) == 0
        table = capsys.readouterr().out
        assert populated["clean"] in table
        assert "lr-higgs" in table
        assert main(argv + ["--format", "ids"]) == 0
        ids = capsys.readouterr().out.split()
        assert sorted(ids) == sorted([populated["clean"], populated["throttled"]])

    def test_show_resolves_prefix(self, populated, capsys):
        assert main(
            ["runs", "show", populated["clean"][:6],
             "--store", str(populated["store"])]
        ) == 0
        assert f"run {populated['clean']}" in capsys.readouterr().out

    def test_show_json_is_the_manifest(self, populated, capsys):
        assert main(
            ["runs", "show", populated["clean"], "--format", "json",
             "--store", str(populated["store"])]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-bundle/v1"
        assert payload["run_id"] == populated["clean"]

    def test_self_compare_identical_exit_0(self, populated, capsys):
        assert main(
            ["runs", "compare", populated["clean"], populated["clean"],
             "--store", str(populated["store"])]
        ) == 0
        assert "verdict: IDENTICAL" in capsys.readouterr().out

    def test_throttled_run_regresses_exit_1(self, populated, capsys, tmp_path):
        out = tmp_path / "compare.json"
        assert main(
            ["runs", "compare", populated["clean"], populated["throttled"],
             "--store", str(populated["store"]), "--out", str(out)]
        ) == 1
        text = capsys.readouterr().out
        assert "verdict: REGRESSED" in text
        report = json.loads(out.read_text())
        kinds = {r["kind"] for r in report["verdict"]["regressions"]}
        assert "faults" in kinds  # throttle windows attributed by the ledger
        assert any(
            "storage-throttle" in r["detail"]
            for r in report["verdict"]["regressions"]
            if r["kind"] == "faults"
        )

    def test_export_and_gc(self, populated, tmp_path, capsys):
        dest = tmp_path / "exported"
        assert main(
            ["runs", "export", populated["clean"], str(dest),
             "--store", str(populated["store"])]
        ) == 0
        assert (dest / "manifest.json").is_file()
        assert (dest / "telemetry.json").is_file()
        capsys.readouterr()
        assert main(["runs", "gc", "--store", str(populated["store"])]) == 0
        assert "0 object(s) removed" in capsys.readouterr().out

    def test_bad_ref_exits_2(self, populated, capsys):
        assert main(
            ["runs", "show", "rdoesnotexist",
             "--store", str(populated["store"])]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro runs: ")
        assert err.count("\n") == 1  # exactly one line

    def test_wrong_arity_exits_2(self, populated, capsys):
        assert main(
            ["runs", "compare", populated["clean"],
             "--store", str(populated["store"])]
        ) == 2
        assert "BASE and TARGET" in capsys.readouterr().err


class TestUnifiedBadCaptureErrors:
    """Satellite: every capture-reading command fails the same way —
    one line on stderr, exit 2."""

    def _check(self, capsys, argv, command):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"repro {command}: ")
        assert err.count("\n") == 1

    def test_profile_diff(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        self._check(
            capsys, ["profile", "--diff", str(bad), str(bad)], "profile"
        )

    def test_timeseries_validate_and_diff(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        self._check(capsys, ["timeseries", "validate", str(bad)], "timeseries")
        self._check(
            capsys, ["timeseries", "diff", str(bad), str(bad)], "timeseries"
        )

    def test_dash_replay(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        self._check(capsys, ["dash", "--replay", str(missing)], "dash")

    def test_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        self._check(capsys, ["report", str(bad)], "report")
