"""compare_runs: the repro-compare/v1 verdict over two stored bundles."""

import json

import pytest

from repro.runs import (
    ProvenanceStamp,
    RunBundle,
    RunStore,
    compare_runs,
    compare_to_json,
    has_regression,
)
from repro.runs.compare import render_compare


def _stamp(seed: int = 0) -> ProvenanceStamp:
    return ProvenanceStamp.collect("train", workload="lr-higgs", seed=seed)


def _faults_text(n_faults: int, kind: str = "storage-throttle") -> str:
    return json.dumps(
        {
            "schema": "repro-faults-report/v1",
            "summary": {
                "n_faults": n_faults,
                "n_recoveries": n_faults,
                "fault_time_s": 2.5 * n_faults,
                "recovery_time_s": 0.5 * n_faults,
                "by_kind": {kind: n_faults} if n_faults else {},
            },
        }
    )


def _events_text(n_alerts: int) -> str:
    lines = ['{"schema": "repro-events/v1"}']
    lines += ['{"kind": "alert", "t_s": %d}' % i for i in range(n_alerts)]
    return "\n".join(lines) + "\n"


def _save(store, seed=0, jct=10.0, cost=0.5, restarts=0, converged=True,
          faults=None, events=None) -> str:
    summary = {
        "jct_s": jct,
        "cost_usd": cost,
        "n_restarts": restarts,
        "converged": converged,
    }
    artifacts = {"trace": json.dumps({"traceEvents": [], "jct": jct})}
    if faults is not None:
        artifacts["faults"] = faults
    if events is not None:
        artifacts["events"] = events
    return store.save(RunBundle(_stamp(seed), artifacts, summary=summary))


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


class TestVerdict:
    def test_self_compare_is_identical(self, store):
        run = _save(store)
        report = compare_runs(store, run, run)
        assert report["verdict"]["verdict"] == "identical"
        assert not has_regression(report)
        assert all(
            row["direction"] == "identical"
            for row in report["deltas"]["summary"]
        )

    def test_jct_increase_regresses(self, store):
        base = _save(store, seed=0, jct=10.0)
        worse = _save(store, seed=1, jct=12.0)
        report = compare_runs(store, base, worse)
        assert has_regression(report)
        whats = [r["what"] for r in report["verdict"]["regressions"]]
        assert "jct_s" in whats

    def test_small_delta_is_noise_not_regression(self, store):
        base = _save(store, seed=0, jct=10.0)
        near = _save(store, seed=1, jct=10.05)  # +0.5% < 1% threshold
        report = compare_runs(store, base, near)
        assert not has_regression(report)
        row = next(
            r for r in report["deltas"]["summary"] if r["key"] == "jct_s"
        )
        assert row["direction"] == "noise"

    def test_threshold_is_tunable(self, store):
        base = _save(store, seed=0, jct=10.0)
        near = _save(store, seed=1, jct=10.05)
        assert has_regression(compare_runs(store, base, near, threshold=0.001))

    def test_jct_decrease_improves(self, store):
        base = _save(store, seed=0, jct=10.0)
        better = _save(store, seed=1, jct=8.0)
        report = compare_runs(store, base, better)
        assert report["verdict"]["verdict"] == "improved"

    def test_any_restart_increase_regresses(self, store):
        base = _save(store, seed=0, restarts=0)
        worse = _save(store, seed=1, restarts=1)
        report = compare_runs(store, base, worse)
        assert has_regression(report)
        assert any(
            r["what"] == "n_restarts" for r in report["verdict"]["regressions"]
        )

    def test_convergence_flip_regresses(self, store):
        base = _save(store, seed=0, converged=True)
        worse = _save(store, seed=1, converged=False)
        assert has_regression(compare_runs(store, base, worse))


class TestFaultAttribution:
    def test_new_faults_regress_and_name_the_kind(self, store):
        clean = _save(store, seed=0, faults=_faults_text(0))
        faulty = _save(store, seed=1, faults=_faults_text(3))
        report = compare_runs(store, clean, faulty)
        assert has_regression(report)
        entry = next(
            r for r in report["verdict"]["regressions"] if r["kind"] == "faults"
        )
        assert "storage-throttle" in entry["detail"]
        assert report["deltas"]["faults"]["n_faults"]["delta"] == 3

    def test_event_counts_delta(self, store):
        quiet = _save(store, seed=0, events=_events_text(0))
        noisy = _save(store, seed=1, events=_events_text(4))
        report = compare_runs(store, quiet, noisy)
        assert report["deltas"]["events"]["alert"]["delta"] == 4

    def test_absent_artifacts_yield_null_deltas(self, store):
        a, b = _save(store, seed=0), _save(store, seed=1)
        report = compare_runs(store, a, b)
        assert report["deltas"]["slo"] is None
        assert report["deltas"]["faults"] is None
        assert report["attribution"]["timeseries"] is None
        assert report["attribution"]["profile"] is None


class TestSerialization:
    def test_report_is_byte_stable(self, store):
        run = _save(store)
        a = compare_to_json(compare_runs(store, run, run))
        b = compare_to_json(compare_runs(store, run, run))
        assert a == b
        assert json.loads(a)["schema"] == "repro-compare/v1"

    def test_render_shows_verdict_and_regressions(self, store):
        base = _save(store, seed=0, jct=10.0, faults=_faults_text(0))
        worse = _save(store, seed=1, jct=12.0, faults=_faults_text(2))
        text = render_compare(compare_runs(store, base, worse))
        assert "verdict: REGRESSED" in text
        assert "- regression [summary] jct_s" in text
        assert "- regression [faults]" in text
