"""RunStore: the content-addressed registry under .repro/runs."""

import pytest

from repro.common.errors import ValidationError
from repro.runs import ProvenanceStamp, RunBundle, RunStore


def _bundle(seed: int = 0, text: str = '{"traceEvents": []}\n') -> RunBundle:
    stamp = ProvenanceStamp.collect("train", workload="lr-higgs", seed=seed)
    return RunBundle(
        stamp,
        {"trace": text, "telemetry": '{"schema": "repro-telemetry/v1"}\n'},
        summary={"jct_s": 10.0 + seed},
    )


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


class TestRoundTrip:
    def test_save_load(self, store):
        bundle = _bundle()
        run_id = store.save(bundle)
        manifest = store.load(run_id)
        assert manifest["run_id"] == run_id
        assert store.read_artifact(manifest, "trace") == '{"traceEvents": []}\n'

    def test_save_is_idempotent_and_byte_stable(self, store):
        first = store.save(_bundle())
        path = store.manifest_dir / f"{first}.json"
        before = path.read_bytes()
        assert store.save(_bundle()) == first
        assert path.read_bytes() == before
        assert store.run_ids() == [first]

    def test_shared_objects_stored_once(self, store):
        store.save(_bundle(seed=0))
        store.save(_bundle(seed=1))  # same artifact bytes, different identity
        objects = [p for p in store.object_dir.rglob("*") if p.is_file()]
        assert len(store.run_ids()) == 2
        assert len(objects) == 2  # trace + telemetry, deduplicated


class TestResolve:
    def test_unique_prefix(self, store):
        run_id = store.save(_bundle())
        assert store.resolve(run_id[:5]) == run_id

    def test_missing_ref(self, store):
        store.save(_bundle())
        with pytest.raises(ValidationError, match="no run matching"):
            store.resolve("rffffffffffff")

    def test_ambiguous_prefix(self, store):
        store.save(_bundle(seed=0))
        store.save(_bundle(seed=1))
        with pytest.raises(ValidationError, match="ambiguous run prefix"):
            store.resolve("r")


class TestIntegrity:
    def test_missing_artifact_kind(self, store):
        manifest = store.load(store.save(_bundle()))
        with pytest.raises(ValidationError, match="no 'profile' artifact"):
            store.read_artifact(manifest, "profile")

    def test_corrupt_object_detected(self, store):
        manifest = store.load(store.save(_bundle()))
        entry = next(e for e in manifest["artifacts"] if e["kind"] == "trace")
        store._object_path(entry["sha256"]).write_text("tampered")
        with pytest.raises(ValidationError, match="corrupt"):
            store.read_artifact(manifest, "trace")

    def test_missing_object_detected(self, store):
        manifest = store.load(store.save(_bundle()))
        entry = next(e for e in manifest["artifacts"] if e["kind"] == "trace")
        store._object_path(entry["sha256"]).unlink()
        with pytest.raises(ValidationError, match="missing from the store"):
            store.read_artifact(manifest, "trace")


class TestMaintenance:
    def test_export(self, store, tmp_path):
        run_id = store.save(_bundle())
        written = store.export(run_id, tmp_path / "out")
        names = sorted(p.name for p in written)
        assert names == ["manifest.json", "telemetry.json", "trace.json"]
        assert (tmp_path / "out" / "trace.json").read_text() == '{"traceEvents": []}\n'

    def test_gc_reclaims_orphans(self, store):
        keep = store.save(_bundle(text='{"traceEvents": [1]}\n'))
        drop = store.save(_bundle(text='{"traceEvents": [2]}\n'))
        assert store.remove(drop) == drop
        stats = store.gc()
        assert stats["n_runs"] == 1
        assert stats["n_removed"] == 1  # the dropped run's unique trace
        assert stats["n_kept"] == 2  # kept run's trace + shared telemetry
        assert store.run_ids() == [keep]
        # The kept run is still fully readable after the sweep.
        manifest = store.load(keep)
        assert store.read_artifact(manifest, "telemetry")

    def test_gc_on_empty_store(self, store):
        assert store.gc() == {"n_removed": 0, "n_kept": 0, "n_runs": 0}
