"""ProvenanceStamp: the shared who/what/how block in every capture's meta."""

from dataclasses import dataclass

from repro.common.meta import coerce_meta
from repro.config import DEFAULT_PLATFORM
from repro.runs import ProvenanceStamp, hash_config
from repro._version import __version__


@dataclass(frozen=True)
class _Cfg:
    rate: float = 1.5
    name: str = "x"


class TestHashConfig:
    def test_stable_across_calls(self):
        assert hash_config(_Cfg()) == hash_config(_Cfg())
        assert len(hash_config(_Cfg())) == 12

    def test_sensitive_to_values(self):
        assert hash_config(_Cfg(rate=2.0)) != hash_config(_Cfg())

    def test_handles_enum_keyed_platform_config(self):
        # DEFAULT_PLATFORM nests StorageKind-keyed dicts; the hash must not
        # choke on unsortable enum keys.
        digest = hash_config(DEFAULT_PLATFORM)
        assert digest == hash_config(DEFAULT_PLATFORM)

    def test_plain_dict_and_opaque_object(self):
        assert hash_config({"a": 1}) == hash_config({"a": 1})
        assert hash_config(object()) != ""


class TestStamp:
    def test_collect_fills_version_and_config_hash(self):
        stamp = ProvenanceStamp.collect("train", workload="lr-higgs", seed=3)
        assert stamp.package_version == __version__
        assert stamp.config_hash == hash_config(DEFAULT_PLATFORM)
        assert stamp.seed == 3

    def test_to_meta_keeps_legacy_keys_top_level(self):
        meta = ProvenanceStamp.collect(
            "train", workload="lr-higgs", method="adaptive", seed=7
        ).to_meta()
        assert meta["command"] == "train"
        assert meta["workload"] == "lr-higgs"
        assert meta["method"] == "adaptive"
        assert meta["seed"] == 7
        assert set(meta["provenance"]) == {
            "package_version", "config_hash", "argv", "schema_versions",
        }

    def test_meta_round_trip(self):
        stamp = ProvenanceStamp.collect(
            "tune", workload="mn-mnist", seed=1,
            argv=["tune", "mn-mnist", "--seed", "1"],
            schema_versions={"telemetry": "repro-telemetry/v1"},
        )
        assert ProvenanceStamp.from_meta(stamp.to_meta()) == stamp

    def test_identity_excludes_argv_and_schemas(self):
        a = ProvenanceStamp.collect("train", workload="w", argv=["--out", "a.json"])
        b = ProvenanceStamp.collect("train", workload="w", argv=["--out", "b.json"])
        assert a.identity() == b.identity()
        assert a.with_schemas({"trace": "x"}).identity() == a.identity()

    def test_identity_tracks_run_context(self):
        a = ProvenanceStamp.collect("train", workload="w", seed=0)
        b = ProvenanceStamp.collect("train", workload="w", seed=1)
        assert a.identity() != b.identity()


class TestCoerceMeta:
    def test_plain_dict_passes_through_unchanged(self):
        # The satellite contract: dict-meta captures stay byte-identical.
        meta = {"command": "train", "workload": "w", "seed": 0}
        assert coerce_meta(meta) == meta

    def test_none_becomes_empty(self):
        assert coerce_meta(None) == {}

    def test_stamp_expands_via_to_meta(self):
        stamp = ProvenanceStamp.collect("train", workload="w")
        assert coerce_meta(stamp) == stamp.to_meta()
