"""RunBundle: byte-stable repro-bundle/v1 manifests, deterministic run ids."""

import pytest

from repro.common.errors import ValidationError
from repro.runs import (
    ARTIFACT_KINDS,
    Artifact,
    HOST_TIMED_KINDS,
    ProvenanceStamp,
    RunBundle,
    derive_run_id,
    load_manifest,
    manifest_to_json,
    render_manifest,
    validate_manifest,
)

STAMP = ProvenanceStamp.collect("train", workload="lr-higgs", seed=0)


def _bundle(**extra_artifacts) -> RunBundle:
    artifacts = {
        "telemetry": '{"schema": "repro-telemetry/v1"}\n',
        "trace": '{"traceEvents": []}\n',
        **extra_artifacts,
    }
    return RunBundle(STAMP, artifacts, summary={"jct_s": 10.0, "cost_usd": 0.5})


class TestArtifact:
    def test_entry_fields(self):
        art = Artifact("telemetry", '{"x": 1}\n')
        entry = art.to_entry()
        assert entry["filename"] == "telemetry.json"
        assert entry["artifact_schema"] == "repro-telemetry/v1"
        assert entry["deterministic"] is True
        assert entry["n_bytes"] == len('{"x": 1}\n')
        assert len(entry["sha256"]) == 64

    def test_host_timed_kinds_flagged(self):
        for kind in HOST_TIMED_KINDS:
            assert Artifact(kind, "x").deterministic is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown artifact kind"):
            Artifact("screenshot", "x")

    def test_every_kind_has_filename_and_schema_slot(self):
        for kind, (filename, schema) in ARTIFACT_KINDS.items():
            assert filename
            assert schema is None or schema.endswith("/v1"), kind


class TestRunId:
    def test_deterministic(self):
        a, b = _bundle(), _bundle()
        assert a.run_id == b.run_id
        assert a.run_id.startswith("r") and len(a.run_id) == 13

    def test_argv_does_not_change_id(self):
        stamped = ProvenanceStamp.collect(
            "train", workload="lr-higgs", seed=0, argv=["--telemetry", "t.json"]
        )
        assert (
            RunBundle(stamped, {"trace": "{}"}).run_id
            == RunBundle(STAMP, {"trace": "{}"}).run_id
        )

    def test_host_timed_artifacts_do_not_change_id(self):
        base = _bundle()
        with_prof = _bundle(
            profile='{"schema": "repro-profile/v1", "wall": 0.123}\n',
            flamegraph="root;train 42\n",
        )
        assert base.run_id == with_prof.run_id

    def test_deterministic_artifact_bytes_change_id(self):
        other = RunBundle(
            STAMP,
            {"telemetry": '{"schema": "repro-telemetry/v1", "n": 2}\n',
             "trace": '{"traceEvents": []}\n'},
        )
        assert other.run_id != _bundle().run_id

    def test_derive_run_id_order_insensitive(self):
        arts = [Artifact("trace", "{}"), Artifact("telemetry", "{}")]
        assert derive_run_id(STAMP, arts) == derive_run_id(STAMP, arts[::-1])


class TestManifest:
    def test_byte_stable(self):
        assert manifest_to_json(_bundle().manifest()) == manifest_to_json(
            _bundle().manifest()
        )

    def test_round_trip(self):
        text = manifest_to_json(_bundle().manifest())
        payload = load_manifest(text)
        assert payload["run_id"] == _bundle().run_id
        assert manifest_to_json(payload) == text

    def test_schema_versions_recorded(self):
        manifest = _bundle().manifest()
        schemas = manifest["meta"]["provenance"]["schema_versions"]
        assert schemas == {"telemetry": "repro-telemetry/v1"}

    def test_validate_rejects_bad_documents(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_manifest("nope{")
        with pytest.raises(ValidationError, match="expected schema"):
            validate_manifest({"schema": "other/v1"})
        good = _bundle().manifest()
        with pytest.raises(ValidationError, match="top-level keys"):
            validate_manifest({**good, "extra": 1})
        with pytest.raises(ValidationError, match="malformed run id"):
            validate_manifest({**good, "run_id": "deadbeef"})
        bad_entry = {**good, "artifacts": [{"kind": "telemetry"}]}
        with pytest.raises(ValidationError, match="lacks keys"):
            validate_manifest(bad_entry)

    def test_render_mentions_run_and_artifacts(self):
        text = render_manifest(_bundle().manifest())
        assert _bundle().run_id in text
        assert "telemetry.json" in text
        assert "jct_s=10.0000" in text
