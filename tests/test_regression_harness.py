"""The benchmark harness: record, compare, fail on a synthetic slowdown."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def harness():
    """benchmarks/regression.py loaded by path (it is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "regression_harness", REPO_ROOT / "benchmarks" / "regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRecord:
    def test_records_schema_and_counters(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        code = harness.main(["--experiments", "fig03", "--out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == harness.JSON_SCHEMA
        assert doc["scale"] == "tiny" and doc["seed"] == 0
        entry = doc["experiments"]["fig03"]
        assert entry["wall_s"] > 0.0
        assert set(entry["counters"]) <= set(harness.TRACKED_COUNTERS)
        # Every tracked counter also gets an informational per-second rate.
        assert set(entry["rates"]) == {
            f"{name}_per_s" for name in entry["counters"]
        }
        for name, value in entry["counters"].items():
            expected = round(value / entry["wall_s"], 1)
            assert entry["rates"][f"{name}_per_s"] == pytest.approx(
                expected, rel=0.01
            )

    def test_unknown_experiment_rejected(self, harness, tmp_path):
        with pytest.raises(SystemExit):
            harness.main(
                ["--experiments", "no-such-figure",
                 "--out", str(tmp_path / "b.json")]
            )


class TestCompare:
    @pytest.fixture(scope="class")
    def baseline(self, harness, tmp_path_factory):
        """A real fig03 record whose baseline wall time is inflated past
        MIN_COMPARABLE_WALL_S so timing comparison is actually armed."""
        out = tmp_path_factory.mktemp("bench") / "bench.json"
        assert harness.main(["--experiments", "fig03", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        doc["experiments"]["fig03"]["wall_s"] = max(
            doc["experiments"]["fig03"]["wall_s"], 2 * harness.MIN_COMPARABLE_WALL_S
        )
        out.write_text(json.dumps(doc))
        return out

    def _run(self, harness, baseline, tmp_path, *extra):
        return harness.main(
            ["--experiments", "fig03", "--out", str(tmp_path / "new.json"),
             "--baseline", str(baseline), *extra]
        )

    def test_clean_run_passes(self, harness, baseline, tmp_path):
        assert self._run(harness, baseline, tmp_path) == 0

    def test_synthetic_slowdown_fails(self, harness, baseline, tmp_path):
        """Acceptance: an injected 2x+ slowdown must exit non-zero."""
        code = self._run(
            harness, baseline, tmp_path, "--inject-slowdown", "50.0"
        )
        assert code == 1

    def test_warn_only_downgrades_to_exit_zero(self, harness, baseline,
                                               tmp_path):
        code = self._run(
            harness, baseline, tmp_path, "--inject-slowdown", "50.0",
            "--warn-only",
        )
        assert code == 0

    def test_update_baseline_skips_compare(self, harness, baseline, tmp_path):
        code = self._run(
            harness, baseline, tmp_path, "--inject-slowdown", "50.0",
            "--update-baseline",
        )
        assert code == 0

    def test_sub_noise_baselines_never_compared(self, harness):
        current = {
            "scale": "tiny", "seed": 0,
            "experiments": {"x": {"wall_s": 1.0, "counters": {}}},
        }
        base = {
            "scale": "tiny", "seed": 0,
            "experiments": {"x": {"wall_s": 0.01, "counters": {}}},
        }
        regressions, _ = harness.compare(current, base, threshold=1.5)
        assert regressions == []

    def test_counter_drift_is_note_not_regression(self, harness):
        current = {
            "scale": "tiny", "seed": 0,
            "experiments": {"x": {"wall_s": 1.0, "counters": {"c": 5.0}}},
        }
        base = {
            "scale": "tiny", "seed": 0,
            "experiments": {"x": {"wall_s": 1.0, "counters": {"c": 4.0}}},
        }
        regressions, notes = harness.compare(current, base, threshold=1.5)
        assert regressions == []
        assert any("behavioral drift" in n for n in notes)

    def test_scale_mismatch_skips_compare(self, harness):
        current = {
            "scale": "tiny", "seed": 0,
            "experiments": {"x": {"wall_s": 100.0, "counters": {}}},
        }
        base = {
            "scale": "paper", "seed": 0,
            "experiments": {"x": {"wall_s": 0.1, "counters": {}}},
        }
        regressions, notes = harness.compare(current, base, threshold=1.5)
        assert regressions == []
        assert any("skipping compare" in n for n in notes)


class TestCommittedBaseline:
    def test_baseline_covers_full_registry(self, harness):
        """Acceptance: bench.json holds a record for every experiment."""
        doc = json.loads(harness.DEFAULT_RESULTS.read_text())
        assert doc["schema"] == harness.JSON_SCHEMA
        assert set(doc["experiments"]) == set(
            harness.REGISTRY.available()
        ) | {harness.GUARD_ENTRY, harness.PROFILE_ENTRY, harness.TS_ENTRY,
             harness.SAVE_RUN_ENTRY, harness.KERNEL_ENTRY, harness.FLOW_ENTRY}
        # The profiler probe's entry carries the per-phase breakdown.
        profile = doc["experiments"][harness.PROFILE_ENTRY]["profile"]
        assert profile, "profiler probe recorded no phases"
        for frame in profile.values():
            assert {"n_calls", "total_s", "self_s"} <= set(frame)
        # The sampler probe's entry fingerprints what it recorded.
        recorded = doc["experiments"][harness.TS_ENTRY]["timeseries"]
        assert recorded["n_series"] > 0 and recorded["n_points"] > 0
        # The save-run probe's entry fingerprints the bundle it stored.
        bundle = doc["experiments"][harness.SAVE_RUN_ENTRY]["bundle"]
        assert bundle["n_artifacts"] > 0 and bundle["n_bytes"] > 0
        # The kernel probe's entry fingerprints the journal it wrote.
        journal = doc["experiments"][harness.KERNEL_ENTRY]["journal"]
        assert journal["n_epoch_records"] > 0
        # The flow-analysis probe ran within budget and found nothing.
        flow = doc["experiments"][harness.FLOW_ENTRY]
        assert flow["wall_s"] <= harness.FLOW_BUDGET_WALL_S
        assert flow["counters"]["repro_flow_files_analyzed_total"] > 0
        assert flow["counters"]["repro_flow_findings_total"] == 0.0
