"""Smoke tests: every shipped example runs to completion in-process."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "hyperparameter_tuning",
        "storage_selection",
        "adaptive_training_trace",
        "distributed_sgd_on_storage",
        "bohb_tuning",
        "full_workflow",
        "telemetry_capture",
        "diagnose_run",
        "slo_guard",
        "chaos_run",
        "profile_planner",
        "dashboard_run",
    ],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real walkthrough, not a stub
