"""Tests for the platform configuration and pricing tables."""

import pytest

from repro.common.types import PricingPattern, StorageKind
from repro.config import (
    DEFAULT_PLATFORM,
    LambdaLimits,
    LambdaPricing,
    PlatformConfig,
    default_storage_catalog,
)


class TestLambdaConfig:
    def test_aws_prices(self):
        p = LambdaPricing()
        assert p.usd_per_gb_second == pytest.approx(0.0000166667)
        assert p.usd_per_invocation == pytest.approx(0.20 / 1e6)

    def test_limits_match_paper(self):
        lim = LambdaLimits()
        assert lim.max_memory_mb == 10240  # paper §III-B.3
        assert lim.max_concurrency == 3000  # paper §III-B.3
        assert lim.full_vcpu_memory_mb == 1769

    def test_vcpu_share_linear(self):
        cfg = PlatformConfig()
        assert cfg.vcpu_share(1769) == pytest.approx(1.0)
        assert cfg.vcpu_share(3538) == pytest.approx(2.0)
        # Clamped at the maximum memory.
        assert cfg.vcpu_share(20480) == cfg.vcpu_share(10240)


class TestStorageCatalog:
    def test_all_services_present(self):
        cat = default_storage_catalog()
        assert set(cat) == set(StorageKind)

    def test_latency_ordering(self):
        cat = default_storage_catalog()
        assert (
            cat[StorageKind.VMPS].latency_s
            <= cat[StorageKind.ELASTICACHE].latency_s
            < cat[StorageKind.DYNAMODB].latency_s
            < cat[StorageKind.S3].latency_s
        )

    def test_pricing_patterns(self):
        cat = default_storage_catalog()
        assert cat[StorageKind.S3].pricing is PricingPattern.REQUEST
        assert cat[StorageKind.DYNAMODB].pricing is PricingPattern.REQUEST
        assert cat[StorageKind.ELASTICACHE].pricing is PricingPattern.RUNTIME
        assert cat[StorageKind.VMPS].pricing is PricingPattern.RUNTIME

    def test_dynamodb_object_limit_400kb(self):
        cat = default_storage_catalog()
        assert cat[StorageKind.DYNAMODB].object_limit_mb == pytest.approx(400 / 1024)

    def test_only_dynamodb_size_priced(self):
        cat = default_storage_catalog()
        assert cat[StorageKind.DYNAMODB].usd_per_request_per_mb > 0
        assert cat[StorageKind.S3].usd_per_request_per_mb == 0

    def test_request_price_grows_with_size(self):
        ddb = default_storage_catalog()[StorageKind.DYNAMODB]
        assert ddb.request_price_usd(0.3) > ddb.request_price_usd(0.001)

    def test_elasticity_flags(self):
        cat = default_storage_catalog()
        assert cat[StorageKind.S3].elastic
        assert cat[StorageKind.DYNAMODB].elastic
        assert not cat[StorageKind.ELASTICACHE].elastic
        assert not cat[StorageKind.VMPS].elastic

    def test_default_platform_shared(self):
        assert DEFAULT_PLATFORM.storage_config(StorageKind.S3).kind is StorageKind.S3
