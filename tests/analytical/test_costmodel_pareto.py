"""Tests for the cost model (Eq. 4-5), Pareto extraction, and the profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import (
    Allocation,
    EpochCostBreakdown,
    EpochTimeBreakdown,
    StorageKind,
)
from repro.analytical.costmodel import epoch_cost, function_price_per_second, storage_cost
from repro.analytical.pareto import (
    ProfiledAllocation,
    dominated_fraction,
    is_dominated,
    pareto_front,
)
from repro.analytical.profiler import ParetoProfiler
from repro.analytical.space import AllocationSpace, default_space
from repro.analytical.timemodel import epoch_time
from repro.config import DEFAULT_PLATFORM


def _pt(t: float, c: float) -> ProfiledAllocation:
    return ProfiledAllocation(
        allocation=Allocation(1, 512, StorageKind.S3),
        time=EpochTimeBreakdown(0, t, 0),
        cost=EpochCostBreakdown(0, c, 0),
    )


class TestCostModel:
    def test_function_price_linear_in_memory(self):
        assert function_price_per_second(2048) == pytest.approx(
            2 * function_price_per_second(1024)
        )

    def test_cost_components_positive(self, lr_higgs):
        c = epoch_cost(lr_higgs, Allocation(10, 1769, StorageKind.S3))
        assert c.invocation_usd > 0
        assert c.compute_usd > 0
        assert c.storage_usd > 0

    def test_request_charged_storage_independent_of_duration(self, lr_higgs):
        a = Allocation(10, 1769, StorageKind.S3)
        assert storage_cost(lr_higgs, a, 10.0) == storage_cost(lr_higgs, a, 1000.0)

    def test_runtime_charged_storage_scales_with_duration(self, lr_higgs):
        a = Allocation(10, 1769, StorageKind.VMPS)
        assert storage_cost(lr_higgs, a, 600.0) > storage_cost(lr_higgs, a, 60.0)

    def test_runtime_minimum_one_minute(self, lr_higgs):
        a = Allocation(10, 1769, StorageKind.VMPS)
        cfg = DEFAULT_PLATFORM.storage_config(StorageKind.VMPS)
        assert storage_cost(lr_higgs, a, 0.0) == pytest.approx(cfg.usd_per_minute)

    def test_request_count_follows_eq5(self, lr_higgs):
        """S3 cost = k * (10n + 2) * p_s."""
        a = Allocation(10, 1769, StorageKind.S3)
        k = lr_higgs.iterations_per_epoch(10)
        cfg = DEFAULT_PLATFORM.storage_config(StorageKind.S3)
        expected = k * (10 * 10 + 2) * cfg.request_price_usd(lr_higgs.model_mb)
        assert storage_cost(lr_higgs, a, 100.0) == pytest.approx(expected)

    def test_dynamodb_price_grows_with_model(self, lr_higgs):
        from repro.ml.models import workload

        lr_yfcc = workload("lr-yfcc")  # 32 KB model vs Higgs's 224 B
        cfg = DEFAULT_PLATFORM.storage_config(StorageKind.DYNAMODB)
        assert cfg.request_price_usd(lr_yfcc.model_mb) > cfg.request_price_usd(
            lr_higgs.model_mb
        )

    def test_accepts_measured_breakdown(self, lr_higgs):
        a = Allocation(10, 1769, StorageKind.S3)
        t = epoch_time(lr_higgs, a)
        doubled = t.scaled(2.0)
        assert epoch_cost(lr_higgs, a, doubled).compute_usd == pytest.approx(
            2 * epoch_cost(lr_higgs, a, t).compute_usd
        )


class TestPareto:
    def test_simple_front(self):
        pts = [_pt(1, 10), _pt(2, 5), _pt(3, 1), _pt(3, 9), _pt(4, 2)]
        front = pareto_front(pts)
        assert [(p.time_s, p.cost_usd) for p in front] == [(1, 10), (2, 5), (3, 1)]

    def test_front_sorted_by_time(self):
        pts = [_pt(5, 1), _pt(1, 5), _pt(3, 3)]
        front = pareto_front(pts)
        times = [p.time_s for p in front]
        assert times == sorted(times)

    def test_single_point(self):
        pts = [_pt(1, 1)]
        assert pareto_front(pts) == pts

    def test_empty(self):
        assert pareto_front([]) == []

    def test_is_dominated(self):
        pts = [_pt(1, 1), _pt(2, 2)]
        assert is_dominated(pts[1], pts)
        assert not is_dominated(pts[0], pts)

    def test_dominated_fraction(self):
        pts = [_pt(1, 1), _pt(2, 2), _pt(3, 3), _pt(0.5, 4)]
        assert dominated_fraction(pts) == pytest.approx(0.5)

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.001, 10)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_never_dominated(self, raw):
        pts = [_pt(t, c) for t, c in raw]
        front = pareto_front(pts)
        assert front, "front must be non-empty for non-empty input"
        for p in front:
            assert not is_dominated(p, pts)
        # And everything off the front is dominated by someone, or is an
        # exact (time, cost) duplicate of a front member.
        front_keys = {(q.time_s, q.cost_usd) for q in front}
        for p in pts:
            if all(p is not q for q in front):
                assert is_dominated(p, pts) or (p.time_s, p.cost_usd) in front_keys


class TestSpaceAndProfiler:
    def test_default_space_size(self):
        space = default_space()
        assert len(space) == len(list(space.enumerate()))
        assert len(space) > 100

    def test_restrict_storage(self):
        space = default_space().restrict_storage(StorageKind.S3)
        assert all(a.storage is StorageKind.S3 for a in space.enumerate())

    def test_max_functions_truncation(self):
        space = default_space(max_functions=20)
        assert max(space.function_counts) <= 20

    def test_feasible_filters(self, bert):
        allocs = default_space().feasible(bert)
        assert allocs
        assert all(a.memory_mb >= 4096 for a in allocs)
        assert all(a.storage is not StorageKind.DYNAMODB for a in allocs)

    def test_profiler_front_subset_of_points(self, lr_profile):
        ids = {p.allocation for p in lr_profile.all_points}
        assert all(p.allocation in ids for p in lr_profile.pareto)

    def test_profiler_prunes(self, lr_profile):
        assert 0 < len(lr_profile.pareto) < len(lr_profile.all_points)

    def test_cheapest_and_fastest(self, lr_profile):
        assert lr_profile.cheapest().cost_usd <= min(
            p.cost_usd for p in lr_profile.pareto
        )
        assert lr_profile.fastest().time_s <= min(p.time_s for p in lr_profile.pareto)

    def test_wo_pa_keeps_everything(self, lr_higgs):
        prof = ParetoProfiler(use_pareto=False).profile(lr_higgs)
        assert len(prof.pareto) == len(prof.all_points)

    def test_lookup(self, lr_profile):
        p = lr_profile.pareto[0]
        assert lr_profile.lookup(p.allocation) is p

    def test_lookup_missing(self, lr_profile):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            lr_profile.lookup(Allocation(1234, 512, StorageKind.S3))
