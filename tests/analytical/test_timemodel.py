"""Tests for the execution-time model (paper Eq. 2-3)."""

import pytest

from repro.common.errors import InfeasibleAllocationError
from repro.common.types import Allocation, StorageKind
from repro.analytical.timemodel import (
    check_feasible,
    compute_speedup,
    epoch_time,
    is_feasible,
    sync_time_per_iteration,
)
from repro.ml.models import workload


class TestFeasibility:
    def test_feasible_baseline(self, lr_higgs):
        assert is_feasible(lr_higgs, Allocation(10, 1769, StorageKind.S3))

    def test_memory_floor(self, bert):
        # BERT needs several GB of working set.
        assert not is_feasible(bert, Allocation(10, 1024, StorageKind.S3))
        assert is_feasible(bert, Allocation(10, 8192, StorageKind.S3))

    def test_concurrency_limit(self, lr_higgs):
        assert not is_feasible(lr_higgs, Allocation(5000, 1769, StorageKind.S3))

    def test_dynamodb_object_cap(self, mobilenet, lr_higgs):
        """MobileNet's 12 MB model exceeds DynamoDB's 400 KB items (Table II N/A)."""
        assert not is_feasible(mobilenet, Allocation(10, 1769, StorageKind.DYNAMODB))
        assert is_feasible(lr_higgs, Allocation(10, 1769, StorageKind.DYNAMODB))

    def test_check_feasible_raises_with_reason(self, mobilenet):
        with pytest.raises(InfeasibleAllocationError, match="object limit"):
            check_feasible(mobilenet, Allocation(10, 1769, StorageKind.DYNAMODB))

    def test_epoch_time_rejects_infeasible(self, mobilenet):
        with pytest.raises(InfeasibleAllocationError):
            epoch_time(mobilenet, Allocation(10, 1769, StorageKind.DYNAMODB))


class TestSpeedup:
    def test_linear_below_one_vcpu(self, lr_higgs):
        assert compute_speedup(lr_higgs, 1769) == pytest.approx(1.0)
        assert compute_speedup(lr_higgs, 884) == pytest.approx(884 / 1769, rel=0.01)

    def test_capped_by_model(self, lr_higgs, bert):
        # LR cannot use more than 2 vCPUs worth.
        assert compute_speedup(lr_higgs, 10240) == pytest.approx(2.0)
        # BERT scales further.
        assert compute_speedup(bert, 10240) > 4.0


class TestSyncTime:
    def test_vmps_cheaper_than_s3(self, lr_higgs):
        s3 = sync_time_per_iteration(lr_higgs, Allocation(10, 1769, StorageKind.S3))
        vmps = sync_time_per_iteration(lr_higgs, Allocation(10, 1769, StorageKind.VMPS))
        assert vmps < s3

    def test_transfer_counts_eq3(self, lr_higgs):
        """Sync time must scale as (3n-2) for passive and (2n-2) for VM-PS."""
        from repro.config import DEFAULT_PLATFORM

        for storage, expected in ((StorageKind.S3, lambda n: 3 * n - 2),
                                  (StorageKind.VMPS, lambda n: 2 * n - 2)):
            cfg = DEFAULT_PLATFORM.storage_config(storage)
            per_transfer = lr_higgs.model_mb / cfg.bandwidth_mb_s + cfg.latency_s
            for n in (2, 5, 20):
                t = sync_time_per_iteration(lr_higgs, Allocation(n, 1769, storage))
                assert t == pytest.approx(expected(n) * per_transfer)

    def test_single_function_vmps_no_sync(self, lr_higgs):
        assert sync_time_per_iteration(
            lr_higgs, Allocation(1, 1769, StorageKind.VMPS)
        ) == 0.0


class TestEpochTime:
    def test_breakdown_positive(self, lr_higgs):
        t = epoch_time(lr_higgs, Allocation(10, 1769, StorageKind.S3))
        assert t.load_s > 0 and t.compute_s > 0 and t.sync_s > 0

    def test_load_scales_inverse_n(self, lr_higgs):
        t10 = epoch_time(lr_higgs, Allocation(10, 1769, StorageKind.S3))
        t20 = epoch_time(lr_higgs, Allocation(20, 1769, StorageKind.S3))
        assert t20.load_s == pytest.approx(t10.load_s / 2)

    def test_compute_scales_inverse_n(self, lr_higgs):
        t10 = epoch_time(lr_higgs, Allocation(10, 1769, StorageKind.S3))
        t20 = epoch_time(lr_higgs, Allocation(20, 1769, StorageKind.S3))
        assert t20.compute_s == pytest.approx(t10.compute_s / 2, rel=0.01)

    def test_more_memory_faster_compute(self, mobilenet):
        slow = epoch_time(mobilenet, Allocation(10, 1769, StorageKind.S3))
        fast = epoch_time(mobilenet, Allocation(10, 4096, StorageKind.S3))
        assert fast.compute_s < slow.compute_s

    def test_memory_beyond_cap_no_gain(self, lr_higgs):
        """LR saturates at 2 vCPUs (3538 MB): more memory only costs more."""
        a = epoch_time(lr_higgs, Allocation(10, 4096, StorageKind.S3))
        b = epoch_time(lr_higgs, Allocation(10, 10240, StorageKind.S3))
        assert b.compute_s == pytest.approx(a.compute_s)

    def test_big_model_sync_dominates_s3(self, bert):
        """BERT's 340 MB model over S3 is communication-bound (Fig. 12)."""
        t = epoch_time(bert, Allocation(10, 6144, StorageKind.S3))
        assert t.sync_s > t.compute_s
