"""Tests for the model-calibration loop (self-validation)."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import Allocation, StorageKind
from repro.analytical.calibration import (
    fit_compute_constant,
    fit_storage_constants,
    measure_epochs,
)
from repro.ml.models import workload


class TestMeasureEpochs:
    def test_returns_mean_per_allocation(self, lr_higgs):
        allocs = [Allocation(2, 1769, StorageKind.VMPS)]
        out = measure_epochs(lr_higgs, allocs, seeds=[0], epochs=2)
        assert set(out) == set(allocs)
        assert out[allocs[0]] > 0

    def test_empty_allocations_rejected(self, lr_higgs):
        with pytest.raises(ValidationError):
            measure_epochs(lr_higgs, [], seeds=[0])


class TestComputeCalibration:
    def test_recovers_configured_constant(self, lr_higgs):
        """The closed loop: measure the simulator, fit, match the config."""
        calib = fit_compute_constant(lr_higgs, seeds=[0, 1, 2])
        true = lr_higgs.profile.compute_s_per_mb
        assert calib.compute_s_per_mb == pytest.approx(true, rel=0.10)
        assert calib.residual_rel < 0.15

    def test_works_for_surrogate_models(self, mobilenet):
        calib = fit_compute_constant(mobilenet, seeds=[0, 1])
        assert calib.compute_s_per_mb == pytest.approx(
            mobilenet.profile.compute_s_per_mb, rel=0.10
        )


class TestStorageCalibration:
    def test_recovers_s3_latency(self, lr_higgs):
        """For LR's tiny model over S3 the per-transfer time is
        latency-dominated and well above the noise floor, so the fitted
        latency must match the configured one."""
        from repro.config import DEFAULT_PLATFORM

        calib = fit_storage_constants(lr_higgs, StorageKind.S3, seeds=[0, 1])
        true = DEFAULT_PLATFORM.storage_config(StorageKind.S3).latency_s
        assert calib.latency_s == pytest.approx(true, rel=0.25)
        assert calib.residual_rel < 0.2

    def test_vmps_latency_below_noise_floor(self, lr_higgs):
        """VM-PS's 0.5 ms latency sits below this workload's measurement
        noise: the fit must stay positive and order-of-magnitude sane, and
        report its own uncertainty via the residual."""
        calib = fit_storage_constants(lr_higgs, StorageKind.VMPS, seeds=[0, 1])
        assert 0.0 < calib.latency_s < 0.01
        assert calib.residual_rel > 0.1  # the fit knows it is noisy

    def test_infeasible_service_rejected(self, mobilenet):
        with pytest.raises(Exception):
            fit_storage_constants(mobilenet, StorageKind.DYNAMODB, seeds=[0])
