"""Tests for the sensitivity-analysis sweeps."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import StorageKind
from repro.analytical.sensitivity import KNOBS, full_sweep, sweep_knob
from repro.ml.models import workload


class TestSweeps:
    def test_unknown_knob(self, lr_higgs):
        with pytest.raises(ValidationError):
            sweep_knob(lr_higgs, "moon_phase")

    def test_factor_one_matches_default(self, lr_higgs, lr_profile):
        report = sweep_knob(lr_higgs, "s3_latency", factors=(1.0,))
        p = report.points[0]
        assert p.fastest == lr_profile.fastest().allocation
        assert p.cheapest == lr_profile.cheapest().allocation

    def test_lambda_price_scales_cheapest_cost(self, lr_higgs):
        report = sweep_knob(lr_higgs, "lambda_price", factors=(1.0, 2.0))
        base, doubled = report.points
        # Compute is only part of the cost, so the increase is sub-2x but real.
        assert doubled.cheapest_cost_usd > base.cheapest_cost_usd

    def test_vmps_price_can_flip_decisions(self, mobilenet):
        """Make VM-PS 20x pricier: it should stop being the cheap choice
        somewhere on the boundary (the decision is price-sensitive)."""
        report = sweep_knob(mobilenet, "vmps_price", factors=(1.0, 20.0))
        base, expensive = report.points
        assert expensive.cheapest_cost_usd >= base.cheapest_cost_usd

    def test_s3_latency_affects_speed_only_if_s3_used(self, mobilenet):
        report = sweep_knob(mobilenet, "s3_latency", factors=(0.25, 1.0, 4.0))
        times = [p.fastest_time_s for p in report.points]
        # The fastest point is VM-PS-backed, so it must be latency-stable.
        assert max(times) <= min(times) * 1.01

    def test_full_sweep_covers_all_knobs(self, lr_higgs):
        reports = full_sweep(lr_higgs, factors=(0.5, 1.0))
        assert set(reports) == set(KNOBS)
        for report in reports.values():
            assert len(report.points) == 2

    def test_decision_stable_property(self, lr_higgs):
        report = sweep_knob(lr_higgs, "s3_bandwidth", factors=(1.0, 1.0))
        assert report.decision_stable
