"""Property-based tests on the analytical models' structural invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import Allocation, StorageKind
from repro.analytical.costmodel import epoch_cost
from repro.analytical.timemodel import epoch_time, is_feasible
from repro.ml.models import workload

FEASIBLE_N = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
MEMORY = st.sampled_from([512, 1024, 1769, 2048, 4096, 8192])
STORAGE = st.sampled_from(list(StorageKind))


@st.composite
def lr_allocations(draw):
    return Allocation(draw(FEASIBLE_N), draw(MEMORY), draw(STORAGE))


class TestTimeProperties:
    @given(alloc=lr_allocations())
    @settings(max_examples=60, deadline=None)
    def test_components_non_negative(self, alloc):
        w = workload("lr-higgs")
        if not is_feasible(w, alloc):
            return
        t = epoch_time(w, alloc)
        assert t.load_s >= 0 and t.compute_s >= 0 and t.sync_s >= 0

    @given(n=FEASIBLE_N, m=MEMORY)
    @settings(max_examples=40, deadline=None)
    def test_load_and_compute_shrink_with_n(self, n, m):
        w = workload("lr-higgs")
        a1 = Allocation(n, m, StorageKind.S3)
        a2 = Allocation(n * 2, m, StorageKind.S3)
        if not (is_feasible(w, a1) and is_feasible(w, a2)):
            return
        t1, t2 = epoch_time(w, a1), epoch_time(w, a2)
        assert t2.load_s <= t1.load_s
        assert t2.compute_s <= t1.compute_s * 1.001

    @given(n=FEASIBLE_N)
    @settings(max_examples=20, deadline=None)
    def test_vmps_sync_never_slower_than_s3(self, n):
        w = workload("mobilenet-cifar10")
        s3 = Allocation(n, 2048, StorageKind.S3)
        vm = Allocation(n, 2048, StorageKind.VMPS)
        if not (is_feasible(w, s3) and is_feasible(w, vm)):
            return
        assert epoch_time(w, vm).sync_s <= epoch_time(w, s3).sync_s

    @given(m1=MEMORY, m2=MEMORY, n=FEASIBLE_N)
    @settings(max_examples=40, deadline=None)
    def test_more_memory_never_slower(self, m1, m2, n):
        w = workload("mobilenet-cifar10")
        lo, hi = sorted((m1, m2))
        a_lo = Allocation(n, lo, StorageKind.S3)
        a_hi = Allocation(n, hi, StorageKind.S3)
        if not (is_feasible(w, a_lo) and is_feasible(w, a_hi)):
            return
        assert epoch_time(w, a_hi).compute_s <= epoch_time(w, a_lo).compute_s * 1.001


class TestCostProperties:
    @given(alloc=lr_allocations())
    @settings(max_examples=60, deadline=None)
    def test_components_non_negative(self, alloc):
        w = workload("lr-higgs")
        if not is_feasible(w, alloc):
            return
        c = epoch_cost(w, alloc)
        assert c.invocation_usd >= 0
        assert c.compute_usd >= 0
        assert c.storage_usd >= 0

    @given(n=FEASIBLE_N, m=MEMORY)
    @settings(max_examples=40, deadline=None)
    def test_memory_beyond_cap_strictly_more_expensive(self, n, m):
        """Past the model's speedup cap, extra memory buys only cost."""
        w = workload("lr-higgs")  # cap at 2 vCPUs = 3538 MB
        if m < 4096:
            return
        a = Allocation(n, m, StorageKind.S3)
        bigger = Allocation(n, 8192, StorageKind.S3)
        if m >= 8192 or not (is_feasible(w, a) and is_feasible(w, bigger)):
            return
        assert epoch_cost(w, bigger).compute_usd > epoch_cost(w, a).compute_usd

    @given(n=FEASIBLE_N)
    @settings(max_examples=20, deadline=None)
    def test_request_storage_cost_independent_of_n(self, n):
        """Eq. (5): request count k*(10n+2) with k = D/(n*bz) makes S3's
        storage cost roughly n-independent — parallelism is free on the
        request side."""
        w = workload("lr-higgs")
        a1 = Allocation(n, 1769, StorageKind.S3)
        a2 = Allocation(n * 2, 1769, StorageKind.S3)
        if not (is_feasible(w, a1) and is_feasible(w, a2)):
            return
        c1 = epoch_cost(w, a1).storage_usd
        c2 = epoch_cost(w, a2).storage_usd
        assert c2 == pytest.approx(c1, rel=0.35)
