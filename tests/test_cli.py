"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "lr-higgs"])
        assert args.method == "ce-scaling"
        assert args.budget_multiple == 2.5

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "lr-higgs", "--method", "magic"])


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "lr-higgs" in out and "bert-imdb" in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table2" in out

    def test_profile(self, capsys):
        assert main(["profile", "mobilenet-cifar10"]) == 0
        out = capsys.readouterr().out
        assert "Pareto boundary" in out
        assert "vmps" in out

    def test_profile_pinned(self, capsys):
        assert main(["profile", "lr-higgs", "--storage", "elasticache"]) == 0
        out = capsys.readouterr().out
        assert "elasticache" in out
        assert "vmps" not in out

    def test_train_smoke(self, capsys):
        assert main(["train", "mobilenet-cifar10", "--budget-multiple", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "JCT" in out and "converged=True" in out

    def test_train_qos_mode(self, capsys):
        assert main(
            ["train", "mobilenet-cifar10", "--qos-multiple", "3.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "min cost" in out

    def test_tune_smoke(self, capsys):
        assert main(["tune", "lr-higgs", "--trials", "16"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out

    def test_workflow_smoke(self, capsys):
        assert main(
            ["workflow", "mobilenet-cifar10", "--trials", "16", "--budget", "25"]
        ) == 0
        out = capsys.readouterr().out
        assert "tuning" in out and "training" in out and "total" in out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_workload_raises(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["profile", "alexnet-imagenet"])


class TestTelemetryFlags:
    def test_train_capture_then_report(self, tmp_path, capsys):
        """Acceptance path: train --telemetry/--trace, then repro report."""
        import json

        metrics = tmp_path / "out.json"
        trace = tmp_path / "out.trace.json"
        assert main(
            [
                "train", "lr-higgs", "--budget-multiple", "2.5",
                "--telemetry", str(metrics), "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()

        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro-telemetry/v1"
        assert doc["meta"]["workload"] == "lr-higgs"
        assert doc["run"]["jct_s"] > 0
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_faas_invocations_total" in names

        chrome = json.loads(trace.read_text())
        spans = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
        assert spans and all("ts" in e and "dur" in e for e in spans)

        assert main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "time breakdown" in out
        assert "cost breakdown" in out
        assert "cold starts" in out

    def test_telemetry_off_leaves_no_files(self, tmp_path, capsys):
        assert main(["train", "lr-higgs", "--budget-multiple", "2.5"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_tune_capture(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "tune.json"
        assert main(
            ["tune", "lr-higgs", "--trials", "16", "--telemetry", str(metrics)]
        ) == 0
        doc = json.loads(metrics.read_text())
        assert doc["meta"]["command"] == "tune"
        assert doc["run"]["jct_s"] > 0

    def test_report_prometheus_output(self, tmp_path, capsys):
        metrics = tmp_path / "out.json"
        assert main(
            [
                "train", "lr-higgs", "--budget-multiple", "2.5",
                "--telemetry", str(metrics),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(metrics), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_faas_invocations_total counter" in out
