"""End-to-end resilience: faulted epochs, recovery, and byte-identity."""

import json

import pytest

from repro.common.errors import CheckpointError, FaultError, RetryExhaustedError
from repro.config import PlatformConfig
from repro.faas.noise import NoiseModel
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ANY_STORAGE,
    FaultPlan,
    PermanentLoss,
    RetrySpec,
    StorageFaultSpec,
)
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import run_training


def _spec(n=4, epoch=1, incarnation=0, compute=5.0):
    return EpochExecution(
        group="g", n_functions=n, memory_mb=1769, load_s=1.0,
        compute_s=compute, sync_s=2.0, epoch_index=epoch,
        storage="s3", incarnation=incarnation,
    )


def _platform(plan, seed=0):
    injector = FaultInjector(plan, seed=seed)
    return FaaSPlatform(seed=seed, fault_injector=injector), injector


class TestFaultyEpochs:
    def test_crashes_recovered_by_retry(self):
        clean = FaaSPlatform(seed=0).execute_epoch(_spec())
        platform, injector = _platform(FaultPlan(crash_prob=0.3))
        result = platform.execute_epoch(_spec())
        counts = injector.ledger.counts()
        assert counts.get("crash", 0) >= 1
        assert counts.get("retry", 0) >= 1
        assert "retry-exhausted" not in counts
        assert result.n_faults >= 1
        assert result.fault_overhead_s > 0.0
        # Recovery costs simulated time and bills the failed attempts.
        assert result.wall_time_s > clean.wall_time_s
        assert result.billed_usd > clean.billed_usd

    def test_gang_retry_exhaustion(self):
        platform, injector = _platform(
            FaultPlan(crash_prob=1.0, retry=RetrySpec(max_attempts=2))
        )
        with pytest.raises(RetryExhaustedError) as exc_info:
            platform.execute_epoch(_spec())
        assert exc_info.value.scope == "train"
        counts = injector.ledger.counts()
        assert counts["crash"] == 4 * 2  # every worker burned both attempts
        assert counts["retry-exhausted"] == 4

    def test_timeout_enforced(self):
        plan = FaultPlan(
            invocation_timeout_s=2.0, retry=RetrySpec(max_attempts=2)
        )
        platform, injector = _platform(plan)
        # Planned body (load 1 s + compute 5 s) always exceeds the limit.
        with pytest.raises(RetryExhaustedError):
            platform.execute_epoch(_spec())
        counts = injector.ledger.counts()
        assert counts["timeout"] == 4 * 2
        for rec in injector.ledger.records:
            if rec.kind == "timeout":
                assert rec.lost_s == pytest.approx(2.0)

    def test_generous_timeout_never_fires(self):
        plan = FaultPlan(invocation_timeout_s=10_000.0)
        platform, injector = _platform(plan)
        platform.execute_epoch(_spec())
        assert "timeout" not in injector.ledger.counts()

    def test_storage_exhaustion_fails_gang(self):
        plan = FaultPlan(
            storage={
                ANY_STORAGE: StorageFaultSpec(transient_prob=1.0, max_errors=2)
            },
            retry=RetrySpec(max_attempts=1),
        )
        platform, injector = _platform(plan)
        with pytest.raises(RetryExhaustedError, match="storage"):
            platform.execute_epoch(_spec())
        assert "retry-exhausted" in injector.ledger.counts()

    def test_permanent_loss_surfaces_fault_error(self):
        loss = PermanentLoss(epoch=2, rank=0)
        platform, injector = _platform(FaultPlan(permanent_loss=(loss,)))
        platform.execute_epoch(_spec(epoch=1))  # before the loss: clean
        with pytest.raises(FaultError) as exc_info:
            platform.execute_epoch(_spec(epoch=2))
        assert exc_info.value.losses == (loss,)
        assert injector.ledger.counts()["permanent-loss"] == 1
        # The loss fires once; a replanned gang can run the epoch.
        platform.execute_epoch(_spec(epoch=2, incarnation=1))

    def test_cold_start_failures_burn_extra_windows(self):
        plan = FaultPlan(cold_start_failure_prob=1.0, retry=RetrySpec(max_attempts=2))
        platform, injector = _platform(plan)
        result = platform.execute_epoch(_spec())
        assert injector.ledger.counts()["cold-start-failure"] == 4 * 2
        assert result.n_faults == 4 * 2


class TestColdStartSigmaConfig:
    def test_platform_field_drives_noise_model(self):
        quiet = PlatformConfig(cold_start_noise_sigma=0.0)
        noise = NoiseModel(seed=0, platform=quiet)
        assert noise.cold_start_sigma == 0.0
        assert noise.cold_start_factor() == pytest.approx(1.0)

    def test_injector_cold_windows_follow_sigma(self):
        inj = FaultInjector(FaultPlan(cold_start_failure_prob=1.0))
        assert inj.cold_window_factor(1, 0, 0, 0, 0.0) == 1.0
        assert inj.cold_window_factor(1, 0, 0, 0, 0.25) != 1.0


def _chaos_run(workload, profile, plan, seed=0, budget_multiple=2.5):
    budget = training_envelope(workload, profile).budget(budget_multiple)
    return run_training(
        workload,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=seed,
        profile=profile,
        fault_plan=plan,
    )


class TestResilientTraining:
    def test_default_profile_completes_with_recovery(self, lr_higgs, lr_profile):
        clean = _chaos_run(lr_higgs, lr_profile, None)
        chaos = _chaos_run(lr_higgs, lr_profile, FaultPlan.default_profile())
        c, f = clean.result, chaos.result
        assert f.converged
        # Acceptance bound from the chaos matrix: faults inflate the JCT,
        # but recovery keeps the job under 2x the fault-free run.
        assert c.jct_s < f.jct_s <= 2.0 * c.jct_s
        summary = f.extra["faults"]
        assert summary["n_faults"] > 0 and summary["n_recoveries"] > 0
        # The epoch-5 permanent loss forced a degraded re-selection.
        assert summary["degraded_allocations"] >= 1
        assert f.n_restarts >= 1
        assert chaos.fault_ledger.counts()["permanent-loss"] == 1
        assert "degraded-allocation" in chaos.fault_ledger.counts()

    def test_same_seed_same_plan_identical(self, lr_higgs, lr_profile):
        plan = FaultPlan.default_profile()
        a = _chaos_run(lr_higgs, lr_profile, plan)
        b = _chaos_run(lr_higgs, lr_profile, plan)
        assert a.result.jct_s == b.result.jct_s
        assert a.result.cost_usd == b.result.cost_usd
        assert json.dumps(a.fault_ledger.to_payload(), sort_keys=True) == \
            json.dumps(b.fault_ledger.to_payload(), sort_keys=True)

    def test_seed_changes_fault_sequence(self, lr_higgs, lr_profile):
        plan = FaultPlan.default_profile()
        a = _chaos_run(lr_higgs, lr_profile, plan, seed=0)
        b = _chaos_run(lr_higgs, lr_profile, plan, seed=1)
        assert [r.to_payload() for r in a.fault_ledger.records] != \
            [r.to_payload() for r in b.fault_ledger.records]

    def test_empty_plan_byte_identical_to_no_plan(self, lr_higgs, lr_profile):
        bare = _chaos_run(lr_higgs, lr_profile, None)
        empty = _chaos_run(lr_higgs, lr_profile, FaultPlan())
        assert empty.fault_ledger is None  # no injector was even built
        a, b = bare.result, empty.result
        assert (a.jct_s, a.cost_usd, a.n_restarts, a.converged) == \
            (b.jct_s, b.cost_usd, b.n_restarts, b.converged)
        assert [(e.index, e.loss, e.time.total_s, e.cost.total_usd)
                for e in a.epochs] == \
            [(e.index, e.loss, e.time.total_s, e.cost.total_usd)
             for e in b.epochs]
        assert "faults" not in b.extra

    def test_checkpoint_restore_path(self, lr_higgs, lr_profile):
        """Storage exhaustion fails whole epochs; the executor restores
        the epoch-boundary checkpoint and re-runs only the failed epoch."""
        plan = FaultPlan(
            name="sync-killer",
            storage={
                ANY_STORAGE: StorageFaultSpec(
                    transient_prob=0.3, max_errors=4, error_timeout_s=0.2
                )
            },
            retry=RetrySpec(max_attempts=4, base_backoff_s=0.05),
        )
        run = _chaos_run(lr_higgs, lr_profile, plan)
        summary = run.result.extra["faults"]
        assert summary["checkpoint_restores"] >= 1
        assert summary["restore_overhead_s"] > 0.0
        assert run.result.converged

    def test_restore_budget_exhaustion_raises(self, lr_higgs, lr_profile):
        plan = FaultPlan(
            name="sync-always-dead",
            storage={ANY_STORAGE: StorageFaultSpec(transient_prob=1.0)},
            retry=RetrySpec(max_attempts=1),
        )
        with pytest.raises(CheckpointError):
            _chaos_run(lr_higgs, lr_profile, plan)
