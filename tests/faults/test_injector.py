"""The injector's draws are a pure function of (plan, seed, scope, site)."""

import pytest

from repro.faults.injector import FaultInjector, SyncPenalty
from repro.faults.plan import (
    ANY_STORAGE,
    FaultPlan,
    PermanentLoss,
    RetrySpec,
    StorageFaultSpec,
    ThrottleWindow,
)


def _crashy(prob=0.5, **kw):
    return FaultPlan(crash_prob=prob, **kw)


def _fault_grid(injector, epochs=6, ranks=8, attempts=2, incarnation=0):
    return [
        injector.worker_fault(e, r, a, incarnation)
        for e in range(1, epochs + 1)
        for r in range(ranks)
        for a in range(attempts)
    ]


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultInjector(_crashy(), seed=7)
        b = FaultInjector(_crashy(), seed=7)
        assert _fault_grid(a) == _fault_grid(b)
        assert [a.backoff_s(k, 1, 0, 0) for k in range(1, 4)] == [
            b.backoff_s(k, 1, 0, 0) for k in range(1, 4)
        ]

    def test_seed_changes_draws(self):
        a = FaultInjector(_crashy(), seed=0)
        b = FaultInjector(_crashy(), seed=1)
        assert _fault_grid(a) != _fault_grid(b)

    def test_scope_separates_streams(self):
        a = FaultInjector(_crashy(), seed=0, scope="train")
        b = FaultInjector(_crashy(), seed=0, scope="tune")
        assert _fault_grid(a) != _fault_grid(b)

    def test_incarnation_salt_redraws(self):
        """A re-run epoch must not deterministically replay its killer."""
        inj = FaultInjector(_crashy(), seed=0)
        first = _fault_grid(inj, incarnation=0)
        second = _fault_grid(inj, incarnation=1)
        assert first != second

    def test_draws_are_order_independent(self):
        """Site-keyed streams: querying in a different order can't shift
        any draw (the engine's interleaving is irrelevant)."""
        a = FaultInjector(_crashy(), seed=3)
        b = FaultInjector(_crashy(), seed=3)
        forward = _fault_grid(a)
        backward = list(reversed(
            [b.worker_fault(e, r, at)
             for e in reversed(range(1, 7))
             for r in reversed(range(8))
             for at in reversed(range(2))]
        ))
        assert forward == backward


class TestWorkerFaults:
    def test_no_crash_when_prob_zero(self):
        inj = FaultInjector(FaultPlan(permanent_loss=(PermanentLoss(epoch=9),)))
        assert all(f is None for f in _fault_grid(inj))

    def test_certain_crash_mid_epoch(self):
        inj = FaultInjector(_crashy(prob=1.0, crash_mid_fraction=1.0))
        for fault in _fault_grid(inj, epochs=3, ranks=4):
            assert fault is not None and fault.kind == "crash-mid"
            assert 0.05 <= fault.run_fraction <= 0.95

    def test_certain_crash_at_invoke(self):
        inj = FaultInjector(_crashy(prob=1.0, crash_mid_fraction=0.0))
        for fault in _fault_grid(inj, epochs=3, ranks=4):
            assert fault is not None and fault.kind == "crash-invoke"
            assert fault.run_fraction == 0.0

    def test_cold_start_failures_bounded_by_retry_budget(self):
        plan = FaultPlan(
            cold_start_failure_prob=1.0, retry=RetrySpec(max_attempts=3)
        )
        inj = FaultInjector(plan)
        assert inj.cold_start_failures(1, 0, 0) == 3
        assert FaultInjector(FaultPlan()).cold_start_failures(1, 0, 0) == 0

    def test_backoff_jitter_stays_in_band(self):
        plan = FaultPlan(retry=RetrySpec(base_backoff_s=1.0, jitter=0.25))
        inj = FaultInjector(plan)
        for attempt in range(1, 4):
            nominal = plan.retry.backoff_s(attempt)
            drawn = inj.backoff_s(attempt, 1, 0, 0)
            assert 0.75 * nominal <= drawn <= 1.25 * nominal


class TestSyncPenalty:
    def test_no_spec_no_penalty(self):
        plan = FaultPlan(storage={"s3": StorageFaultSpec(transient_prob=1.0)})
        inj = FaultInjector(plan)
        assert inj.sync_penalty(1, "dynamodb", 0.0, 2.0) == SyncPenalty()
        assert len(inj.ledger) == 0

    def test_transient_episode_recovered(self):
        plan = FaultPlan(
            storage={
                ANY_STORAGE: StorageFaultSpec(
                    transient_prob=1.0, max_errors=1, error_timeout_s=0.5
                )
            },
            retry=RetrySpec(max_attempts=4, base_backoff_s=0.1),
        )
        inj = FaultInjector(plan)
        penalty = inj.sync_penalty(1, "s3", 10.0, 2.0)
        assert penalty.n_transient == 1
        assert not penalty.exhausted
        assert penalty.extra_s >= 0.5  # timeout plus a positive backoff
        kinds = inj.ledger.counts()
        assert kinds["storage-transient"] == 1
        assert kinds["retry"] == 1

    def test_transient_episode_exhausts_retry_budget(self):
        plan = FaultPlan(
            storage={ANY_STORAGE: StorageFaultSpec(transient_prob=1.0)},
            retry=RetrySpec(max_attempts=1),
        )
        inj = FaultInjector(plan)
        penalty = inj.sync_penalty(1, "s3", 0.0, 2.0)
        assert penalty.exhausted
        assert "retry-exhausted" in inj.ledger.counts()

    def test_throttle_window_stretches_overlap(self):
        window = ThrottleWindow(start_s=0.0, duration_s=100.0, slowdown=3.0)
        plan = FaultPlan(
            storage={ANY_STORAGE: StorageFaultSpec(throttle_windows=(window,))}
        )
        inj = FaultInjector(plan)
        penalty = inj.sync_penalty(1, "s3", 10.0, 4.0)
        assert penalty.throttled_s == pytest.approx(8.0)  # 4 s at 3x
        assert penalty.extra_s == pytest.approx(8.0)
        assert inj.ledger.counts() == {"storage-throttle": 1}
        outside = inj.sync_penalty(2, "s3", 500.0, 4.0)
        assert outside.throttled_s == 0.0

    def test_stage_penalty_uses_same_model(self):
        plan = FaultPlan(
            storage={
                ANY_STORAGE: StorageFaultSpec(
                    throttle_windows=(
                        ThrottleWindow(start_s=0.0, duration_s=50.0, slowdown=2.0),
                    )
                )
            }
        )
        a = FaultInjector(plan, seed=0)
        b = FaultInjector(plan, seed=0)
        assert a.stage_penalty(3, "s3", 0.0, 10.0) == b.sync_penalty(
            3, "s3", 0.0, 10.0
        )


class TestPermanentLoss:
    def test_losses_fire_once_at_their_epoch(self):
        loss = PermanentLoss(epoch=3, rank=1)
        inj = FaultInjector(FaultPlan(permanent_loss=(loss,)))
        assert inj.pending_losses(2, n_functions=8) == []
        assert inj.pending_losses(3, n_functions=8) == [loss]
        assert inj.pending_losses(5, n_functions=8) == [loss]  # still due
        inj.mark_loss_handled(loss)
        assert inj.pending_losses(5, n_functions=8) == []

    def test_loss_outside_gang_ignored(self):
        inj = FaultInjector(
            FaultPlan(permanent_loss=(PermanentLoss(epoch=1, rank=10),))
        )
        assert inj.pending_losses(4, n_functions=8) == []
        assert inj.pending_losses(4, n_functions=11) != []


class TestLedgerRecording:
    def test_record_splits_faults_from_recoveries(self):
        inj = FaultInjector(_crashy())
        inj.record("crash", 1.0, epoch=1, rank=0, attempt=0, lost_s=2.0)
        inj.record("retry", 1.5, epoch=1, rank=0, attempt=1, lost_s=0.5)
        summary = inj.ledger.summary()
        assert summary["n_faults"] == 1
        assert summary["n_recoveries"] == 1
        assert summary["fault_time_s"] == pytest.approx(2.0)
        assert summary["recovery_time_s"] == pytest.approx(0.5)


class TestIncarnationSalting:
    """Every retry-path draw is salted by incarnation: a job restored more
    than once at the same epoch boundary must see *distinct* fault
    streams, or the second restore deterministically replays the first
    restore's failures (the bug this class pins)."""

    def test_cold_window_factor_salted(self):
        inj = FaultInjector(FaultPlan(cold_start_failure_prob=1.0), seed=0)
        site = (3, 1, 0, 0, 0.25)  # epoch, rank, attempt, k, sigma
        assert inj.cold_window_factor(*site, incarnation=0) != (
            inj.cold_window_factor(*site, incarnation=1)
        )
        # Default incarnation is the first incarnation, and draws are
        # stateless: the same site always yields the same factor.
        assert inj.cold_window_factor(*site) == (
            inj.cold_window_factor(*site, incarnation=0)
        )

    def test_retry_compute_factor_salted(self):
        inj = FaultInjector(_crashy(), seed=0)
        site = (3, 1, 1, 0.2)  # epoch, rank, attempt, sigma
        assert inj.retry_compute_factor(*site, incarnation=0) != (
            inj.retry_compute_factor(*site, incarnation=1)
        )
        assert inj.retry_compute_factor(*site) == (
            inj.retry_compute_factor(*site, incarnation=0)
        )

    def test_sync_backoff_salted(self):
        plan = FaultPlan(
            storage={
                ANY_STORAGE: StorageFaultSpec(
                    transient_prob=1.0, error_timeout_s=1.0, max_errors=2
                )
            },
            retry=RetrySpec(max_attempts=4, jitter=0.5),
        )
        inj = FaultInjector(plan, seed=0)
        first = inj.sync_penalty(2, "s3", 0.0, 10.0, incarnation=0)
        second = inj.sync_penalty(2, "s3", 0.0, 10.0, incarnation=1)
        replay = inj.sync_penalty(2, "s3", 0.0, 10.0, incarnation=0)
        assert first == replay  # stateless: same site, same penalty
        assert first != second  # salted: a restored sync draws fresh

    def test_draw_sequence_pinned_across_incarnations(self):
        """Regression pin: the full retry-path draw sequence for one site
        grid is a pure function of (seed, site, incarnation) — repeated
        sweeps reproduce it exactly, and no incarnation aliases another."""
        inj = FaultInjector(_crashy(cold_start_failure_prob=1.0), seed=7)

        def sweep(incarnation):
            return [
                (
                    inj.cold_window_factor(e, r, 0, k, 0.25, incarnation),
                    inj.retry_compute_factor(e, r, 1, 0.2, incarnation),
                )
                for e in range(1, 4)
                for r in range(4)
                for k in range(2)
            ]

        sequences = {}
        for incarnation in range(3):
            seq = sweep(incarnation)
            assert seq == sweep(incarnation)
            sequences[incarnation] = tuple(seq)
        assert len(set(sequences.values())) == 3
