"""Checkpoint/restore accounting and graceful degradation selection."""

import pytest

from repro.common.errors import (
    CheckpointError,
    ConstraintError,
    FaultError,
    ReproError,
    RetryExhaustedError,
)
from repro.common.types import StorageKind
from repro.config import DEFAULT_PLATFORM
from repro.faults.resilience import (
    CheckpointStore,
    restore_overhead_s,
    select_degraded_allocation,
)
from repro.training.adaptive_scheduler import select_best_allocation
from repro.tuning.plan import Objective


class TestErrorHierarchy:
    def test_fault_errors_are_repro_errors(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(RetryExhaustedError, FaultError)
        assert issubclass(CheckpointError, FaultError)

    def test_fault_error_carries_context(self):
        exc = RetryExhaustedError("gang failed", scope="train", t_s=12.5)
        assert exc.scope == "train"
        assert exc.t_s == 12.5


class TestCheckpointStore:
    def test_save_and_restore_accounting(self):
        store = CheckpointStore()
        store.save(1)
        store.save(2)
        assert store.last_epoch == 2
        assert store.restore(3, 1.25) == 1.25
        assert store.n_restores == 1
        assert store.restore_overhead_total_s == pytest.approx(1.25)
        assert store.restored_epochs == (3,)

    def test_restore_budget_exhaustion(self):
        store = CheckpointStore(max_restores=2)
        store.restore(1, 0.5)
        store.restore(1, 0.5)
        with pytest.raises(CheckpointError) as exc_info:
            store.restore(2, 0.5, scope="train", t_s=40.0)
        assert exc_info.value.scope == "train"
        assert store.n_restores == 2  # the refused restore is not counted

    def test_restore_overhead_is_one_model_transfer(self):
        cfg = DEFAULT_PLATFORM.storage_config(StorageKind.S3)
        expected = cfg.latency_s + 100.0 / cfg.bandwidth_mb_s
        assert restore_overhead_s(100.0, StorageKind.S3) == pytest.approx(expected)


class TestDegradedSelection:
    def test_reselects_surviving_point(self, lr_profile):
        candidates = list(lr_profile.pareto)
        budget = 10.0 * max(p.cost_usd for p in candidates)
        best = select_best_allocation(
            candidates, Objective.MIN_JCT_GIVEN_BUDGET, 10.0, budget_usd=budget
        )
        degraded = select_degraded_allocation(
            candidates, {best.allocation}, Objective.MIN_JCT_GIVEN_BUDGET,
            10.0, budget_usd=budget,
        )
        assert degraded.allocation != best.allocation
        assert degraded.allocation in {p.allocation for p in candidates}

    def test_all_lost_raises_constraint_error(self, lr_profile):
        candidates = list(lr_profile.pareto)
        everything = {p.allocation for p in candidates}
        with pytest.raises(ConstraintError):
            select_degraded_allocation(
                candidates, everything, Objective.MIN_JCT_GIVEN_BUDGET,
                10.0, budget_usd=100.0,
            )
