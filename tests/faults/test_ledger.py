"""Ledger aggregates and the versioned repro-faults-report/v1 document."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.faults.ledger import FaultLedger, FaultRecord


def _sample() -> FaultLedger:
    led = FaultLedger(plan_name="chaos")
    led.record("crash", 1.0, scope="train", epoch=1, rank=2, attempt=0,
               lost_s=3.0, detail="crash-mid")
    led.record("retry", 1.1, scope="train", epoch=1, rank=2, attempt=1,
               lost_s=0.2)
    led.record("storage-throttle", 5.0, scope="train", epoch=2, lost_s=4.0)
    led.record("checkpoint-restore", 9.0, scope="train", epoch=3, lost_s=1.5)
    return led


class TestAggregates:
    def test_counts_and_split(self):
        led = _sample()
        assert len(led) == 4
        assert led.counts() == {
            "checkpoint-restore": 1, "crash": 1, "retry": 1,
            "storage-throttle": 1,
        }
        assert led.fault_time_s == pytest.approx(7.0)
        assert led.recovery_time_s == pytest.approx(1.7)
        summary = led.summary()
        assert summary["plan"] == "chaos"
        assert summary["n_faults"] == 2
        assert summary["n_recoveries"] == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FaultRecord(kind="gremlin", t_s=0.0)

    def test_merged_combines_in_order(self):
        a = FaultLedger(plan_name="chaos")
        a.record("crash", 1.0)
        b = FaultLedger()
        b.record("retry", 2.0)
        merged = FaultLedger.merged(a, None, b)
        assert merged.plan_name == "chaos"
        assert [r.kind for r in merged.records] == ["crash", "retry"]


class TestReportDocument:
    def test_round_trip(self):
        led = _sample()
        payload = json.loads(led.to_json({"schema": "x"}, meta={"seed": 0}))
        assert payload["schema"] == "repro-faults-report/v1"
        assert payload["meta"] == {"seed": 0}
        again = FaultLedger.from_payload(payload)
        assert again.plan_name == "chaos"
        assert again.records == led.records

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValidationError):
            FaultLedger.from_payload({"schema": "bench/v1"})

    def test_render_lists_every_record(self):
        text = _sample().render()
        for kind in ("crash", "retry", "storage-throttle", "checkpoint-restore"):
            assert kind in text
        assert "2 fault(s)" in text and "2 recovery action(s)" in text
