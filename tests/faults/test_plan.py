"""Fault-plan schema: validation, round-trips, and the empty identity."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.faults.plan import (
    ANY_STORAGE,
    FAULTS_SCHEMA,
    FaultPlan,
    PermanentLoss,
    RetrySpec,
    StorageFaultSpec,
    ThrottleWindow,
)


class TestValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValidationError):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(crash_mid_fraction=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(cold_start_failure_prob=2.0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValidationError):
            FaultPlan(invocation_timeout_s=0.0)
        assert FaultPlan(invocation_timeout_s=None).invocation_timeout_s is None

    def test_unknown_storage_backend_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(storage={"floppy": StorageFaultSpec()})

    def test_retry_spec_bounds(self):
        with pytest.raises(ValidationError):
            RetrySpec(max_attempts=0)
        with pytest.raises(ValidationError):
            RetrySpec(base_backoff_s=-1.0)
        with pytest.raises(ValidationError):
            RetrySpec(backoff_factor=0.5)

    def test_throttle_window_bounds(self):
        with pytest.raises(ValidationError):
            ThrottleWindow(start_s=-1.0, duration_s=10.0)
        with pytest.raises(ValidationError):
            ThrottleWindow(start_s=0.0, duration_s=0.0)
        with pytest.raises(ValidationError):
            ThrottleWindow(start_s=0.0, duration_s=10.0, slowdown=0.9)

    def test_permanent_loss_bounds(self):
        with pytest.raises(ValidationError):
            PermanentLoss(epoch=0)
        with pytest.raises(ValidationError):
            PermanentLoss(epoch=1, rank=-1)


class TestEmptyIdentity:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty

    def test_each_knob_breaks_emptiness(self):
        assert not FaultPlan(crash_prob=0.1).is_empty
        assert not FaultPlan(invocation_timeout_s=60.0).is_empty
        assert not FaultPlan(cold_start_failure_prob=0.1).is_empty
        assert not FaultPlan(
            storage={ANY_STORAGE: StorageFaultSpec(transient_prob=0.1)}
        ).is_empty
        assert not FaultPlan(permanent_loss=(PermanentLoss(epoch=1),)).is_empty

    def test_empty_storage_spec_keeps_plan_empty(self):
        assert FaultPlan(storage={"s3": StorageFaultSpec()}).is_empty

    def test_default_profile_is_not_empty(self):
        assert not FaultPlan.default_profile().is_empty


class TestStorageLookup:
    def test_exact_key_wins_over_wildcard(self):
        exact = StorageFaultSpec(transient_prob=0.3)
        wild = StorageFaultSpec(transient_prob=0.1)
        plan = FaultPlan(storage={"s3": exact, ANY_STORAGE: wild})
        assert plan.storage_spec("s3") is exact
        assert plan.storage_spec("dynamodb") is wild

    def test_no_wildcard_means_none(self):
        plan = FaultPlan(storage={"s3": StorageFaultSpec(transient_prob=0.3)})
        assert plan.storage_spec("dynamodb") is None

    def test_without_permanent_loss(self):
        plan = FaultPlan.default_profile()
        stripped = plan.without_permanent_loss()
        assert stripped.permanent_loss == ()
        assert stripped.crash_prob == plan.crash_prob


class TestBackoffMath:
    def test_backoff_grows_geometrically(self):
        retry = RetrySpec(base_backoff_s=0.5, backoff_factor=2.0)
        assert retry.backoff_s(0) == 0.0
        assert retry.backoff_s(1) == 0.5
        assert retry.backoff_s(3) == pytest.approx(2.0)

    def test_throttle_overlap(self):
        w = ThrottleWindow(start_s=60.0, duration_s=120.0, slowdown=2.0)
        assert w.overlap_s(0.0, 10.0) == 0.0
        assert w.overlap_s(200.0, 10.0) == 0.0
        assert w.overlap_s(100.0, 10.0) == 10.0
        assert w.overlap_s(50.0, 20.0) == pytest.approx(10.0)
        assert w.overlap_s(170.0, 40.0) == pytest.approx(10.0)


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan.default_profile()
        again = FaultPlan.from_payload(plan.to_payload())
        assert again == plan

    def test_json_round_trip(self):
        plan = FaultPlan.default_profile()
        payload = json.loads(plan.to_json())
        assert payload["schema"] == FAULTS_SCHEMA
        assert FaultPlan.from_payload(payload) == plan

    def test_load(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan.default_profile()
        path.write_text(plan.to_json())
        assert FaultPlan.load(path) == plan

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            FaultPlan.load(path)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_payload({"schema": "repro-faults/v99"})
        with pytest.raises(ValidationError):
            FaultPlan.from_payload([1, 2, 3])
