"""The repro faults subcommand and the --faults flag on the runners."""

import json

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan


@pytest.fixture()
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(FaultPlan.default_profile().to_json())
    return path


class TestFaultsSubcommand:
    def test_template_to_stdout(self, capsys):
        assert main(["faults", "template"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-faults/v1"
        assert FaultPlan.from_payload(payload) == FaultPlan.default_profile()

    def test_template_to_file(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "template", "--out", str(out)]) == 0
        assert FaultPlan.load(out) == FaultPlan.default_profile()

    def test_validate(self, plan_file, capsys):
        assert main(["faults", "validate", str(plan_file)]) == 0
        out = capsys.readouterr().out
        assert "valid repro-faults/v1 plan" in out and "active" in out

    def test_validate_empty_plan(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(FaultPlan().to_json())
        assert main(["faults", "validate", str(path)]) == 0
        assert "injects nothing" in capsys.readouterr().out

    def test_validate_missing_path_is_usage_error(self, capsys):
        assert main(["faults", "validate"]) == 2
        assert "needs a PATH" in capsys.readouterr().err

    def test_validate_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope/v1"}')
        assert main(["faults", "validate", str(path)]) == 2
        assert "repro faults:" in capsys.readouterr().err


class TestFaultedRuns:
    def test_train_with_faults_and_report(self, plan_file, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main([
            "train", "lr-higgs", "--budget-multiple", "2.5", "--seed", "0",
            "--faults", str(plan_file), "--fault-report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "faults :" in out and "injected" in out
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro-faults-report/v1"
        assert payload["summary"]["n_faults"] > 0
        assert payload["meta"]["command"] == "train"
        assert payload["plan"]["name"] == "default-chaos"

        # summarize renders the saved report back as a table…
        assert main(["faults", "summarize", str(report)]) == 0
        table = capsys.readouterr().out
        assert "fault ledger" in table and "recovery action(s)" in table
        # …and round-trips as JSON.
        assert main(["faults", "summarize", str(report), "--format", "json"]) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["summary"] == payload["summary"]

    def test_train_without_faults_prints_no_fault_line(self, capsys):
        assert main([
            "train", "lr-higgs", "--budget-multiple", "2.5", "--seed", "0",
        ]) == 0
        assert "faults :" not in capsys.readouterr().out

    def test_train_rejects_bad_plan(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main([
            "train", "lr-higgs", "--faults", str(path),
        ]) == 2
        assert "repro train:" in capsys.readouterr().err

    def test_diagnose_attributes_faults_live(self, plan_file, capsys):
        assert main([
            "diagnose", "lr-higgs", "--seed", "0",
            "--faults", str(plan_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "lost to faults" in out

    def test_diagnose_reads_saved_report(self, plan_file, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main([
            "train", "lr-higgs", "--budget-multiple", "2.5", "--seed", "0",
            "--faults", str(plan_file), "--fault-report", str(report),
        ]) == 0
        capsys.readouterr()
        assert main([
            "diagnose", "lr-higgs", "--seed", "0",
            "--fault-report", str(report),
        ]) == 0
        assert "lost to faults" in capsys.readouterr().out
