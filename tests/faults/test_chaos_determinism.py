"""Property-style chaos determinism: random plans, byte-identical runs.

Fifty seeded random :class:`FaultPlan`s are each executed twice on the
unified kernel; every pair must produce byte-identical fault ledgers,
event logs (dispatch counts and clock values), and run ids. A second
class kills a journaled CLI run at a seeded-random epoch boundary and
checks ``repro resume`` finishes it to a bundle byte-identical to the
uninterrupted run.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.common.errors import FaultError, ReproError, RetryExhaustedError
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ANY_STORAGE,
    FaultPlan,
    PermanentLoss,
    RetrySpec,
    StorageFaultSpec,
    ThrottleWindow,
)
from repro.runs import ProvenanceStamp, RunBundle
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import run_training

N_PLANS = 50
N_EPOCHS = 8


def _random_plan(seed: int) -> FaultPlan:
    """A seeded random plan covering every fault axis the schema offers."""
    rng = np.random.default_rng(seed)
    storage = {}
    if rng.random() < 0.5:
        windows = ()
        if rng.random() < 0.5:
            windows = (
                ThrottleWindow(
                    start_s=float(rng.uniform(0.0, 60.0)),
                    duration_s=float(rng.uniform(5.0, 60.0)),
                    slowdown=float(rng.uniform(1.5, 4.0)),
                ),
            )
        storage[ANY_STORAGE] = StorageFaultSpec(
            transient_prob=float(rng.uniform(0.0, 0.4)),
            max_errors=int(rng.integers(1, 3)),
            error_timeout_s=float(rng.uniform(0.1, 1.5)),
            throttle_windows=windows,
        )
    losses = ()
    if rng.random() < 0.3:
        losses = (PermanentLoss(epoch=int(rng.integers(2, N_EPOCHS)), rank=0),)
    return FaultPlan(
        name=f"chaos-{seed}",
        crash_prob=float(rng.uniform(0.0, 0.35)),
        crash_mid_fraction=float(rng.random()),
        invocation_timeout_s=(
            float(rng.uniform(8.0, 40.0)) if rng.random() < 0.4 else None
        ),
        cold_start_failure_prob=float(rng.uniform(0.0, 0.3)),
        storage=storage,
        permanent_loss=losses,
        retry=RetrySpec(
            max_attempts=int(rng.integers(3, 6)),
            jitter=float(rng.uniform(0.0, 0.5)),
        ),
    )


def _spec(epoch: int, incarnation: int = 0) -> EpochExecution:
    return EpochExecution(
        group="chaos", n_functions=4, memory_mb=1769, load_s=1.0,
        compute_s=5.0, sync_s=2.0, epoch_index=epoch, storage="s3",
        incarnation=incarnation,
    )


def _execute(plan: FaultPlan, seed: int):
    """(ledger JSON bytes, event log, run id) for one kernel execution."""
    injector = FaultInjector(plan, seed=seed)
    platform = FaaSPlatform(seed=seed, fault_injector=injector)
    events = []
    for epoch in range(1, N_EPOCHS + 1):
        incarnation = 0
        while True:
            try:
                result = platform.execute_epoch(_spec(epoch, incarnation))
            except RetryExhaustedError:
                # The executor's restore path: bump the incarnation and
                # re-run this epoch (bounded — salted draws mean chance,
                # not certainty, on every re-run).
                events.append(
                    ("retry-exhausted", platform.sim.now,
                     platform.sim.events_processed)
                )
                incarnation += 1
                if incarnation > 3:
                    break
                continue
            except FaultError:
                events.append(
                    ("permanent-loss", platform.sim.now,
                     platform.sim.events_processed)
                )
                break
            events.append(
                ("epoch", platform.sim.now, platform.sim.events_processed,
                 platform.noise_draws, result.wall_time_s, result.billed_usd,
                 result.n_faults, result.fault_overhead_s)
            )
            break
    stamp = ProvenanceStamp.collect(
        "chaos-determinism", workload="synthetic", seed=seed
    )
    ledger_json = injector.ledger.to_json(plan.to_payload(), meta=stamp)
    bundle = RunBundle(stamp, {"faults": ledger_json})
    return ledger_json, events, bundle.run_id


class TestFiftyRandomPlansTwice:
    @pytest.mark.parametrize("seed", range(N_PLANS))
    def test_pair_is_byte_identical(self, seed):
        plan = _random_plan(seed)
        first = _execute(plan, seed)
        second = _execute(plan, seed)
        ledger_a, events_a, run_a = first
        ledger_b, events_b, run_b = second
        assert ledger_a.encode() == ledger_b.encode()
        assert events_a == events_b  # == on floats: bitwise, not approx
        assert run_a == run_b

    def test_plans_actually_differ(self):
        payloads = {json.dumps(_random_plan(s).to_payload(), sort_keys=True)
                    for s in range(N_PLANS)}
        assert len(payloads) == N_PLANS

    def test_plans_inject_something(self):
        ledgers = [
            _execute(_random_plan(seed), seed)[0] for seed in range(0, 10)
        ]
        assert any(json.loads(text)["summary"]["n_faults"] > 0
                   for text in ledgers)


class TestTrainingPairsUnderRandomPlans:
    # Seed 11's plan is fatal (restore budget exhausted); 23 and 47
    # complete. Both outcomes must reproduce byte-for-byte.
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_full_training_run_is_reproducible(self, seed, lr_higgs, lr_profile):
        plan = _random_plan(seed)
        budget = training_envelope(lr_higgs, lr_profile).budget(2.5)

        def go():
            try:
                run = run_training(
                    lr_higgs, objective=Objective.MIN_JCT_GIVEN_BUDGET,
                    budget_usd=budget, seed=seed, profile=lr_profile,
                    fault_plan=plan, max_epochs=10,
                )
            except ReproError as exc:
                # A fatal plan is fine as long as it dies identically:
                # same error, same message, same simulated timestamp.
                return ("fatal", type(exc).__name__, str(exc))
            return (
                "ok", run.result.jct_s, run.result.cost_usd,
                len(run.result.epochs),
                run.fault_ledger.to_json(plan.to_payload()),
            )

        a, b = go(), go()
        assert a == b  # == on floats: bitwise, not approx

    def test_at_least_one_seed_completes(self, lr_higgs, lr_profile):
        # Guard against every sampled plan being fatal, which would turn
        # the pair test above into a vacuous crash-comparison.
        budget = training_envelope(lr_higgs, lr_profile).budget(2.5)
        for seed in (23, 47):
            run = run_training(
                lr_higgs, objective=Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=budget, seed=seed, profile=lr_profile,
                fault_plan=_random_plan(seed), max_epochs=10,
            )
            assert run.result.epochs


class TestKillAtRandomEpoch:
    def test_resume_matches_uninterrupted_bundle(self, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        store = tmp_path / "store"
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan.default_profile().to_json())
        assert main([
            "train", "lr-higgs", "--seed", "5",
            "--journal", str(journal), "--save-run", str(store),
            "--faults", str(plan_path),
        ]) == 0
        capsys.readouterr()
        finished = journal.read_bytes()
        manifests = sorted((store / "manifests").glob("*.json"))
        assert len(manifests) == 1

        lines = finished.decode().splitlines()
        n_epochs = sum(1 for s in lines if '"kind": "epoch"' in s)
        rng = np.random.default_rng(5)
        for kill_epoch in sorted(
            int(e) for e in rng.integers(1, n_epochs, size=3)
        ):
            # SIGKILL mid-epoch: keep `kill_epoch` fsynced records plus a
            # torn half-line, then resume against the same store.
            kept = lines[: 1 + kill_epoch]
            torn = lines[1 + kill_epoch][: 30 + kill_epoch]
            journal.write_bytes(("\n".join(kept) + "\n" + torn).encode())
            assert main(["resume", str(journal)]) == 0
            capsys.readouterr()
            assert journal.read_bytes() == finished
            assert sorted((store / "manifests").glob("*.json")) == manifests
