"""Tests for storage fault injection and retry handling."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.types import StorageKind
from repro.storage.catalog import make_service
from repro.storage.faults import (
    FaultInjector,
    FaultyStorageService,
    RetryPolicy,
    StorageRequestError,
)
from repro.storage.sync import BSPSynchronizer


def _faulty(kind=StorageKind.S3, failure_prob=0.0, seed=0, **kw):
    return FaultyStorageService(
        inner=make_service(kind),
        injector=FaultInjector(failure_prob=failure_prob, seed=seed),
        **kw,
    )


class TestRetryPolicy:
    def test_backoff_grows(self):
        p = RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0)
        assert p.backoff_s(1) == pytest.approx(0.1)
        assert p.backoff_s(2) == pytest.approx(0.2)
        assert p.backoff_s(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)


class TestFaultInjector:
    def test_zero_probability_never_fails(self):
        inj = FaultInjector(failure_prob=0.0)
        assert not any(inj.should_fail() for _ in range(200))

    def test_deterministic(self):
        a = FaultInjector(failure_prob=0.3, seed=5)
        b = FaultInjector(failure_prob=0.3, seed=5)
        assert [a.should_fail() for _ in range(50)] == [
            b.should_fail() for _ in range(50)
        ]

    def test_failure_rate_approximate(self):
        inj = FaultInjector(failure_prob=0.2, seed=1)
        rate = np.mean([inj.should_fail() for _ in range(2000)])
        assert 0.12 < rate < 0.28

    def test_burst_mode_correlates(self):
        inj = FaultInjector(failure_prob=0.05, burst_prob=1.0, burst_length=4,
                            seed=2)
        outcomes = [inj.should_fail() for _ in range(500)]
        # Every initial failure drags 3 more along.
        assert inj.injected_faults % 1 == 0
        assert sum(outcomes) >= 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultInjector(failure_prob=1.0)


class TestFaultyService:
    def test_no_faults_passthrough(self):
        svc = _faulty(failure_prob=0.0)
        t = svc.put("k", np.ones(8))
        assert t > 0
        value, _ = svc.get("k")
        np.testing.assert_array_equal(value, np.ones(8))
        assert svc.retried_requests == 0

    def test_transient_fault_retried_with_penalty(self):
        svc = _faulty(failure_prob=0.4, seed=3, timeout_s=0.5)
        clean = _faulty(failure_prob=0.0)
        total_faulty = sum(svc.put(f"k{i}", np.ones(4)) for i in range(50))
        total_clean = sum(clean.put(f"k{i}", np.ones(4)) for i in range(50))
        assert svc.retried_requests > 0
        assert total_faulty > total_clean  # timeouts + backoff cost time

    def test_persistent_fault_raises(self):
        svc = FaultyStorageService(
            inner=make_service(StorageKind.S3),
            injector=FaultInjector(failure_prob=0.95, burst_prob=1.0,
                                   burst_length=10, seed=0),
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(StorageRequestError):
            for i in range(30):
                svc.put(f"k{i}", np.ones(2))

    def test_failed_attempts_still_billed(self):
        svc = _faulty(failure_prob=0.3, seed=1, retry=RetryPolicy(max_attempts=8))
        for i in range(30):
            svc.put(f"k{i}", np.ones(2))
        # Billable requests exceed logical operations.
        assert svc.metrics.requests > 30

    def test_sync_survives_transient_faults(self):
        """BSP aggregation through a flaky service stays numerically exact."""
        svc = _faulty(StorageKind.S3, failure_prob=0.25, seed=7)
        sync = BSPSynchronizer(svc, 4)
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(16) for _ in range(4)]
        merged, report = sync.run_round(grads)
        np.testing.assert_allclose(merged, np.mean(grads, axis=0), rtol=1e-12)
        assert report.wall_time_s > 0

    def test_wrapper_exposes_inner_surface(self):
        svc = _faulty(StorageKind.VMPS)
        assert svc.kind is StorageKind.VMPS
        assert svc.supports_server_aggregation
        svc.accrue_provisioned(60.0)
        assert svc.cost_usd() > 0
        assert svc.transfer_time_s(1.0) > 0
