"""Tests for the in-memory K/V data plane."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageCapacityError, ValidationError
from repro.storage.kvplane import KVPlane


class TestBasicOps:
    def test_put_get_roundtrip(self):
        plane = KVPlane()
        data = np.arange(10.0)
        plane.put("k", data)
        np.testing.assert_array_equal(plane.get("k"), data)

    def test_get_returns_copy(self):
        plane = KVPlane()
        plane.put("k", np.zeros(3))
        out = plane.get("k")
        out[0] = 99
        assert plane.get("k")[0] == 0

    def test_put_stores_copy(self):
        plane = KVPlane()
        data = np.zeros(3)
        plane.put("k", data)
        data[0] = 99
        assert plane.get("k")[0] == 0

    def test_missing_key_raises(self):
        with pytest.raises(ValidationError):
            KVPlane().get("missing")

    def test_empty_key_rejected(self):
        with pytest.raises(ValidationError):
            KVPlane().put("", np.zeros(1))

    def test_delete_idempotent(self):
        plane = KVPlane()
        plane.put("k", np.zeros(1))
        plane.delete("k")
        plane.delete("k")
        assert not plane.exists("k")
        assert plane.delete_count == 1

    def test_keys_sorted(self):
        plane = KVPlane()
        for k in ("b", "a", "c"):
            plane.put(k, np.zeros(1))
        assert plane.keys() == ["a", "b", "c"]

    def test_clear_preserves_counters(self):
        plane = KVPlane()
        plane.put("k", np.zeros(1))
        plane.clear()
        assert plane.put_count == 1
        assert plane.keys() == []


class TestLimitsAndMetering:
    def test_object_limit_enforced(self):
        plane = KVPlane(object_limit_mb=400 / 1024)  # DynamoDB's 400 KB
        small = np.zeros(10_000)  # ~78 KB
        plane.put("ok", small)
        big = np.zeros(100_000)  # ~781 KB
        with pytest.raises(StorageCapacityError):
            plane.put("too-big", big)

    def test_byte_metering(self):
        plane = KVPlane()
        data = np.zeros(1000)
        plane.put("k", data)
        plane.get("k")
        plane.get("k")
        assert plane.bytes_in == data.nbytes
        assert plane.bytes_out == 2 * data.nbytes

    def test_request_count(self):
        plane = KVPlane()
        plane.put("k", np.zeros(1))
        plane.get("k")
        plane.delete("k")
        assert plane.request_count == 3

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_put_count_matches_puts(self, sizes):
        plane = KVPlane()
        for i, n in enumerate(sizes):
            plane.put(f"k{i}", np.zeros(n))
        assert plane.put_count == len(sizes)
        assert plane.bytes_in == sum(8 * n for n in sizes)
