"""Tests for the simulated storage services and BSP synchronization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import PricingPattern, StorageKind
from repro.config import DEFAULT_PLATFORM
from repro.storage.catalog import StorageCatalog, make_service, table1_rows
from repro.storage.sync import BSPSynchronizer


class TestServices:
    def test_factory_builds_every_kind(self):
        for kind in StorageKind:
            svc = make_service(kind)
            assert svc.kind is kind

    def test_vmps_supports_aggregation(self):
        assert make_service(StorageKind.VMPS).supports_server_aggregation

    def test_passive_services_cannot_aggregate(self):
        for kind in (StorageKind.S3, StorageKind.DYNAMODB, StorageKind.ELASTICACHE):
            svc = make_service(kind)
            assert not svc.supports_server_aggregation
            with pytest.raises(NotImplementedError):
                svc.server_aggregate(["a"], "out")

    def test_transfer_time_has_latency_floor(self):
        svc = make_service(StorageKind.S3)
        assert svc.transfer_time_s(0.0) == pytest.approx(svc.config.latency_s)

    def test_transfer_time_scales_with_size(self):
        svc = make_service(StorageKind.S3)
        assert svc.transfer_time_s(100.0) > svc.transfer_time_s(1.0)

    def test_request_pricing_accrues(self):
        svc = make_service(StorageKind.S3)
        svc.put("k", np.zeros(100))
        svc.get("k")
        assert svc.cost_usd() == pytest.approx(
            2 * svc.config.usd_per_request, rel=1e-6
        )

    def test_runtime_pricing_accrues_per_minute(self):
        svc = make_service(StorageKind.VMPS)
        svc.put("k", np.zeros(100))
        assert svc.cost_usd() == 0.0  # no provisioned time yet
        svc.accrue_provisioned(120.0)
        assert svc.cost_usd() == pytest.approx(3 * svc.config.usd_per_minute)

    def test_dynamodb_object_limit(self):
        svc = make_service(StorageKind.DYNAMODB)
        with pytest.raises(Exception):
            svc.put("big", np.zeros(200_000))  # ~1.5 MB > 400 KB

    def test_vmps_server_aggregate_mean(self):
        svc = make_service(StorageKind.VMPS)
        svc.plane.put("a", np.array([1.0, 2.0]))
        svc.plane.put("b", np.array([3.0, 4.0]))
        svc.server_aggregate(["a", "b"], "mean")
        np.testing.assert_allclose(svc.plane.get("mean"), [2.0, 3.0])

    def test_catalog_caches_instances(self):
        cat = StorageCatalog()
        assert cat.get(StorageKind.S3) is cat.get(StorageKind.S3)
        cat.reset()


class TestTable1:
    def test_rows_cover_all_services(self):
        rows = table1_rows()
        assert {r["service"] for r in rows} == {k.value for k in StorageKind}

    def test_qualitative_match_with_paper(self):
        rows = {r["service"]: r for r in table1_rows()}
        assert rows["s3"]["latency"] == "High"
        assert rows["dynamodb"]["latency"] == "Medium"
        assert rows["elasticache"]["latency"] == "Low"
        assert rows["vmps"]["latency"] == "Low"
        assert rows["s3"]["elastic_scaling"] == "Auto"
        assert rows["vmps"]["elastic_scaling"] == "Manual"
        assert rows["s3"]["pricing_pattern"] == "Data request"
        assert rows["elasticache"]["pricing_pattern"] == "Execution time"


class TestBSPSync:
    @pytest.mark.parametrize("kind", list(StorageKind))
    @pytest.mark.parametrize("n", [1, 2, 3, 8])
    def test_aggregation_is_exact_mean(self, kind, n):
        svc = make_service(kind)
        sync = BSPSynchronizer(svc, n)
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(64) for _ in range(n)]
        merged, report = sync.run_round(grads)
        np.testing.assert_allclose(merged, np.mean(grads, axis=0), rtol=1e-12)
        assert report.wall_time_s >= 0

    @pytest.mark.parametrize("n", [2, 4, 10])
    def test_passive_transfer_count_eq3(self, n):
        """S3's per-round transfers must follow Eq. (3): 3n - 2."""
        svc = make_service(StorageKind.S3)
        sync = BSPSynchronizer(svc, n)
        _, report = sync.run_round([np.zeros(8) for _ in range(n)])
        assert report.transfers == 3 * n - 2
        assert svc.metrics.requests == 3 * n - 2

    @pytest.mark.parametrize("n", [2, 4, 10])
    def test_vmps_transfer_count_eq3(self, n):
        """VM-PS per-round transfers must follow Eq. (3): 2n - 2."""
        svc = make_service(StorageKind.VMPS)
        sync = BSPSynchronizer(svc, n)
        _, report = sync.run_round([np.zeros(8) for _ in range(n)])
        assert report.transfers == 2 * n - 2

    def test_single_worker_passive(self):
        svc = make_service(StorageKind.S3)
        sync = BSPSynchronizer(svc, 1)
        merged, report = sync.run_round([np.ones(4)])
        np.testing.assert_allclose(merged, np.ones(4))
        assert report.transfers == 1  # the merged-model publish

    def test_gradient_keys_cleaned_up(self):
        svc = make_service(StorageKind.S3)
        sync = BSPSynchronizer(svc, 4)
        sync.run_round([np.zeros(4)] * 4)
        assert all("grad" not in k for k in svc.plane.keys())

    def test_round_index_advances(self):
        svc = make_service(StorageKind.VMPS)
        sync = BSPSynchronizer(svc, 2)
        _, r0 = sync.run_round([np.zeros(2)] * 2)
        _, r1 = sync.run_round([np.zeros(2)] * 2)
        assert r0.merged_key != r1.merged_key

    def test_wrong_gradient_count_rejected(self):
        svc = make_service(StorageKind.S3)
        sync = BSPSynchronizer(svc, 3)
        with pytest.raises(Exception):
            sync.run_round([np.zeros(2)] * 2)

    @given(n=st.integers(2, 6), dim=st.integers(1, 32))
    @settings(max_examples=20, deadline=None)
    def test_mean_property_random_shapes(self, n, dim):
        svc = make_service(StorageKind.ELASTICACHE)
        sync = BSPSynchronizer(svc, n)
        rng = np.random.default_rng(n * 100 + dim)
        grads = [rng.standard_normal(dim) for _ in range(n)]
        merged, _ = sync.run_round(grads)
        np.testing.assert_allclose(merged, np.mean(grads, axis=0), rtol=1e-10)

    def test_sgd_integration_through_storage(self):
        """End to end: distributed SGD synchronizing real bytes through the
        simulated VM-PS matches in-memory averaging numerically."""
        from repro.ml.models import workload
        from repro.ml.sgd import DistributedSGD, SGDConfig

        svc = make_service(StorageKind.VMPS)
        sync = BSPSynchronizer(svc, 3)
        w = workload("lr-higgs")
        cfg = SGDConfig(batch_size=96, learning_rate=0.2, rows_per_worker=120)

        reference = DistributedSGD(w, 3, cfg, seed=9)
        reference.run_epoch(iterations=5)

        routed = DistributedSGD(
            w, 3, cfg, seed=9,
            sync_hook=lambda n, mb: sync.run_round([np.zeros(4)] * n),
        )
        routed.run_epoch(iterations=5)
        np.testing.assert_allclose(reference.weights, routed.weights)
        assert svc.metrics.requests > 0
