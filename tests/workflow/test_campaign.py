"""Tests for the end-to-end tune-then-train workflow."""

import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.sha import SHASpec
from repro.workflow.campaign import effective_workload, run_workflow
from repro.workflow.job import tuning_envelope
from repro.workflow.runner import profile_workload


@pytest.fixture(scope="module")
def budget(mobilenet_profile):
    spec = SHASpec(16, 2, 1)
    env = tuning_envelope(mobilenet_profile, spec)
    # Enough for tuning plus a real training phase.
    return env.budget(1.5) + 15.0


class TestEffectiveWorkload:
    def test_good_config_shrinks_horizon(self, mobilenet):
        from repro.tuning.sha import SHAEngine

        eng = SHAEngine(SHASpec(16, 2, 1), mobilenet, seed=0)
        winner = eng.run_to_completion()
        w2 = effective_workload(mobilenet, winner)
        assert w2.learning_rate == winner.learning_rate
        assert w2.nominal_epochs >= mobilenet.nominal_epochs

    def test_perfect_config_keeps_nominal(self, mobilenet):
        from repro.tuning.sha import SHAEngine

        eng = SHAEngine(SHASpec(16, 2, 1), mobilenet, seed=0)
        winner = eng.run_to_completion()
        object.__setattr__(winner, "quality", 1.0)
        w2 = effective_workload(mobilenet, winner)
        assert w2.nominal_epochs == pytest.approx(mobilenet.nominal_epochs)


class TestRunWorkflow:
    def test_end_to_end(self, mobilenet, budget):
        result = run_workflow(
            mobilenet, SHASpec(16, 2, 1), budget_usd=budget, seed=0
        )
        assert result.tuning.winner is not None
        assert result.training.converged
        assert result.total_jct_s == pytest.approx(
            result.tuning.jct_s + result.training.jct_s
        )
        assert result.total_cost_usd == pytest.approx(
            result.tuning.cost_usd + result.training.cost_usd
        )

    def test_workload_by_name(self, budget):
        result = run_workflow(
            "mobilenet-cifar10", SHASpec(16, 2, 1), budget_usd=budget, seed=1
        )
        assert result.winner is not None

    def test_deterministic(self, mobilenet, budget):
        a = run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=budget, seed=2)
        b = run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=budget, seed=2)
        assert a.total_jct_s == b.total_jct_s
        assert a.winner.index == b.winner.index

    def test_tuning_fraction_validated(self, mobilenet, budget):
        with pytest.raises(ValidationError):
            run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=budget,
                         tuning_fraction=0.0)
        with pytest.raises(ValidationError):
            run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=-1.0)

    def test_tuning_fraction_tradeoff(self, mobilenet, budget):
        """More tuning budget means more spent tuning (trivially), and the
        training phase still converges on the remainder."""
        lean = run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=budget,
                            tuning_fraction=0.2, seed=3)
        rich = run_workflow(mobilenet, SHASpec(16, 2, 1), budget_usd=budget,
                            tuning_fraction=0.7, seed=3)
        assert rich.tuning.cost_usd > lean.tuning.cost_usd
        assert lean.training.converged and rich.training.converged
