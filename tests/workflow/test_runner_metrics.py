"""Tests for the workflow runners, job envelopes and reporting helpers."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import StorageKind
from repro.ml.models import workload
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec
from repro.workflow.job import TABLE_IV, training_envelope, tuning_envelope
from repro.workflow.metrics import ComparisonTable, improvement_pct, normalize
from repro.workflow.runner import (
    TRAINING_METHODS,
    TUNING_METHODS,
    profile_workload,
    run_training,
    run_tuning,
)


class TestJobEnvelopes:
    def test_table_iv_contents(self):
        assert TABLE_IV["lr-higgs"]["batch_size"] == 10_000
        assert TABLE_IV["bert-imdb"]["target_loss"] == 0.6
        assert len(TABLE_IV) == 7

    def test_training_envelope_ordering(self, lr_higgs, lr_profile):
        env = training_envelope(lr_higgs, lr_profile)
        assert env.min_cost_usd < env.max_cost_usd
        assert env.min_jct_s < env.max_jct_s
        assert env.budget(2.0) == pytest.approx(2 * env.min_cost_usd)
        assert env.qos(2.0) == pytest.approx(2 * env.min_jct_s)

    def test_tuning_envelope(self, lr_profile):
        spec = SHASpec(64, 2, 2)
        env = tuning_envelope(lr_profile, spec)
        assert env.min_cost_usd > 0
        assert env.min_jct_s > 0


class TestMetrics:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, base="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_base(self):
        with pytest.raises(ValidationError):
            normalize({"a": 1.0}, base="z")

    def test_normalize_zero_base(self):
        with pytest.raises(ValidationError):
            normalize({"a": 0.0}, base="a")

    def test_improvement_pct(self):
        assert improvement_pct(100.0, 40.0) == pytest.approx(60.0)

    def test_table_rendering(self):
        t = ComparisonTable(columns=["name", "value"], title="T")
        t.add_row("x", 1.5)
        text = t.render()
        assert "name" in text and "x" in text and "1.5" in text

    def test_table_row_arity_checked(self):
        t = ComparisonTable(columns=["a", "b"])
        with pytest.raises(ValidationError):
            t.add_row(1)

    def test_table_as_dicts(self):
        t = ComparisonTable(columns=["a", "b"])
        t.add_row(1, 2)
        assert t.as_dicts() == [{"a": 1, "b": 2}]


class TestRunners:
    def test_unknown_training_method(self, mobilenet):
        with pytest.raises(ValidationError):
            run_training(mobilenet, method="magic", budget_usd=1.0)

    def test_unknown_tuning_method(self, mobilenet):
        with pytest.raises(ValidationError):
            run_tuning(mobilenet, SHASpec(8, 2, 1), method="magic", budget_usd=1.0)

    def test_workload_by_name(self, mobilenet_profile):
        run = run_training(
            "mobilenet-cifar10", budget_usd=10.0, seed=0, max_epochs=3,
            profile=mobilenet_profile,
        )
        assert run.method == "ce-scaling"
        assert len(run.result.epochs) >= 1

    def test_storage_pin_respected(self):
        run = run_training(
            "mobilenet-cifar10", budget_usd=10.0, seed=0, max_epochs=3,
            storage_pin=StorageKind.ELASTICACHE,
        )
        assert all(
            e.allocation.storage is StorageKind.ELASTICACHE
            for e in run.result.epochs
        )

    @pytest.mark.parametrize("method", TRAINING_METHODS)
    def test_every_training_method_runs(self, method, mobilenet, mobilenet_profile):
        from repro.workflow.job import training_envelope

        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run = run_training(
            mobilenet, method=method, budget_usd=budget, seed=0, max_epochs=10,
            profile=mobilenet_profile,
        )
        assert len(run.result.epochs) >= 1
        assert run.result.cost_usd > 0

    @pytest.mark.parametrize("method", TUNING_METHODS)
    def test_every_tuning_method_runs(self, method, mobilenet, mobilenet_profile):
        spec = SHASpec(16, 2, 1)
        env = tuning_envelope(mobilenet_profile, spec)
        run = run_tuning(
            mobilenet, spec, method=method, budget_usd=env.budget(1.5),
            seed=0, profile=mobilenet_profile,
        )
        assert run.result.winner is not None
        assert run.result.jct_s > 0

    def test_training_deterministic_across_calls(self, mobilenet, mobilenet_profile):
        kw = dict(budget_usd=10.0, seed=4, max_epochs=5, profile=mobilenet_profile)
        a = run_training(mobilenet, **kw).result
        b = run_training(mobilenet, **kw).result
        assert a.jct_s == b.jct_s

    def test_siren_pinned_even_when_s3_dominated(self, lr_higgs):
        """lr-higgs's global front can contain no S3 point; the Siren
        baseline must still get a usable (pinned) candidate set."""
        run = run_training(
            lr_higgs, method="siren", budget_usd=5.0, seed=0, max_epochs=3,
        )
        assert all(
            e.allocation.storage is StorageKind.S3 for e in run.result.epochs
        )
