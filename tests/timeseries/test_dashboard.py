"""Sparklines and the terminal dashboard: deterministic, spike-preserving."""

from repro.timeseries import (
    TimeSeriesSampler,
    capture_payload,
    render_dashboard,
)
from repro.timeseries.dashboard import SPARK_CHARS, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_lowest_level(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_ramp_spans_the_character_range(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        assert s[0] == SPARK_CHARS[0]
        assert s[-1] == SPARK_CHARS[-1]
        assert len(s) == 8

    def test_bucketing_preserves_spikes(self):
        """Down-sampling takes each bucket's max, so a lone spike survives."""
        values = [1.0] * 100
        values[37] = 50.0
        s = sparkline(values, width=10)
        assert len(s) == 10
        assert SPARK_CHARS[-1] in s

    def test_width_respected(self):
        assert len(sparkline([float(i) for i in range(500)], width=25)) == 25


class TestDashboard:
    def _payload(self) -> dict:
        s = TimeSeriesSampler()
        for t in range(8):
            s.sample("platform.inflight", float(t), float(100 + t))
        s.mark("reallocation", 3.0, label="300fn/2048MB")
        return capture_payload(s, meta={"workload": "lr-higgs", "seed": 0})

    def test_render_is_byte_stable(self):
        assert render_dashboard(self._payload()) == render_dashboard(
            self._payload()
        )

    def test_render_contents(self):
        text = render_dashboard(self._payload())
        assert text.endswith("\n")
        assert "platform.inflight" in text
        assert "workload=lr-higgs" in text
        assert "reallocation" in text
        assert "peak=107" in text

    def test_markerless_capture(self):
        s = TimeSeriesSampler()
        s.sample("a", 0.0, 1.0)
        assert "markers: none" in render_dashboard(capture_payload(s))
