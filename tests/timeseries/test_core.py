"""SeriesBuffer compression, sampler bookkeeping, null-object default."""

from repro.timeseries import (
    NullSampler,
    SeriesBuffer,
    TimeSeriesSampler,
    get_sampler,
    sampling_enabled,
    set_sampler,
)


class TestSeriesBuffer:
    def test_appends_points_in_order(self):
        buf = SeriesBuffer("x")
        buf.append(1.0, 10.0)
        buf.append(2.0, 11.0)
        assert buf.times == [1.0, 2.0]
        assert buf.values == [10.0, 11.0]
        assert buf.n_samples == 2

    def test_run_length_compression_keeps_edges(self):
        """A run of equal values stores only its first and last point."""
        buf = SeriesBuffer("x")
        for t in range(10):
            buf.append(float(t), 5.0)
        assert buf.values == [5.0, 5.0]
        # The run's last point tracks how long the value held.
        assert buf.times == [0.0, 9.0]
        assert buf.n_samples == 10
        assert buf.dropped == 0

    def test_compression_preserves_step_edges(self):
        buf = SeriesBuffer("x")
        for t, v in enumerate([1.0, 1.0, 1.0, 2.0, 2.0, 2.0]):
            buf.append(float(t), v)
        assert buf.values == [1.0, 1.0, 2.0, 2.0]
        assert buf.times == [0.0, 2.0, 3.0, 5.0]

    def test_point_cap_counts_drops(self):
        buf = SeriesBuffer("x", max_points=3)
        for t in range(6):
            buf.append(float(t), float(t))  # strictly increasing: no runs
        assert len(buf) == 3
        assert buf.dropped == 3
        assert buf.n_samples == 6

    def test_high_water_survives_compression_and_drops(self):
        buf = SeriesBuffer("x", max_points=2)
        buf.append(0.0, 1.0)
        buf.append(1.0, 2.0)
        buf.append(2.0, 99.0)  # dropped by the cap, still the peak
        assert buf.dropped == 1
        assert buf.high_water == 99.0

    def test_last_of_empty_series(self):
        assert SeriesBuffer("x").last == float("-inf")


class TestTimeSeriesSampler:
    def test_sample_creates_series_lazily(self):
        s = TimeSeriesSampler()
        s.sample("a", 1.0, 2)
        assert set(s.series) == {"a"}
        assert s.series["a"].values == [2.0]  # coerced to float

    def test_high_water_defaults_to_zero(self):
        s = TimeSeriesSampler()
        assert s.high_water("missing") == 0.0
        s.sample("a", 0.0, -3.0)
        assert s.high_water("a") == -3.0

    def test_marker_cap(self):
        s = TimeSeriesSampler(max_markers=2)
        for i in range(4):
            s.mark("k", float(i))
        assert len(s.markers) == 2
        assert s.dropped_markers == 2

    def test_n_points_sums_stored_points(self):
        s = TimeSeriesSampler()
        s.sample("a", 0.0, 1.0)
        s.sample("b", 0.0, 1.0)
        s.sample("b", 1.0, 2.0)
        assert s.n_points() == 3

    def test_enabled_flags(self):
        assert TimeSeriesSampler().enabled
        assert not NullSampler().enabled


class TestGlobalSampler:
    def test_default_is_null_and_inert(self):
        sampler = get_sampler()
        assert isinstance(sampler, NullSampler)
        assert not sampling_enabled()
        sampler.sample("a", 0.0, 1.0)
        sampler.mark("k", 0.0)
        assert sampler.series == {}
        assert sampler.markers == []

    def test_set_and_restore(self):
        mine = TimeSeriesSampler()
        prev = get_sampler()
        set_sampler(mine)
        try:
            assert get_sampler() is mine
            assert sampling_enabled()
        finally:
            set_sampler(prev)
        assert not sampling_enabled()

    def test_set_none_reinstalls_null(self):
        set_sampler(TimeSeriesSampler())
        set_sampler(None)
        assert isinstance(get_sampler(), NullSampler)
