"""Cross-run diffing: per-series classification and the drift verdict."""

import pytest

from repro.analysis.rules.schema import SCHEMA_KEYS
from repro.common.errors import ValidationError
from repro.timeseries import (
    TimeSeriesSampler,
    capture_payload,
    diff_captures,
    diff_to_json,
    has_drift,
    render_diff,
)
from repro.timeseries.diff import _TOP_KEYS, DIFF_SCHEMA


def _capture(points: dict[str, list[tuple[float, float]]]) -> dict:
    s = TimeSeriesSampler()
    for name, series in points.items():
        for t, v in series:
            s.sample(name, t, v)
    return capture_payload(s)


RAMP = [(float(t), float(t)) for t in range(6)]


class TestClassification:
    def test_identical(self):
        report = diff_captures(_capture({"a": RAMP}), _capture({"a": RAMP}))
        assert report["series"][0]["class"] == "identical"
        assert not has_drift(report)

    def test_added_and_missing(self):
        report = diff_captures(
            _capture({"a": RAMP}), _capture({"b": RAMP})
        )
        by_name = {row["name"]: row["class"] for row in report["series"]}
        assert by_name == {"a": "missing", "b": "added"}
        assert report["summary"]["drifted"] == ["a", "b"]
        assert has_drift(report)

    def test_level_shift(self):
        base = _capture({"a": [(t, 10.0 + t) for t in range(6)]})
        # Mean rises well past 5%, peak pinned to the base's high water.
        target = _capture(
            {"a": [(t, 14.0 + t / 5.0) for t in range(5)] + [(5.0, 15.0)]}
        )
        report = diff_captures(base, target)
        assert report["series"][0]["class"] == "level_shift"
        assert has_drift(report)

    def test_peak_shift(self):
        base = _capture({"a": [(0.0, 10.0), (1.0, 10.2), (2.0, 10.0)]})
        target = _capture({"a": [(0.0, 10.0), (1.0, 13.0), (2.0, 7.2)]})
        report = diff_captures(base, target)
        assert report["series"][0]["class"] == "peak_shift"

    def test_divergent(self):
        base = _capture({"a": RAMP})
        target = _capture({"a": [(t, 10.0 * t) for t in range(6)]})
        report = diff_captures(base, target)
        assert report["series"][0]["class"] == "divergent"

    def test_resampled(self):
        base = _capture({"a": [(0.0, 1.0), (1.0, 2.0), (2.0, 1.0)]})
        target = _capture(
            {"a": [(0.0, 1.0), (0.5, 1.5), (1.0, 2.0), (2.0, 1.0)]}
        )
        report = diff_captures(base, target)
        assert report["series"][0]["class"] == "resampled"
        assert not has_drift(report)

    def test_jitter(self):
        base = _capture({"a": [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]})
        target = _capture({"a": [(0.0, 1.0), (1.0, 2.01), (2.0, 1.5)]})
        report = diff_captures(base, target)
        assert report["series"][0]["class"] == "jitter"
        assert not has_drift(report)

    def test_threshold_is_tunable(self):
        base = _capture({"a": [(0.0, 10.0), (1.0, 10.0)]})
        target = _capture({"a": [(0.0, 11.0), (1.0, 11.0)]})
        strict = diff_captures(base, target, threshold=0.05)
        loose = diff_captures(base, target, threshold=0.5)
        assert strict["series"][0]["class"] == "divergent"
        assert loose["series"][0]["class"] == "jitter"


class TestReport:
    def test_schema_registry_agrees(self):
        assert SCHEMA_KEYS[DIFF_SCHEMA] == _TOP_KEYS
        report = diff_captures(_capture({"a": RAMP}), _capture({"a": RAMP}))
        assert report["schema"] == DIFF_SCHEMA
        assert set(report) == _TOP_KEYS

    def test_rejects_invalid_capture(self):
        with pytest.raises(ValidationError):
            diff_captures({"schema": "nope"}, _capture({"a": RAMP}))

    def test_json_and_render_deterministic(self):
        base, target = _capture({"a": RAMP, "b": RAMP}), _capture({"a": RAMP})
        a = diff_captures(base, target, meta={"base": "x", "target": "y"})
        b = diff_captures(base, target, meta={"base": "x", "target": "y"})
        assert diff_to_json(a) == diff_to_json(b)
        assert render_diff(a) == render_diff(b)
        assert "missing" in render_diff(a)
        assert "drift detected: b" in render_diff(a)

    def test_summary_counts(self):
        report = diff_captures(
            _capture({"a": RAMP, "b": RAMP}),
            _capture({"a": RAMP, "c": RAMP}),
        )
        assert report["summary"]["classes"] == {
            "added": 1, "identical": 1, "missing": 1,
        }
        assert report["summary"]["n_series"] == 3
