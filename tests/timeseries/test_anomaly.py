"""EWMA/MAD anomaly rules over capture documents."""

from repro.timeseries import TimeSeriesSampler, capture_payload, detect_anomalies
from repro.timeseries.anomaly import (
    COLLAPSE_MIN_PEAK,
    KNEE_MIN_POINTS,
    SPIKE_MIN_SAMPLES,
)


def _capture(points: dict[str, list[tuple[float, float]]]) -> dict:
    s = TimeSeriesSampler()
    for name, series in points.items():
        for t, v in series:
            s.sample(name, t, v)
    return capture_payload(s)


class TestStorageSaturation:
    def _sync(self, values: list[float]) -> dict:
        return _capture(
            {"train.sync_s": [(float(t), v) for t, v in enumerate(values)]}
        )

    def test_spike_detected(self):
        # Mild noise, then one 8x excursion: a throttle-window signature.
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 8.0, 1.1, 1.0, 0.9]
        found = detect_anomalies(self._sync(values))
        assert [a.rule for a in found] == ["storage_saturation"]
        a = found[0]
        assert a.series == "train.sync_s"
        assert a.severity == "warning"
        assert a.t_s == 6.0
        assert a.data["z"] >= 5.0
        assert "throttled" in a.message

    def test_flat_then_spike_survives_compression(self):
        """Run-length compression must not starve the detector.

        A perfectly flat prefix stores as two points; the raw-sample gate
        (not the stored-point count) decides whether the baseline is
        trustworthy.
        """
        values = [1.0] * 10 + [9.0] + [1.0] * 3
        found = detect_anomalies(self._sync(values))
        assert [a.rule for a in found] == ["storage_saturation"]

    def test_quiet_series_is_clean(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 1.1, 1.0, 0.9]
        assert detect_anomalies(self._sync(values)) == []

    def test_short_series_gated(self):
        values = [1.0, 1.1, 8.0, 1.0]
        assert len(values) < SPIKE_MIN_SAMPLES
        assert detect_anomalies(self._sync(values)) == []

    def test_only_sync_series_scanned(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 8.0, 1.1, 1.0, 0.9]
        payload = _capture(
            {"other.series": [(float(t), v) for t, v in enumerate(values)]}
        )
        assert detect_anomalies(payload) == []


class TestWarmPoolCollapse:
    def test_collapse_detected(self):
        pool = [(0.0, 2.0), (1.0, 50.0), (2.0, 30.0), (3.0, 5.0)]
        found = detect_anomalies(_capture({"platform.warm_pool": pool}))
        assert [a.rule for a in found] == ["warm_pool_collapse"]
        assert found[0].severity == "warning"
        assert found[0].data == {"last": 5.0, "peak": 50.0}

    def test_healthy_pool_is_clean(self):
        pool = [(0.0, 2.0), (1.0, 50.0), (2.0, 45.0)]
        assert detect_anomalies(_capture({"platform.warm_pool": pool})) == []

    def test_tiny_pool_gated(self):
        pool = [(0.0, float(COLLAPSE_MIN_PEAK - 1)), (1.0, 0.0)]
        assert detect_anomalies(_capture({"platform.warm_pool": pool})) == []


class TestConcurrencyPlateau:
    def test_plateau_detected(self):
        payload = _capture(
            {
                "platform.concurrency_limit": [(0.0, 100.0), (10.0, 100.0)],
                "platform.inflight": [
                    (0.0, 40.0), (2.0, 100.0), (8.0, 100.0), (10.0, 40.0),
                ],
            }
        )
        found = detect_anomalies(payload)
        assert [a.rule for a in found] == ["concurrency_plateau"]
        assert found[0].severity == "info"
        assert found[0].data["plateau_s"] == 6.0

    def test_brief_touch_is_clean(self):
        payload = _capture(
            {
                "platform.concurrency_limit": [(0.0, 100.0), (10.0, 100.0)],
                "platform.inflight": [
                    (0.0, 40.0), (5.0, 100.0), (5.5, 100.0), (10.0, 40.0),
                ],
            }
        )
        assert detect_anomalies(payload) == []

    def test_needs_both_series(self):
        payload = _capture(
            {"platform.inflight": [(0.0, 100.0), (10.0, 100.0)]}
        )
        assert detect_anomalies(payload) == []


class TestBudgetBurnKnee:
    def test_knee_detected(self):
        # ~0.1 USD/s early, 1.0 USD/s in the last quarter.
        cost = [(float(t), 0.1 * t) for t in range(6)] + [
            (6.0, 1.5), (7.0, 2.5),
        ]
        found = detect_anomalies(_capture({"train.cost_usd": cost}))
        assert [a.rule for a in found] == ["budget_burn_knee"]
        assert found[0].severity == "info"
        assert (
            found[0].data["late_usd_per_s"]
            >= 3.0 * found[0].data["early_usd_per_s"]
        )

    def test_linear_burn_is_clean(self):
        cost = [(float(t), 0.5 * t) for t in range(10)]
        assert detect_anomalies(_capture({"train.cost_usd": cost})) == []

    def test_short_series_gated(self):
        cost = [(float(t), float(t) ** 3) for t in range(KNEE_MIN_POINTS - 1)]
        assert detect_anomalies(_capture({"train.cost_usd": cost})) == []


class TestOrdering:
    def test_findings_sorted_by_rule_series_time(self):
        spike = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 8.0, 1.1, 1.0, 0.9]
        payload = _capture(
            {
                "train.sync_s": [(float(t), v) for t, v in enumerate(spike)],
                "platform.warm_pool": [
                    (0.0, 2.0), (1.0, 50.0), (2.0, 30.0), (3.0, 5.0),
                ],
            }
        )
        found = detect_anomalies(payload)
        assert [a.rule for a in found] == [
            "storage_saturation", "warm_pool_collapse",
        ]
        assert found == detect_anomalies(payload)
