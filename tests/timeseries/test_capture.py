"""The repro-timeseries/v1 capture: build, serialize, validate, render."""

import pytest

from repro.analysis.rules.schema import SCHEMA_KEYS
from repro.common.errors import ValidationError
from repro.timeseries import (
    TimeSeriesSampler,
    capture_payload,
    decode_series,
    load_capture,
    render_capture,
    to_json,
    validate_capture,
)
from repro.timeseries.capture import _TOP_KEYS, JSON_SCHEMA


def _sample_sampler() -> TimeSeriesSampler:
    s = TimeSeriesSampler()
    for t in range(6):
        s.sample("flat", float(t), 7.0)
    for t in range(4):
        s.sample("ramp", float(t), float(t) * 1.5)
    s.mark("reallocation", 2.0, label="300fn/2048MB")
    s.mark("phase_done", 3.0, label="tuning")
    return s


class TestPayload:
    def test_schema_and_totals(self):
        payload = capture_payload(_sample_sampler(), meta={"seed": 0})
        assert payload["schema"] == JSON_SCHEMA
        assert payload["meta"] == {"seed": 0}
        assert payload["totals"]["n_series"] == 2
        assert payload["totals"]["n_samples"] == 10
        # flat compresses to 2 points, ramp keeps all 4.
        assert payload["totals"]["n_points"] == 6
        assert payload["totals"]["dropped"] == 0

    def test_registry_agrees_with_module(self):
        """The REP006 registry pins exactly this document's key set."""
        assert SCHEMA_KEYS[JSON_SCHEMA] == _TOP_KEYS
        payload = capture_payload(_sample_sampler())
        assert set(payload) == _TOP_KEYS

    def test_series_sorted_by_name(self):
        payload = capture_payload(_sample_sampler())
        names = [entry["name"] for entry in payload["series"]]
        assert names == sorted(names)

    def test_delta_encoding_round_trips(self):
        payload = capture_payload(_sample_sampler())
        by_name = {e["name"]: e for e in payload["series"]}
        times, values = decode_series(by_name["ramp"])
        assert times == [0.0, 1.0, 2.0, 3.0]
        assert values == [0.0, 1.5, 3.0, 4.5]

    def test_decode_empty_series(self):
        entry = {"t0_s": 0.0, "dt_s": [], "values": []}
        assert decode_series(entry) == ([], [])

    def test_markers_enumerated(self):
        payload = capture_payload(_sample_sampler())
        assert [m["seq"] for m in payload["markers"]] == [0, 1]
        assert payload["markers"][0]["kind"] == "reallocation"
        assert payload["markers"][0]["label"] == "300fn/2048MB"

    def test_json_round_trip_is_byte_stable(self):
        payload = capture_payload(_sample_sampler(), meta={"seed": 3})
        text = to_json(payload)
        assert text == to_json(load_capture(text))
        assert text.endswith("\n")


class TestValidation:
    def test_load_rejects_bad_json(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_capture("{nope")

    def test_rejects_wrong_schema(self):
        payload = capture_payload(_sample_sampler())
        payload["schema"] = "repro-profile/v1"
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_rejects_extra_top_key(self):
        payload = capture_payload(_sample_sampler())
        payload["surprise"] = 1
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_rejects_series_key_drift(self):
        payload = capture_payload(_sample_sampler())
        del payload["series"][0]["high_water"]
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_rejects_delta_count_mismatch(self):
        payload = capture_payload(_sample_sampler())
        payload["series"][1]["dt_s"] = payload["series"][1]["dt_s"][:-1]
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_rejects_marker_key_drift(self):
        payload = capture_payload(_sample_sampler())
        del payload["markers"][0]["seq"]
        with pytest.raises(ValidationError):
            validate_capture(payload)


class TestRender:
    def test_render_mentions_every_series_and_markers(self):
        text = render_capture(capture_payload(_sample_sampler()))
        assert "flat" in text
        assert "ramp" in text
        assert "marker" in text

    def test_render_is_deterministic(self):
        a = render_capture(capture_payload(_sample_sampler()))
        b = render_capture(capture_payload(_sample_sampler()))
        assert a == b
