"""TimeSeriesSession: scoped install/restore, capture export, peaks."""

import pytest

from repro.slo.events import EventBus, get_event_bus, set_event_bus
from repro.timeseries import (
    NullSampler,
    TimeSeriesSampler,
    TimeSeriesSession,
    get_sampler,
    load_capture,
    peaks_summary,
    set_sampler,
)


class TestLifecycle:
    def test_inert_without_flags(self):
        session = TimeSeriesSession()
        assert not session.active
        with session:
            assert isinstance(get_sampler(), NullSampler)
        assert session.sampler is None

    def test_force_install_and_restore(self):
        with TimeSeriesSession(force_install=True) as session:
            assert get_sampler() is session.sampler
        assert isinstance(get_sampler(), NullSampler)

    def test_sessions_nest(self):
        with TimeSeriesSession(force_install=True) as outer:
            with TimeSeriesSession(force_install=True) as inner:
                assert get_sampler() is inner.sampler
            assert get_sampler() is outer.sampler
        assert isinstance(get_sampler(), NullSampler)

    def test_restores_preexisting_sampler(self):
        mine = TimeSeriesSampler()
        set_sampler(mine)
        try:
            with TimeSeriesSession(force_install=True):
                assert get_sampler() is not mine
            assert get_sampler() is mine
        finally:
            set_sampler(None)

    def test_payload_requires_entry(self):
        with pytest.raises(RuntimeError):
            TimeSeriesSession(force_install=True).payload()


class TestExport:
    def test_writes_capture_on_clean_exit(self, tmp_path):
        path = tmp_path / "ts.json"
        with TimeSeriesSession(capture_path=path, meta={"seed": 1}):
            get_sampler().sample("a", 0.0, 1.0)
        payload = load_capture(path.read_text())
        assert payload["meta"] == {"seed": 1}
        assert payload["totals"]["n_series"] == 1

    def test_no_capture_over_a_crash(self, tmp_path):
        path = tmp_path / "ts.json"
        with pytest.raises(RuntimeError):
            with TimeSeriesSession(capture_path=path):
                raise RuntimeError("boom")
        assert not path.exists()
        # The previous (null) sampler is still restored.
        assert isinstance(get_sampler(), NullSampler)


class TestBusMarkers:
    def test_live_bus_events_become_markers(self):
        bus = EventBus()
        prev = get_event_bus()
        set_event_bus(bus)
        try:
            with TimeSeriesSession(force_install=True) as session:
                bus.emit("epoch_done", 2.5, scope="train")
            marks = [(m.kind, m.t_s, m.label) for m in session.sampler.markers]
        finally:
            set_event_bus(prev)
        assert marks == [("epoch_done", 2.5, "train")]

    def test_null_bus_is_ignored(self):
        with TimeSeriesSession(force_install=True) as session:
            pass
        assert session.sampler.markers == []


class TestPeaksSummary:
    def test_high_water_marks(self):
        s = TimeSeriesSampler()
        s.sample("platform.inflight", 0.0, 10.0)
        s.sample("platform.inflight", 1.0, 300.0)
        s.sample("platform.warm_pool", 1.0, 42.0)
        s.sample("storage.s3.bandwidth_mb_s", 0.5, 120.0)
        s.sample("storage.vmps.bandwidth_mb_s", 0.5, 340.0)
        assert peaks_summary(s) == {
            "concurrency": 300.0,
            "warm_pool": 42.0,
            "storage_bandwidth_mb_s": 340.0,
        }

    def test_empty_sampler_yields_zeros(self):
        assert peaks_summary(TimeSeriesSampler()) == {
            "concurrency": 0.0,
            "warm_pool": 0.0,
            "storage_bandwidth_mb_s": 0.0,
        }
