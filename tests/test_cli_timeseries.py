"""CLI surface of the time-series pipeline: --timeseries, dash, diff."""

import json

import pytest

from repro.cli import build_parser, main
from repro.timeseries import load_capture


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    """One sampled training run shared by the read-only CLI tests."""
    path = tmp_path_factory.mktemp("ts") / "ts.json"
    assert main(["train", "lr-higgs", "--timeseries", str(path)]) == 0
    return path


class TestParser:
    def test_train_timeseries_flag(self):
        args = build_parser().parse_args(
            ["train", "lr-higgs", "--timeseries", "ts.json"]
        )
        assert args.timeseries == "ts.json"

    def test_dash_defaults(self):
        args = build_parser().parse_args(["dash", "--replay", "ts.json"])
        assert args.replay == "ts.json"
        assert args.width == 60

    def test_timeseries_actions(self):
        args = build_parser().parse_args(["timeseries", "diff", "a", "b"])
        assert args.action == "diff"
        assert args.paths == ["a", "b"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeseries", "frobnicate", "a"])


class TestSampledRun:
    def test_capture_written_and_valid(self, capture_path, capsys):
        payload = load_capture(capture_path.read_text())
        names = [entry["name"] for entry in payload["series"]]
        assert "platform.inflight" in names
        assert "train.cost_usd" in names
        assert payload["meta"]["command"] == "train"
        assert main(["timeseries", "validate", str(capture_path)]) == 0
        assert "valid repro-timeseries/v1" in capsys.readouterr().out

    def test_run_summary_gains_peaks(self, tmp_path, capsys):
        ts = tmp_path / "ts.json"
        tel = tmp_path / "tel.json"
        assert main(
            [
                "train", "lr-higgs",
                "--timeseries", str(ts), "--telemetry", str(tel),
            ]
        ) == 0
        capsys.readouterr()
        run = json.loads(tel.read_text())["run"]
        assert run["peaks"]["concurrency"] > 0
        assert main(["report", str(tel)]) == 0
        assert "peak concurrency in use" in capsys.readouterr().out

    def test_summary_has_no_peaks_without_flag(self, tmp_path, capsys):
        tel = tmp_path / "tel.json"
        assert main(["train", "lr-higgs", "--telemetry", str(tel)]) == 0
        capsys.readouterr()
        assert "peaks" not in json.loads(tel.read_text())["run"]

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["timeseries", "validate", str(bad)]) == 2
        assert main(["timeseries", "validate", str(tmp_path / "nope")]) == 2


class TestDash:
    def test_replay_is_byte_stable(self, capture_path, capsys):
        assert main(["dash", "--replay", str(capture_path)]) == 0
        first = capsys.readouterr().out
        assert main(["dash", "--replay", str(capture_path)]) == 0
        assert capsys.readouterr().out == first
        assert "platform.inflight" in first
        assert "repro dash" in first

    def test_replay_missing_file(self, tmp_path, capsys):
        assert main(["dash", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "repro dash" in capsys.readouterr().err

    def test_live_dash_writes_capture(self, tmp_path, capsys):
        out = tmp_path / "live.json"
        assert main(["dash", "lr-higgs", "--out", str(out)]) == 0
        assert "train.cost_usd" in capsys.readouterr().out
        assert load_capture(out.read_text())["meta"]["command"] == "dash"

    def test_workload_required_without_replay(self, capsys):
        assert main(["dash"]) == 2
        assert "workload name" in capsys.readouterr().err


class TestDiff:
    def test_self_diff_is_clean(self, capture_path, capsys):
        assert main(
            ["timeseries", "diff", str(capture_path), str(capture_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "identical" in out
        assert "drift detected: no" in out

    def test_seed_change_drifts(self, capture_path, tmp_path, capsys):
        other = tmp_path / "seed1.json"
        assert main(
            ["train", "lr-higgs", "--seed", "7", "--timeseries", str(other)]
        ) == 0
        capsys.readouterr()
        rc = main(
            ["timeseries", "diff", str(capture_path), str(other),
             "--format", "json"]
        )
        report = json.loads(capsys.readouterr().out)
        drifted = report["summary"]["drifted"]
        # Exit code mirrors the drift verdict either way; a different seed
        # moves at least the cost/sync trajectories.
        assert rc == (1 if drifted else 0)
        assert report["summary"]["n_series"] >= 8

    def test_diff_out_file(self, capture_path, tmp_path, capsys):
        out = tmp_path / "diff.json"
        assert main(
            ["timeseries", "diff", str(capture_path), str(capture_path),
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["schema"] == "repro-timeseries-diff/v1"

    def test_diff_needs_two_paths(self, capture_path, capsys):
        assert main(["timeseries", "diff", str(capture_path)]) == 2
        assert "BASE and TARGET" in capsys.readouterr().err


class TestDiagnose:
    def test_capture_mode_feeds_anomaly_detector(
        self, capture_path, tmp_path, capsys
    ):
        tel = tmp_path / "tel.json"
        assert main(["train", "lr-higgs", "--telemetry", str(tel)]) == 0
        capsys.readouterr()
        assert main(
            ["diagnose", str(tel), "--timeseries", str(capture_path),
             "--format", "json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert "findings" in report

    def test_capture_mode_rejects_bad_timeseries(self, tmp_path, capsys):
        tel = tmp_path / "tel.json"
        assert main(["train", "lr-higgs", "--telemetry", str(tel)]) == 0
        capsys.readouterr()
        assert main(
            ["diagnose", str(tel), "--timeseries", str(tmp_path / "nope")]
        ) == 2
