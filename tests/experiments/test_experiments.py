"""Integration tests: every experiment runs and reproduces the paper's shape.

These assert the qualitative claims (who wins, direction of effects,
hard gates like DynamoDB's N/A), not absolute numbers — our substrate is a
simulator, not the authors' AWS testbed (see EXPERIMENTS.md).
"""

import math

import pytest

from repro.experiments.registry import REGISTRY, run_experiment


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(exp_id):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id, scale="tiny")
        return cache[exp_id]

    return get


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(REGISTRY.available()) == {
            "fig03", "fig04", "table1", "table2", "fig07", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14_15", "fig16_17", "fig18",
            "fig19_20", "fig21", "ext_bohb", "ext_sensitivity",
        }

    def test_unknown_experiment(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            run_experiment("fig99")

    def test_render_produces_text(self, results):
        text = results("table1").render()
        assert "table1" in text and "s3" in text


class TestFig03:
    def test_moderate_reallocation_beats_static(self, results):
        jct = results("fig03").series["jct"]
        assert jct["realloc-10%"] < jct["static"]

    def test_aggressive_reallocation_backfires(self, results):
        jct = results("fig03").series["jct"]
        assert jct["realloc-30%"] > jct["realloc-10%"]

    def test_early_stages_dominate_static_cost(self, results):
        # Paper: first three stages are ~90% of the static plan's cost.
        share = results("fig03").series["static_cost_share_first3"]
        assert share > 0.8


class TestFig04:
    def test_online_beats_offline_late(self, results):
        s = results("fig04").series
        for name, off_err in s["offline"].items():
            late = s["online"][name][0.8]
            if not math.isnan(late):
                assert late < off_err

    def test_online_error_decays(self, results):
        s = results("fig04").series["online"]
        for name, by_progress in s.items():
            early, late = by_progress[0.2], by_progress[0.8]
            if not (math.isnan(early) or math.isnan(late)):
                assert late <= early * 1.5  # broadly decaying


class TestTable2:
    def test_dynamodb_na_for_big_models(self, results):
        s = results("table2").series
        for n in (10, 50):
            jct_rel, _ = s[("mobilenet-cifar10", n)]["dynamodb"]
            assert math.isnan(jct_rel)

    def test_dynamodb_viable_for_lr(self, results):
        s = results("table2").series
        jct_rel, cost_rel = s[("lr-higgs", 10)]["dynamodb"]
        assert jct_rel < 1.0 and cost_rel < 1.0

    def test_s3_never_fastest(self, results):
        s = results("table2").series
        for key, by_storage in s.items():
            others = [v[0] for k, v in by_storage.items()
                      if k != "s3" and not math.isnan(v[0])]
            assert min(others) < 1.0

    def test_expensive_storage_not_always_cheapest(self, results):
        """Finding 3: ElastiCache/VM-PS do not always win on cost."""
        s = results("table2").series
        _, ec_cost = s[("lr-higgs", 10)]["elasticache"]
        assert ec_cost > 1.0  # pricier than S3 at low function counts


class TestFig07:
    def test_front_nontrivial(self, results):
        s = results("fig07").series
        assert 2 <= s["n_front"] < s["n_points"]

    def test_everything_off_front_dominated(self, results):
        s = results("fig07").series
        assert s["n_dominated"] == s["n_points"] - s["n_front"]


class TestFig09Fig10:
    def test_ce_beats_static_methods_jct(self, results):
        for name, comp in results("fig09").series.items():
            assert comp["ce-scaling"]["jct_s"] <= comp["lambdaml"]["jct_s"] * 1.02
            assert comp["ce-scaling"]["jct_s"] < comp["siren"]["jct_s"]

    def test_fixed_is_worst_or_close(self, results):
        for name, comp in results("fig09").series.items():
            assert comp["fixed"]["jct_s"] > comp["ce-scaling"]["jct_s"]

    def test_ce_cheapest_given_qos(self, results):
        for name, comp in results("fig10").series.items():
            assert comp["ce-scaling"]["cost_usd"] <= comp["lambdaml"]["cost_usd"] * 1.02
            assert comp["ce-scaling"]["cost_usd"] < comp["siren"]["cost_usd"]


class TestFig11:
    def test_ce_shifts_budget_to_late_stages(self, results):
        per_trial = results("fig11").series["per_trial"]
        ce, static = per_trial["ce-scaling"], per_trial["lambdaml"]
        ce_rel = [c / s for c, s in zip(ce, static)]
        assert ce_rel[-1] >= ce_rel[0]

    def test_static_spends_most_early(self, results):
        share = results("fig11").series["lambdaml_first2_share"]
        assert share > 0.6


class TestFig12Fig13:
    def test_ce_best_jct_among_budget_compliant(self, results):
        for name, comp in results("fig12").series.items():
            budget = comp["ce-scaling"]["budget_usd"]
            # CE must satisfy the budget and dominate Siren; storage-pinned
            # Cirrus can be competitive on JCT when VM-PS happens to be the
            # best storage (Fig. 17), so it only bounds CE loosely.
            assert comp["ce-scaling"]["cost_usd"] <= budget * 1.02
            assert comp["ce-scaling"]["jct_s"] < comp["siren"]["jct_s"]
            compliant = {
                m: r for m, r in comp.items() if r["cost_usd"] <= budget * 1.02
            }
            best = min(compliant.values(), key=lambda r: r["jct_s"])
            assert comp["ce-scaling"]["jct_s"] <= best["jct_s"] * 2.5

    def test_siren_comm_overhead_dominant(self, results):
        for name, comp in results("fig12").series.items():
            assert comp["siren"]["comm_s"] >= comp["ce-scaling"]["comm_s"]

    def test_ce_cheapest_among_qos_compliant(self, results):
        for name, comp in results("fig13").series.items():
            qos = comp["ce-scaling"]["qos_s"]
            compliant = {
                m: r for m, r in comp.items() if r["jct_s"] <= qos * 1.05
            }
            assert "ce-scaling" in compliant
            best = min(compliant.values(), key=lambda r: r["cost_usd"])
            assert comp["ce-scaling"]["cost_usd"] <= best["cost_usd"] * 1.15


class TestFig14_15:
    def test_tuning_advantage_nonnegative(self, results):
        # Plan quality is never worse than static (the paper's Remark);
        # measured JCT additionally carries the planner's few seconds of
        # scheduling overhead, hence the absolute slack.
        for mult, comp in results("fig14_15").series["tuning"].items():
            assert (
                comp["ce-scaling"]["jct_s"]
                <= comp["lambdaml"]["jct_s"] * 1.02 + 10.0
            )

    def test_tight_constraints_amplify_advantage(self, results):
        tuning = results("fig14_15").series["tuning"]
        mults = sorted(tuning)
        tight = 1 - tuning[mults[0]]["ce-scaling"]["jct_s"] / tuning[mults[0]][
            "lambdaml"
        ]["jct_s"]
        loose = 1 - tuning[mults[-1]]["ce-scaling"]["jct_s"] / tuning[mults[-1]][
            "lambdaml"
        ]["jct_s"]
        assert tight >= loose - 0.05


class TestFig16_17:
    def test_ce_wins_under_pinned_storage_tuning(self, results):
        for storage, comp in results("fig16_17").series["tuning"].items():
            assert comp["ce-scaling"]["jct_s"] <= comp["lambdaml"]["jct_s"] * 1.02

    def test_training_pinned_runs(self, results):
        training = results("fig16_17").series["training"]
        assert set(training) == {"s3", "vmps"}
        for comp in training.values():
            assert comp["ce-scaling"]["jct_s"] > 0


class TestFig18:
    def test_dynamodb_na_for_mobilenet(self, results):
        s = results("fig18").series
        assert s["mobilenet-cifar10"]["dynamodb"] is None
        assert s["lr-higgs"]["dynamodb"] is not None

    def test_storage_choice_matters(self, results):
        s = results("fig18").series["mobilenet-cifar10"]
        jcts = [r["jct_s"] for r in s.values() if r is not None]
        assert max(jcts) > 1.3 * min(jcts)


class TestFig19_20:
    def test_time_errors_in_band(self, results):
        s = results("fig19_20").series
        for fig in ("fig19", "fig20"):
            assert max(s[fig]["time"]) < 15.0
            assert max(s[fig]["cost"]) < 15.0


class TestFig21:
    def test_pareto_cuts_tuning_evaluations(self, results):
        s = results("fig21").series["tuning"]
        assert s["ce-scaling"]["candidates"] < s["wo-pa"]["candidates"]
        assert s["ce-scaling"]["sim_overhead_s"] < s["wo-pa"]["sim_overhead_s"]

    def test_pareto_and_dr_cut_training_overhead(self, results):
        s = results("fig21").series["training"]
        assert s["ce-scaling"]["sched_overhead_s"] <= s["wo-pa"]["sched_overhead_s"]
        assert s["wo-pa"]["sched_overhead_s"] <= s["wo-pa-dr"]["sched_overhead_s"]

    def test_delta_controls_restarts(self, results):
        s = results("fig21").series["delta"]
        deltas = sorted(s)
        assert s[deltas[0]]["restarts"] >= s[deltas[-1]]["restarts"]
