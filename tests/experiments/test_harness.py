"""Tests for the experiment harness plumbing."""

import pytest

from repro.common.errors import ValidationError
from repro.experiments.harness import SCALES, ExperimentResult, get_scale, summarize
from repro.workflow.metrics import ComparisonTable


class TestScales:
    def test_three_scales(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_paper_scale_matches_headline(self):
        sc = SCALES["paper"]
        assert sc.sha_trials == 16384
        spec = sc.sha_spec()
        assert spec.n_stages == 14
        assert len(sc.workloads) == 7

    def test_get_scale_by_name_or_object(self):
        assert get_scale("tiny") is SCALES["tiny"]
        assert get_scale(SCALES["small"]) is SCALES["small"]

    def test_unknown_scale(self):
        with pytest.raises(ValidationError):
            get_scale("gigantic")

    def test_seeds_distinct_and_deterministic(self):
        sc = SCALES["small"]
        assert sc.seeds(0) == sc.seeds(0)
        assert len(set(sc.seeds(0))) == sc.n_seeds
        assert sc.seeds(0) != sc.seeds(1)


class TestExperimentResult:
    def test_render_includes_tables_and_notes(self):
        t = ComparisonTable(columns=["a"], title="T")
        t.add_row(1)
        r = ExperimentResult(
            experiment="figX", title="demo", tables=[t], notes="a note"
        )
        text = r.render()
        assert "figX" in text and "demo" in text
        assert "a note" in text

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0


class TestReportGenerator:
    def test_generate_report_subset(self, monkeypatch):
        """The report generator renders whatever the registry offers."""
        from repro.experiments import report as report_mod

        class TinyRegistry(dict):
            def available(self):
                return ["table1"]

        monkeypatch.setattr(
            report_mod, "REGISTRY", TinyRegistry()
        )
        text = report_mod.generate_report(scale="tiny")
        assert "table1" in text
        assert "```" in text
