"""Smoke tests for the package's public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.common", "repro.config", "repro.storage", "repro.faas",
            "repro.ml", "repro.analytical", "repro.tuning", "repro.training",
            "repro.baselines", "repro.workflow", "repro.experiments",
            "repro.telemetry", "repro.slo", "repro.faults", "repro.profiling",
            "repro.kernel",
        ],
    )
    def test_subpackages_importable(self, module):
        importlib.import_module(module)

    def test_headline_objects_exposed(self):
        assert repro.Objective.MIN_JCT_GIVEN_BUDGET is not None
        assert callable(repro.run_training)
        assert callable(repro.run_tuning)
        assert callable(repro.workload)
        spec = repro.SHASpec(16, 2, 2)
        assert spec.n_stages == 4

    def test_docstrings_everywhere(self):
        """Every public module and exported class/function is documented."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
