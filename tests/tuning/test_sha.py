"""Tests for the Successive Halving engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.sha import SHAEngine, SHASpec


class TestSHASpec:
    def test_paper_headline_shape(self):
        spec = SHASpec.paper_headline()
        assert spec.n_trials == 16384
        assert spec.n_stages == 14
        assert spec.epochs_per_stage == 2

    def test_trials_halve_per_stage(self):
        spec = SHASpec(64, 2, 2)
        assert [spec.trials_in_stage(i) for i in range(spec.n_stages)] == [
            64, 32, 16, 8, 4, 2,
        ]

    def test_reduction_factor_four(self):
        spec = SHASpec(64, 4, 1)
        assert spec.n_stages == 3
        assert [spec.trials_in_stage(i) for i in range(3)] == [64, 16, 4]

    def test_total_trial_epochs(self):
        spec = SHASpec(8, 2, 2)
        # stages: 8, 4, 2 trials x 2 epochs
        assert spec.total_trial_epochs() == 2 * (8 + 4 + 2)

    def test_stage_bounds_checked(self):
        spec = SHASpec(8, 2, 2)
        with pytest.raises(ValidationError):
            spec.trials_in_stage(spec.n_stages)
        with pytest.raises(ValidationError):
            spec.epochs_in_stage(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            SHASpec(1, 2, 2)
        with pytest.raises(ValidationError):
            SHASpec(8, 1, 2)
        with pytest.raises(ValidationError):
            SHASpec(8, 2, 0)

    @given(n=st.integers(4, 1024), eta=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_stage_counts_monotone(self, n, eta):
        spec = SHASpec(n, eta, 1)
        counts = [spec.trials_in_stage(i) for i in range(spec.n_stages)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] == n
        assert counts[-1] >= 2


class TestSHAEngine:
    def _engine(self, n=32, seed=0):
        return SHAEngine(SHASpec(n, 2, 2), workload("lr-higgs"), seed=seed)

    def test_initial_trials_alive(self):
        eng = self._engine()
        assert len(eng.alive_trials) == 32

    def test_stage_terminates_half(self):
        eng = self._engine()
        terminated = eng.run_stage()
        assert len(terminated) == 16
        assert len(eng.alive_trials) == 16

    def test_run_to_completion_single_winner(self):
        eng = self._engine()
        winner = eng.run_to_completion()
        assert eng.finished
        assert len(eng.alive_trials) == 1
        assert winner.alive

    def test_cannot_run_past_end(self):
        eng = self._engine()
        eng.run_to_completion()
        with pytest.raises(ValidationError):
            eng.run_stage()

    def test_winner_before_finish_rejected(self):
        eng = self._engine()
        with pytest.raises(ValidationError):
            eng.winner()

    def test_deterministic(self):
        w1 = self._engine(seed=7).run_to_completion()
        w2 = self._engine(seed=7).run_to_completion()
        assert w1.index == w2.index

    def test_winner_quality_above_median(self):
        """SHA's ranking has signal: the winner's latent quality should beat
        the trial population's median across seeds."""
        import numpy as np

        better = 0
        for seed in range(8):
            eng = self._engine(n=64, seed=seed)
            median_q = float(np.median([t.quality for t in eng.trials]))
            if eng.run_to_completion().quality > median_q:
                better += 1
        assert better >= 7

    def test_epochs_accumulate_only_for_survivors(self):
        eng = self._engine(n=16)
        eng.run_stage()
        eng.run_stage()
        dead = [t for t in eng.trials if not t.alive]
        alive = eng.alive_trials
        assert all(t.epochs_trained <= 4 for t in dead)
        assert all(t.epochs_trained == 4 for t in alive)

    def test_trial_losses_recorded(self):
        eng = self._engine(n=8)
        eng.run_stage()
        for t in eng.trials:
            assert len(t.losses) == 2
