"""Tests for the tuning executor (SHA + resource side)."""

import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.executor import TuningExecutor
from repro.tuning.plan import PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec


@pytest.fixture(scope="module")
def spec():
    return SHASpec(32, 2, 2)


@pytest.fixture(scope="module")
def plan(lr_profile, spec):
    return PartitionPlan.uniform(lr_profile.pareto[len(lr_profile.pareto) // 2],
                                 spec.n_stages)


class TestTuningExecutor:
    def test_runs_all_stages(self, lr_higgs, spec, plan):
        result = TuningExecutor(lr_higgs, spec, seed=0).run(plan)
        assert len(result.stages) == spec.n_stages
        assert result.winner is not None

    def test_jct_close_to_prediction(self, lr_higgs, spec, plan):
        result = TuningExecutor(lr_higgs, spec, seed=0).run(plan)
        predicted = evaluate_plan(plan, spec)
        assert result.jct_s == pytest.approx(predicted.jct_s, rel=0.5)
        assert result.cost_usd == pytest.approx(predicted.cost_usd, rel=0.3)

    def test_overhead_added_to_jct(self, lr_higgs, spec, plan):
        base = TuningExecutor(lr_higgs, spec, seed=0).run(plan)
        with_oh = TuningExecutor(lr_higgs, spec, seed=0).run(
            plan, scheduling_overhead_s=100.0
        )
        assert with_oh.jct_s == pytest.approx(base.jct_s + 100.0)

    def test_deterministic(self, lr_higgs, spec, plan):
        a = TuningExecutor(lr_higgs, spec, seed=5).run(plan)
        b = TuningExecutor(lr_higgs, spec, seed=5).run(plan)
        assert a.jct_s == b.jct_s
        assert a.cost_usd == b.cost_usd
        assert a.winner.index == b.winner.index

    def test_seed_changes_measurement(self, lr_higgs, spec, plan):
        a = TuningExecutor(lr_higgs, spec, seed=1).run(plan)
        b = TuningExecutor(lr_higgs, spec, seed=2).run(plan)
        assert a.jct_s != b.jct_s

    def test_stage_records_consistent(self, lr_higgs, spec, plan):
        result = TuningExecutor(lr_higgs, spec, seed=0).run(plan)
        for i, rec in enumerate(result.stages):
            assert rec.n_trials == spec.trials_in_stage(i)
            assert rec.epochs_per_trial == spec.epochs_in_stage(i)
            assert rec.cost_per_trial_usd == pytest.approx(
                rec.cost_usd / rec.n_trials
            )

    def test_comm_overhead_positive(self, lr_higgs, spec, plan):
        result = TuningExecutor(lr_higgs, spec, seed=0).run(plan)
        assert 0 < result.comm_overhead_s < result.jct_s

    def test_wrong_plan_length_rejected(self, lr_higgs, spec, lr_profile):
        bad = PartitionPlan.uniform(lr_profile.pareto[0], spec.n_stages + 1)
        with pytest.raises(ValidationError):
            TuningExecutor(lr_higgs, spec, seed=0).run(bad)
