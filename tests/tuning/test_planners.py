"""Tests for the partitioning plan, static planners and Algorithm 1."""

import math

import pytest

from repro.common.errors import ConstraintError, ValidationError
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan, stage_waves
from repro.tuning.sha import SHASpec
from repro.tuning.static_planner import (
    even_budget_plan,
    optimal_static_plan,
    static_plan,
)


@pytest.fixture(scope="module")
def spec():
    return SHASpec(256, 2, 2)


@pytest.fixture(scope="module")
def ladder(lr_profile):
    return sorted(lr_profile.pareto, key=lambda p: p.cost_usd)


class TestPlanEvaluation:
    def test_uniform_plan_shape(self, ladder, spec):
        plan = PartitionPlan.uniform(ladder[0], spec.n_stages)
        assert len(plan.stages) == spec.n_stages

    def test_empty_plan_rejected(self):
        with pytest.raises(ValidationError):
            PartitionPlan(())

    def test_wrong_stage_count_rejected(self, ladder, spec):
        plan = PartitionPlan.uniform(ladder[0], 3)
        with pytest.raises(ValidationError):
            evaluate_plan(plan, spec)

    def test_jct_is_sum_of_stage_times(self, ladder, spec):
        plan = PartitionPlan.uniform(ladder[0], spec.n_stages)
        ev = evaluate_plan(plan, spec)
        assert ev.jct_s == pytest.approx(sum(ev.stage_jct_s))
        assert ev.cost_usd == pytest.approx(sum(ev.stage_cost_usd))

    def test_stage_cost_scales_with_trials(self, ladder, spec):
        plan = PartitionPlan.uniform(ladder[0], spec.n_stages)
        ev = evaluate_plan(plan, spec)
        # Uniform allocation: stage cost ratio equals trial-count ratio.
        assert ev.stage_cost_usd[0] / ev.stage_cost_usd[1] == pytest.approx(2.0)

    def test_waves_respect_concurrency(self):
        assert stage_waves(16384, 10) == math.ceil(163840 / 3000)
        assert stage_waves(10, 10) == 1

    def test_replace_stage(self, ladder, spec):
        plan = PartitionPlan.uniform(ladder[0], spec.n_stages)
        other = plan.replace_stage(2, ladder[-1])
        assert other.stages[2] is ladder[-1]
        assert plan.stages[2] is ladder[0]


class TestStaticPlanners:
    def test_static_plan_uniform(self, ladder, spec):
        plan = static_plan(ladder[3], spec)
        assert all(p is ladder[3] for p in plan.stages)

    def test_optimal_static_min_jct(self, ladder, spec):
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        budget = cheap_ev.cost_usd * 1.5
        plan = optimal_static_plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget
        )
        ev = evaluate_plan(plan, spec)
        assert ev.cost_usd <= budget
        # Must beat the naive cheapest choice on JCT.
        assert ev.jct_s <= cheap_ev.jct_s

    def test_optimal_static_min_cost(self, ladder, spec):
        fast_ev = evaluate_plan(static_plan(ladder[-1], spec), spec)
        qos = fast_ev.jct_s * 2.0
        plan = optimal_static_plan(
            ladder, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        ev = evaluate_plan(plan, spec)
        assert ev.jct_s <= qos
        assert ev.cost_usd <= fast_ev.cost_usd

    def test_infeasible_falls_back_to_closest(self, ladder, spec):
        plan = optimal_static_plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1e-9
        )
        ev = evaluate_plan(plan, spec)
        # Best effort: the cheapest uniform plan.
        assert ev.cost_usd == pytest.approx(
            evaluate_plan(static_plan(ladder[0], spec), spec).cost_usd
        )

    def test_missing_constraint_rejected(self, ladder, spec):
        with pytest.raises(ConstraintError):
            optimal_static_plan(ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET)

    def test_even_budget_starves_early_stages(self, ladder, spec):
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        plan = even_budget_plan(ladder, spec, cheap_ev.cost_usd * 1.5)
        # Early stages (many trials) get cheaper points than late stages.
        assert plan.stages[0].cost_usd <= plan.stages[-1].cost_usd


class TestGreedyPlanner:
    def test_never_worse_than_static(self, ladder, spec):
        """The paper's Remark: the greedy result is never worse than the
        optimal static warm start."""
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        for mult in (1.1, 1.5, 3.0):
            res = GreedyHeuristicPlanner().plan(
                ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=cheap_ev.cost_usd * mult,
            )
            assert res.evaluation.jct_s <= res.static_evaluation.jct_s + 1e-9
            assert res.evaluation.cost_usd <= cheap_ev.cost_usd * mult + 1e-9

    def test_improves_under_tight_budget(self, ladder, spec):
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap_ev.cost_usd * 1.1,
        )
        assert res.evaluation.jct_s < res.static_evaluation.jct_s * 0.95

    def test_cost_min_respects_qos(self, ladder, spec):
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        qos = cheap_ev.jct_s * 0.5
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        assert res.evaluation.jct_s <= qos + 1e-9
        assert res.evaluation.cost_usd <= res.static_evaluation.cost_usd + 1e-9

    def test_early_stages_not_richer_than_late(self, ladder, spec):
        """CE's signature shape: per-trial spend grows toward late stages."""
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap_ev.cost_usd * 1.2,
        )
        first = res.plan.stages[0].cost_usd
        last = res.plan.stages[-1].cost_usd
        assert last >= first

    def test_missing_constraint_rejected(self, ladder, spec):
        with pytest.raises(ConstraintError):
            GreedyHeuristicPlanner().plan(
                ladder, spec, Objective.MIN_COST_GIVEN_QOS
            )

    def test_infeasible_budget_flagged(self, ladder, spec):
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1e-9
        )
        assert not res.feasible

    def test_stats_populated(self, ladder, spec):
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap_ev.cost_usd * 1.5,
        )
        assert res.stats.candidates_evaluated > 0
        assert res.stats.wall_time_s > 0
