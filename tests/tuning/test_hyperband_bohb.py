"""Tests for the HyperBand brackets and BOHB extension."""

import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.bohb import BOHBEngine, BOHBRunner, TPESampler
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.hyperband import BracketSpec, HyperBandSpec
from repro.tuning.plan import Objective, evaluate_plan
from repro.tuning.executor import TuningExecutor
from repro.tuning.sha import SHAEngine


class TestBracketSpec:
    def test_stage_shape(self):
        b = BracketSpec(n_trials=16, reduction_factor=2, initial_epochs=1)
        assert b.n_stages == 4
        assert [b.trials_in_stage(i) for i in range(4)] == [16, 8, 4, 2]
        assert [b.epochs_in_stage(i) for i in range(4)] == [1, 2, 4, 8]

    def test_max_rungs_cap(self):
        b = BracketSpec(n_trials=16, reduction_factor=2, initial_epochs=4,
                        max_rungs=2)
        assert b.n_stages == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            BracketSpec(n_trials=1, reduction_factor=2, initial_epochs=1)
        with pytest.raises(ValidationError):
            BracketSpec(n_trials=8, reduction_factor=1, initial_epochs=1)

    def test_total_trial_epochs(self):
        b = BracketSpec(n_trials=4, reduction_factor=2, initial_epochs=3)
        # stages: 4 trials x 3 epochs + 2 trials x 6 epochs
        assert b.total_trial_epochs() == 4 * 3 + 2 * 6


class TestHyperBandSpec:
    def test_bracket_count(self):
        hb = HyperBandSpec(max_epochs_per_trial=27, reduction_factor=3)
        assert hb.s_max == 3
        assert len(hb.brackets()) == 4

    def test_final_rung_never_exceeds_r(self):
        hb = HyperBandSpec(max_epochs_per_trial=16, reduction_factor=2)
        for b in hb.brackets():
            last = b.epochs_in_stage(b.n_stages - 1)
            assert last <= hb.max_epochs_per_trial

    def test_most_exploratory_bracket_first(self):
        hb = HyperBandSpec(max_epochs_per_trial=16, reduction_factor=2)
        brackets = hb.brackets()
        assert brackets[0].n_trials >= brackets[-1].n_trials
        assert brackets[0].initial_epochs <= brackets[-1].initial_epochs

    def test_validation(self):
        with pytest.raises(ValidationError):
            HyperBandSpec(max_epochs_per_trial=0)


class TestPlannerOnBrackets:
    def test_greedy_planner_accepts_bracket(self, lr_profile):
        """The paper's claim: CE-scaling's partitioning applies to
        HyperBand-family tuners, not only plain SHA."""
        bracket = BracketSpec(n_trials=32, reduction_factor=2, initial_epochs=1)
        res = GreedyHeuristicPlanner().plan(
            lr_profile.pareto, bracket, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=1e6,
        )
        assert len(res.plan.stages) == bracket.n_stages
        ev = evaluate_plan(res.plan, bracket)
        assert ev.jct_s > 0

    def test_executor_accepts_bracket(self, lr_higgs, lr_profile):
        bracket = BracketSpec(n_trials=8, reduction_factor=2, initial_epochs=1)
        from repro.tuning.plan import PartitionPlan

        plan = PartitionPlan.uniform(lr_profile.pareto[0], bracket.n_stages)
        result = TuningExecutor(lr_higgs, bracket, seed=0).run(plan)
        assert result.winner is not None


class TestTPESampler:
    def test_prior_until_enough_observations(self):
        s = TPESampler(seed=0, min_observations=5)
        lr, mom = s.sample()
        assert 10**-5 <= lr <= 10**-0.5
        assert 0.0 <= mom <= 0.99

    def test_deterministic(self):
        assert TPESampler(seed=1).sample() == TPESampler(seed=1).sample()

    def test_rejects_bad_lr(self):
        with pytest.raises(ValidationError):
            TPESampler().observe(0.0, 0.5, 1.0)

    def test_concentrates_near_good_configs(self):
        """After observing that configs near (1e-2, 0.9) score best, samples
        move toward that region."""
        import numpy as np

        s = TPESampler(seed=0, min_observations=8)
        rng = np.random.default_rng(0)
        for _ in range(60):
            lr = float(10 ** rng.uniform(-5, -0.5))
            mom = float(rng.uniform(0, 0.99))
            score = -abs(np.log10(lr) + 2) - abs(mom - 0.9)
            s.observe(lr, mom, score)
        samples = [s.sample() for _ in range(30)]
        mean_loglr = np.mean([np.log10(lr) for lr, _ in samples])
        mean_mom = np.mean([m for _, m in samples])
        assert abs(mean_loglr + 2) < 1.2
        assert abs(mean_mom - 0.9) < 0.25


class TestBOHB:
    def test_engine_reports_scores(self, mobilenet):
        sampler = TPESampler(seed=0)
        bracket = BracketSpec(n_trials=8, reduction_factor=2, initial_epochs=1)
        engine = BOHBEngine(bracket, mobilenet, sampler, seed=0)
        engine.run_to_completion()
        engine.report_to_sampler()
        assert sampler.n_observations == 8

    def test_runner_end_to_end(self, mobilenet, mobilenet_profile):
        hb = HyperBandSpec(max_epochs_per_trial=8, reduction_factor=2)
        res = BOHBRunner(
            mobilenet, hb, mobilenet_profile.pareto, budget_usd=30.0, seed=0
        ).run()
        assert res.jct_s > 0
        assert res.best_trial is not None
        assert len(res.bracket_results) == len(hb.brackets())

    def test_runner_deterministic(self, mobilenet, mobilenet_profile):
        hb = HyperBandSpec(max_epochs_per_trial=8, reduction_factor=2)
        a = BOHBRunner(mobilenet, hb, mobilenet_profile.pareto, 30.0, seed=2).run()
        b = BOHBRunner(mobilenet, hb, mobilenet_profile.pareto, 30.0, seed=2).run()
        assert a.jct_s == b.jct_s
        assert a.best_trial.index == b.best_trial.index

    def test_bohb_finds_good_config(self, mobilenet, mobilenet_profile):
        hb = HyperBandSpec(max_epochs_per_trial=16, reduction_factor=2)
        res = BOHBRunner(
            mobilenet, hb, mobilenet_profile.pareto, budget_usd=50.0, seed=0
        ).run()
        assert res.best_trial.quality > 0.5
