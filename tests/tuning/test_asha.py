"""Tests for the asynchronous SHA engine."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.tuning.asha import ASHAEngine, ASHASpec


class TestASHASpec:
    def test_epochs_to_reach_geometric(self):
        spec = ASHASpec(n_trials=16, max_rung=3, reduction_factor=2,
                        epochs_per_rung=1)
        assert spec.epochs_to_reach(0) == 1
        assert spec.epochs_to_reach(1) == 3
        assert spec.epochs_to_reach(3) == 15

    def test_validation(self):
        with pytest.raises(ValidationError):
            ASHASpec(n_trials=1)
        with pytest.raises(ValidationError):
            ASHASpec(n_trials=8, max_rung=0)
        with pytest.raises(ValidationError):
            ASHASpec(n_trials=8).epochs_to_reach(9)


class TestASHAEngine:
    def _engine(self, n=32, seed=0, max_rung=3):
        return ASHAEngine(
            ASHASpec(n_trials=n, max_rung=max_rung), workload("lr-higgs"),
            seed=seed,
        )

    def test_steps_sample_then_promote(self):
        eng = self._engine(n=8)
        for _ in range(8):
            eng.step()
        assert len(eng.trials) >= 4  # sampling happened
        assert eng.steps == 8

    def test_run_returns_completed_trial(self):
        eng = self._engine(n=16)
        best = eng.run()
        assert eng.rung_of[best.index] == eng.spec.max_rung
        assert best.epochs_trained == eng.spec.epochs_to_reach(eng.spec.max_rung)

    def test_no_barriers_trials_at_mixed_rungs(self):
        eng = self._engine(n=32)
        for _ in range(40):
            eng.step()
        rungs = {r for r in eng.rung_of.values() if r >= 0}
        assert len(rungs) >= 2  # asynchronous progress

    def test_deterministic(self):
        a = self._engine(n=16, seed=3).run()
        b = self._engine(n=16, seed=3).run()
        assert a.index == b.index

    def test_promotes_better_than_median(self):
        wins = 0
        for seed in range(6):
            eng = self._engine(n=32, seed=seed)
            best = eng.run()
            median_q = float(np.median([t.quality for t in eng.trials]))
            wins += best.quality >= median_q
        assert wins >= 5

    def test_promotion_fraction(self):
        """At most ~1/eta of rung-0 evaluations reach rung 1."""
        eng = self._engine(n=32, max_rung=2)
        eng.run()
        r0 = len(eng.rung_scores[0])
        r1 = len(eng.rung_scores[1])
        assert r1 <= r0 // 2 + 1

    def test_finished_guard(self):
        eng = self._engine(n=4, max_rung=1)
        eng.run()
        assert eng.finished
