"""Tests for the exact DP reference solver."""

import pytest

from repro.common.errors import ConstraintError, ValidationError
from repro.tuning.exact import solve_exact
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec


@pytest.fixture(scope="module")
def spec():
    return SHASpec(64, 2, 2)


@pytest.fixture(scope="module")
def cheap_ev(lr_profile, spec):
    return evaluate_plan(
        PartitionPlan.uniform(lr_profile.cheapest(), spec.n_stages), spec
    )


class TestSolveExact:
    def test_respects_budget(self, lr_profile, spec, cheap_ev):
        budget = cheap_ev.cost_usd * 1.4
        res = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
        )
        assert res.cost_usd <= budget + 1e-9

    def test_respects_qos(self, lr_profile, spec, cheap_ev):
        qos = cheap_ev.jct_s * 0.5
        res = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        assert res.jct_s <= qos + 1e-9

    def test_at_least_as_good_as_uniform(self, lr_profile, spec, cheap_ev):
        budget = cheap_ev.cost_usd * 1.5
        res = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, grid=800,
        )
        # Any feasible uniform plan bounds the optimum from above.
        from repro.tuning.static_planner import optimal_static_plan

        static = optimal_static_plan(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
        )
        assert res.jct_s <= evaluate_plan(static, spec).jct_s * 1.05

    def test_greedy_close_to_dp(self, lr_profile, spec, cheap_ev):
        qos = cheap_ev.jct_s * 0.4
        greedy = GreedyHeuristicPlanner().plan(
            lr_profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        exact = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        assert greedy.evaluation.cost_usd <= exact.cost_usd * 1.10

    def test_infeasible_constraint_raises(self, lr_profile, spec):
        with pytest.raises(ConstraintError):
            solve_exact(
                lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=1e-9,
            )

    def test_missing_constraint_raises(self, lr_profile, spec):
        with pytest.raises(ConstraintError):
            solve_exact(lr_profile.pareto, spec, Objective.MIN_COST_GIVEN_QOS)

    def test_empty_candidates(self, spec):
        with pytest.raises(ValidationError):
            solve_exact([], spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=1.0)

    def test_finer_grid_no_worse(self, lr_profile, spec, cheap_ev):
        budget = cheap_ev.cost_usd * 1.3
        coarse = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, grid=150,
        )
        fine = solve_exact(
            lr_profile.pareto, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, grid=1200,
        )
        assert fine.jct_s <= coarse.jct_s * 1.02
