"""Property-based tests on Algorithm 1's guarantees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec


@pytest.fixture(scope="module")
def ladder(lr_profile):
    return sorted(lr_profile.pareto, key=lambda p: p.cost_usd)


class TestPlannerProperties:
    @given(
        mult=st.floats(1.05, 4.0),
        trials=st.sampled_from([32, 128, 512]),
    )
    @settings(max_examples=15, deadline=None)
    def test_budget_always_respected(self, ladder, mult, trials):
        spec = SHASpec(trials, 2, 2)
        cheap = evaluate_plan(PartitionPlan.uniform(ladder[0], spec.n_stages), spec)
        budget = cheap.cost_usd * mult
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget
        )
        assert res.feasible
        assert res.evaluation.cost_usd <= budget * (1 + 1e-9)

    @given(
        mult=st.floats(1.05, 4.0),
        trials=st.sampled_from([32, 128, 512]),
    )
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_static(self, ladder, mult, trials):
        """The paper's Remark, across random budgets and SHA sizes."""
        spec = SHASpec(trials, 2, 2)
        cheap = evaluate_plan(PartitionPlan.uniform(ladder[0], spec.n_stages), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap.cost_usd * mult,
        )
        assert res.evaluation.jct_s <= res.static_evaluation.jct_s * (1 + 1e-9)

    @given(frac=st.floats(0.2, 1.0), trials=st.sampled_from([32, 128]))
    @settings(max_examples=15, deadline=None)
    def test_qos_always_respected(self, ladder, frac, trials):
        spec = SHASpec(trials, 2, 2)
        cheap = evaluate_plan(PartitionPlan.uniform(ladder[0], spec.n_stages), spec)
        qos = cheap.jct_s * frac
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_COST_GIVEN_QOS, qos_s=qos
        )
        if res.feasible:
            assert res.evaluation.jct_s <= qos * (1 + 1e-9)
            assert res.evaluation.cost_usd <= res.static_evaluation.cost_usd * (
                1 + 1e-9
            )

    @given(eta=st.sampled_from([2, 3, 4]))
    @settings(max_examples=6, deadline=None)
    def test_reduction_factor_agnostic(self, ladder, eta):
        spec = SHASpec(81 if eta == 3 else 64, eta, 2)
        cheap = evaluate_plan(PartitionPlan.uniform(ladder[0], spec.n_stages), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap.cost_usd * 1.3,
        )
        assert len(res.plan.stages) == spec.n_stages
        assert res.evaluation.cost_usd <= cheap.cost_usd * 1.3 + 1e-9

    def test_plan_evaluation_matches_public_evaluator(self, ladder):
        """The planner's cached evaluator must agree with evaluate_plan."""
        spec = SHASpec(64, 2, 2)
        cheap = evaluate_plan(PartitionPlan.uniform(ladder[0], spec.n_stages), spec)
        res = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap.cost_usd * 1.5,
        )
        public = evaluate_plan(res.plan, spec)
        assert res.evaluation.jct_s == pytest.approx(public.jct_s, rel=1e-12)
        assert res.evaluation.cost_usd == pytest.approx(public.cost_usd, rel=1e-12)
