"""Unit and property tests for the convergence-curve machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.ml.curves import (
    CurveParams,
    LossCurveSampler,
    exponential_decay,
    hyperbolic,
    inverse_power_law,
)


class TestCurveParams:
    def test_rejects_inverted_endpoints(self):
        with pytest.raises(ValidationError):
            CurveParams(init_loss=0.1, floor_loss=0.5, alpha=1.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValidationError):
            CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.0)

    def test_loss_at_zero_is_init(self):
        p = CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.5)
        assert p.loss_at(0) == pytest.approx(1.0)

    def test_loss_monotone_decreasing(self):
        p = CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.5)
        losses = [p.loss_at(e) for e in range(0, 100, 5)]
        assert all(a > b for a, b in zip(losses, losses[1:]))

    def test_epochs_to_inverse_of_loss_at(self):
        p = CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.7)
        e = p.epochs_to(0.3)
        assert p.loss_at(e) == pytest.approx(0.3, rel=1e-9)

    def test_epochs_to_target_above_init_is_zero(self):
        p = CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.7)
        assert p.epochs_to(2.0) == 0.0

    def test_epochs_to_below_floor_raises(self):
        p = CurveParams(init_loss=1.0, floor_loss=0.1, alpha=0.7)
        with pytest.raises(ValidationError):
            p.epochs_to(0.05)

    def test_solve_alpha_calibration(self):
        p = CurveParams.solve_alpha(1.0, 0.1, 0.3, nominal_epochs=25)
        assert p.epochs_to(0.3) == pytest.approx(25, rel=1e-9)

    def test_solve_alpha_rejects_bad_ordering(self):
        with pytest.raises(ValidationError):
            CurveParams.solve_alpha(1.0, 0.5, 0.4, 10)  # target below floor

    @given(
        init=st.floats(0.5, 10.0),
        floor_frac=st.floats(0.01, 0.5),
        target_frac=st.floats(0.55, 0.95),
        nominal=st.floats(2.0, 500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_solve_alpha_property(self, init, floor_frac, target_frac, nominal):
        floor = init * floor_frac
        target = floor + (init - floor) * (1 - target_frac)
        p = CurveParams.solve_alpha(init, floor, target, nominal)
        assert p.epochs_to(target) == pytest.approx(nominal, rel=1e-6)


class TestFamilies:
    def test_inverse_power_law_at_zero(self):
        assert inverse_power_law(0.0, 0.1, 0.9, 0.5) == pytest.approx(1.0)

    def test_exponential_at_zero(self):
        assert exponential_decay(0.0, 0.1, 0.9, 0.3) == pytest.approx(1.0)

    def test_hyperbolic_decreasing(self):
        e = np.arange(0, 50, dtype=float)
        y = hyperbolic(e, 0.1, 1.0, 0.05)
        assert np.all(np.diff(y) < 0)


class TestSampler:
    def _params(self):
        return CurveParams(init_loss=2.3, floor_loss=0.1, alpha=0.8)

    def test_deterministic_per_seed(self):
        a = LossCurveSampler(self._params(), seed=1).trajectory(20)
        b = LossCurveSampler(self._params(), seed=1).trajectory(20)
        np.testing.assert_array_equal(a, b)

    def test_distinct_run_labels(self):
        a = LossCurveSampler(self._params(), seed=1, run_label=0).trajectory(20)
        b = LossCurveSampler(self._params(), seed=1, run_label=1).trajectory(20)
        assert not np.array_equal(a, b)

    def test_losses_above_floor(self):
        traj = LossCurveSampler(self._params(), seed=2).trajectory(200)
        assert np.all(traj > 0.1)

    def test_overall_decreasing_trend(self):
        traj = LossCurveSampler(self._params(), seed=3).trajectory(100)
        assert traj[:10].mean() > traj[-10:].mean()

    def test_epochs_to_target_positive(self):
        s = LossCurveSampler(self._params(), seed=4)
        assert s.epochs_to_target(0.3) >= 1

    def test_anchor_target_controls_epochs(self):
        params = self._params()
        target = 0.3
        nominal = params.epochs_to(target)
        epochs = [
            LossCurveSampler(
                params, seed=s, run_label="t", run_sigma=0.1, anchor_target=target
            ).epochs_to_target(target)
            for s in range(10)
        ]
        # Anchored runs stay within a factor ~2 of the nominal horizon.
        assert all(nominal / 3 < e < nominal * 3 for e in epochs)

    def test_run_sigma_zero_matches_nominal(self):
        params = self._params()
        target = 0.3
        s = LossCurveSampler(
            params, seed=0, run_sigma=0.0, noise_sigma=0.0, anchor_target=target
        )
        e = s.epochs_to_target(target)
        assert e == pytest.approx(params.epochs_to(target), abs=2)
