"""Tests for the integrated fine-grained trainer."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.types import Allocation, StorageKind
from repro.ml.models import workload
from repro.ml.trainer import IntegratedTrainer
from repro.storage.catalog import make_service
from repro.storage.faults import FaultInjector, FaultyStorageService, RetryPolicy


def _trainer(storage=StorageKind.VMPS, n=4, seed=0, **kw):
    return IntegratedTrainer(
        workload=workload("lr-higgs"),
        allocation=Allocation(n, 1769, storage),
        seed=seed,
        iterations_per_epoch=10,
        rows_per_worker=200,
        **kw,
    )


class TestIntegratedTrainer:
    def test_rejects_surrogate_models(self):
        with pytest.raises(ValidationError):
            IntegratedTrainer(
                workload=workload("mobilenet-cifar10"),
                allocation=Allocation(4, 2048, StorageKind.S3),
            )

    def test_rejects_infeasible_allocation(self):
        with pytest.raises(Exception):
            IntegratedTrainer(
                workload=workload("bert-imdb"),
                allocation=Allocation(4, 512, StorageKind.S3),
            )

    def test_epoch_report_fields(self):
        t = _trainer()
        r = t.run_epoch()
        assert r.epoch == 1
        assert r.wall_time_s == pytest.approx(r.compute_time_s + r.sync_time_s)
        assert r.storage_requests > 0
        assert r.billed_usd > 0

    def test_loss_decreases_through_storage(self):
        """SGD whose gradients travel the storage plane still learns."""
        t = _trainer(seed=1)
        losses = [t.run_epoch().loss for _ in range(6)]
        assert losses[-1] < losses[0]

    def test_matches_in_memory_training(self):
        """Routing aggregation through storage must not change the math."""
        from repro.ml.sgd import DistributedSGD, SGDConfig

        t = _trainer(seed=3)
        for _ in range(3):
            t.run_epoch()
        reference = DistributedSGD(
            workload("lr-higgs"), 4,
            SGDConfig(batch_size=10_000, learning_rate=0.01, rows_per_worker=200),
            seed=3,
        )
        for _ in range(3):
            reference.run_epoch(iterations=10)
        np.testing.assert_allclose(t.sgd.weights, reference.weights, rtol=1e-10)

    def test_storage_kind_affects_sync_time(self):
        slow = _trainer(StorageKind.S3, seed=0).run_epoch()
        fast = _trainer(StorageKind.VMPS, seed=0).run_epoch()
        assert fast.sync_time_s < slow.sync_time_s

    def test_total_cost_includes_storage(self):
        t = _trainer(StorageKind.VMPS)
        t.run_epoch()
        assert t.total_cost_usd > t.meter.total_usd  # VM-PS minutes billed

    def test_run_to_target_stops(self):
        t = _trainer(seed=2)
        reports = t.run_to_target(max_epochs=4)
        assert 1 <= len(reports) <= 4

    def test_with_faulty_storage(self):
        """Training survives a flaky service; faults only add time."""
        faulty = FaultyStorageService(
            inner=make_service(StorageKind.VMPS),
            injector=FaultInjector(failure_prob=0.15, seed=4),
            retry=RetryPolicy(max_attempts=8),
        )
        t_faulty = _trainer(StorageKind.VMPS, seed=5, service=faulty)
        t_clean = _trainer(StorageKind.VMPS, seed=5)
        r_faulty = t_faulty.run_epoch()
        r_clean = t_clean.run_epoch()
        assert r_faulty.loss == pytest.approx(r_clean.loss)  # same math
        assert r_faulty.sync_time_s > r_clean.sync_time_s  # fault penalty
        assert faulty.retried_requests > 0
