"""Tests for the real distributed SGD engine."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.ml.models import workload
from repro.ml.sgd import DistributedSGD, SGDConfig


def _small_sgd(name="lr-higgs", n_workers=4, seed=0, lr=0.5):
    w = workload(name)
    cfg = SGDConfig(batch_size=256, learning_rate=lr, rows_per_worker=400)
    return DistributedSGD(w, n_workers, cfg, seed=seed)


class TestConstruction:
    def test_rejects_nonlinear_models(self):
        with pytest.raises(ValidationError):
            DistributedSGD(workload("mobilenet-cifar10"), 4)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValidationError):
            DistributedSGD(workload("lr-higgs"), 0)

    def test_weights_start_zero(self):
        sgd = _small_sgd()
        assert np.all(sgd.weights == 0)

    def test_local_batch_split(self):
        sgd = _small_sgd(n_workers=4)
        assert sgd.local_batch == 64


class TestTraining:
    def test_loss_decreases_lr(self):
        sgd = _small_sgd("lr-higgs", lr=0.5)
        first = sgd.run_epoch(iterations=30)
        for _ in range(5):
            last = sgd.run_epoch(iterations=30)
        assert last < first

    def test_loss_decreases_svm(self):
        sgd = _small_sgd("svm-higgs", lr=0.2)
        first = sgd.run_epoch(iterations=30)
        for _ in range(5):
            last = sgd.run_epoch(iterations=30)
        assert last < first

    def test_deterministic(self):
        a = _small_sgd(seed=5)
        b = _small_sgd(seed=5)
        assert a.run_epoch(10) == b.run_epoch(10)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_epoch_counter(self):
        sgd = _small_sgd()
        sgd.run_epoch(5)
        sgd.run_epoch(5)
        assert sgd.epoch == 2
        assert len(sgd.losses) == 2

    def test_full_loss_finite(self):
        sgd = _small_sgd()
        sgd.run_epoch(10)
        assert np.isfinite(sgd.full_loss())

    def test_sync_hook_called_per_iteration(self):
        calls = []
        w = workload("lr-higgs")
        cfg = SGDConfig(batch_size=64, learning_rate=0.1, rows_per_worker=100)
        sgd = DistributedSGD(
            w, 3, cfg, seed=0,
            sync_hook=lambda n_workers, model_mb: calls.append((n_workers, model_mb)),
        )
        sgd.run_epoch(iterations=7)
        assert len(calls) == 7
        assert calls[0][0] == 3

    def test_initial_loss_near_log2_for_lr(self):
        """Zero weights give logistic loss ln(2) on the first batch."""
        sgd = _small_sgd("lr-higgs", lr=1e-9)
        loss = sgd.run_epoch(iterations=1)
        assert loss == pytest.approx(np.log(2), rel=0.01)


class TestReshard:
    def test_weights_carry_over(self):
        sgd = _small_sgd(n_workers=2)
        sgd.run_epoch(20)
        clone = sgd.reshard(6, seed=1)
        np.testing.assert_array_equal(clone.weights, sgd.weights)
        assert clone.n_workers == 6
        assert clone.epoch == sgd.epoch

    def test_training_continues_after_reshard(self):
        sgd = _small_sgd(n_workers=2, lr=0.5)
        before = sgd.run_epoch(30)
        clone = sgd.reshard(4, seed=1)
        for _ in range(5):
            after = clone.run_epoch(30)
        assert after < before

    def test_more_workers_average_more_gradients(self):
        """BSP averaging across more workers lowers gradient variance, so
        the weight trajectories must differ between worker counts."""
        a = _small_sgd(n_workers=1, seed=2)
        b = _small_sgd(n_workers=8, seed=2)
        a.run_epoch(10)
        b.run_epoch(10)
        assert not np.allclose(a.weights, b.weights)
