"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.ml.datasets import CIFAR10, DATASETS, HIGGS, IMDB, YFCC, DatasetSpec, get_dataset


class TestSpecs:
    def test_registry_contains_paper_datasets(self):
        assert set(DATASETS) == {"higgs", "yfcc", "cifar10", "imdb"}

    def test_higgs_shape_matches_paper(self):
        assert HIGGS.n_samples == 11_000_000
        assert HIGGS.n_features == 28

    def test_yfcc_dimensionality(self):
        assert YFCC.n_features == 4096

    def test_cifar_flattened_images(self):
        assert CIFAR10.n_features == 32 * 32 * 3
        assert CIFAR10.n_samples == 60_000

    def test_size_mb_positive_and_ordered(self):
        assert HIGGS.size_mb > CIFAR10.size_mb > IMDB.size_mb > 0

    def test_get_dataset_unknown(self):
        with pytest.raises(ValidationError):
            get_dataset("imagenet")

    def test_scaled_reduces_rows(self):
        small = HIGGS.scaled(0.01)
        assert small.n_samples == 110_000
        assert small.n_features == HIGGS.n_features

    def test_scaled_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            HIGGS.scaled(0.0)
        with pytest.raises(ValidationError):
            HIGGS.scaled(1.5)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValidationError):
            DatasetSpec(name="bad", n_samples=0, n_features=5)


class TestMaterialize:
    def test_shapes(self):
        x, y = HIGGS.materialize(100, seed=0)
        assert x.shape == (100, 28)
        assert y.shape == (100,)

    def test_labels_are_plus_minus_one(self):
        _, y = HIGGS.materialize(500, seed=0)
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_deterministic_in_seed(self):
        x1, y1 = YFCC.materialize(50, seed=3)
        x2, y2 = YFCC.materialize(50, seed=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self):
        x1, _ = YFCC.materialize(50, seed=3)
        x2, _ = YFCC.materialize(50, seed=4)
        assert not np.array_equal(x1, x2)

    def test_problem_is_learnable(self):
        """A linear separator along the generating direction must beat chance."""
        x, y = HIGGS.materialize(4000, seed=1)
        # Fisher-style direction estimate from class means.
        mu_pos = x[y > 0].mean(axis=0)
        mu_neg = x[y < 0].mean(axis=0)
        w = mu_pos - mu_neg
        acc = np.mean(np.sign(x @ w) == y)
        assert acc > 0.6

    def test_rejects_zero_rows(self):
        with pytest.raises(ValidationError):
            HIGGS.materialize(0)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_any_row_count(self, n):
        x, y = CIFAR10.materialize(n, seed=0)
        assert len(x) == len(y) == n
