"""Unit tests for the model zoo / workload registry (Table IV)."""

import pytest

from repro.common.errors import ValidationError
from repro.ml.models import MODELS, WORKLOADS, ModelFamily, workload


class TestProfiles:
    def test_all_families_present(self):
        assert set(MODELS) == set(ModelFamily)

    def test_linear_families(self):
        assert ModelFamily.LR.is_linear
        assert ModelFamily.SVM.is_linear
        assert not ModelFamily.BERT.is_linear

    def test_fixed_model_sizes_match_paper(self):
        assert MODELS[ModelFamily.MOBILENET].fixed_model_mb == 12.0
        assert MODELS[ModelFamily.RESNET50].fixed_model_mb == 89.0
        assert MODELS[ModelFamily.BERT].fixed_model_mb == 340.0

    def test_linear_model_size_scales_with_features(self):
        lr = workload("lr-higgs")
        lr_yfcc = workload("lr-yfcc")
        assert lr_yfcc.model_mb > lr.model_mb
        # 4096 features * 8 bytes = 32 KB
        assert lr_yfcc.model_mb == pytest.approx(4096 * 8 / 2**20)


class TestWorkloads:
    def test_table_iv_rows_exist(self):
        for name in ("lr-higgs", "svm-higgs", "lr-yfcc", "svm-yfcc",
                     "mobilenet-cifar10", "resnet50-cifar10", "bert-imdb"):
            assert name in WORKLOADS

    def test_table_iv_hyperparameters(self):
        w = workload("lr-higgs")
        assert w.batch_size == 10_000
        assert w.learning_rate == 0.01
        assert w.target_loss == 0.66
        b = workload("bert-imdb")
        assert b.batch_size == 32
        assert b.learning_rate == pytest.approx(5e-5)
        assert b.target_loss == 0.6

    def test_unknown_workload(self):
        with pytest.raises(ValidationError):
            workload("vgg-imagenet")

    def test_iterations_per_epoch(self):
        w = workload("lr-higgs")
        # k = D / (n * b_z) = 11e6 / (10 * 10k) = 110
        assert w.iterations_per_epoch(10) == 110

    def test_iterations_at_least_one(self):
        w = workload("bert-imdb")
        assert w.iterations_per_epoch(10_000) == 1

    def test_min_memory_grows_with_model(self):
        assert workload("bert-imdb").min_memory_mb(10) > workload(
            "mobilenet-cifar10"
        ).min_memory_mb(10) > workload("lr-higgs").min_memory_mb(10)

    def test_curve_params_hit_target_at_nominal(self):
        for w in WORKLOADS.values():
            params = w.curve_params()
            assert params.loss_at(w.nominal_epochs) == pytest.approx(
                w.target_loss, rel=1e-6
            )

    def test_scaled_keeps_curve(self):
        w = workload("lr-higgs")
        s = w.scaled(0.1)
        assert s.dataset.n_samples == pytest.approx(w.dataset.n_samples * 0.1, rel=0.01)
        assert s.curve_params().alpha == pytest.approx(w.curve_params().alpha)

    def test_name_format(self):
        assert workload("lr-higgs").name == "lr-higgs"
