"""Ex-post regret: replaying decisions with the observed horizon."""

import dataclasses

import pytest

from repro.common.errors import ConstraintError
from repro.diagnostics import RunObservation, audit_regret
from repro.diagnostics.timeline import EpochObservation
from repro.tuning.plan import Objective


class TestLiveRun:
    def test_initial_decision_audited(self, lr_obs, lr_profile):
        audit = audit_regret(lr_obs, lr_profile.candidates)
        assert audit.decisions_total >= 1
        assert audit.points[0].decided_before_epoch == 1
        assert audit.points[0].remaining_epochs == len(lr_obs.epochs)
        assert audit.objective is Objective.MIN_JCT_GIVEN_BUDGET

    def test_segments_cover_run(self, lr_obs, lr_profile):
        audit = audit_regret(lr_obs, lr_profile.candidates)
        assert sum(p.segment_epochs for p in audit.points) == len(lr_obs.epochs)

    def test_optimal_decision_has_zero_regret(self, lr_obs, lr_profile):
        audit = audit_regret(lr_obs, lr_profile.candidates)
        for p in audit.points:
            if p.optimal:
                assert p.time_regret_s == pytest.approx(0.0)
                assert p.cost_regret_usd == pytest.approx(0.0)


class TestSuboptimalChoice:
    def test_slow_choice_accrues_time_regret(self, lr_obs, lr_profile):
        """Pin every epoch to the slowest Pareto point: under a generous
        budget the hindsight-best is faster, so time regret is positive."""
        candidates = lr_profile.candidates
        slowest = max(candidates, key=lambda p: p.time_s)
        fastest = min(candidates, key=lambda p: p.time_s)
        assert slowest.time_s > fastest.time_s
        epochs = [
            dataclasses.replace(
                e,
                allocation=slowest.allocation,
                alloc_label=slowest.allocation.describe(),
            )
            for e in lr_obs.epochs
        ]
        obs = dataclasses.replace(lr_obs, epochs=epochs, budget_usd=1e9)
        audit = audit_regret(obs, candidates)
        assert audit.decisions_total == 1
        point = audit.points[0]
        assert not point.optimal
        assert point.hindsight_best == fastest.allocation.describe()
        assert audit.total_time_regret_s > 0.0

    def test_off_front_choice_resolved_analytically(self, lr_obs, lr_profile,
                                                    lr_higgs):
        """A chosen θ that is not on the audited front (baseline pick) is
        priced through Eq. (2)/(4) instead of being dropped."""
        front = {p.allocation for p in lr_profile.candidates}
        off_front = next(
            p.allocation
            for p in lr_profile.all_points
            if p.allocation not in front
        )
        epochs = [
            dataclasses.replace(
                e, allocation=off_front, alloc_label=off_front.describe()
            )
            for e in lr_obs.epochs
        ]
        obs = dataclasses.replace(lr_obs, epochs=epochs)
        audit = audit_regret(obs, lr_profile.candidates, workload=lr_higgs)
        assert audit.skipped == 0
        assert audit.points[0].chosen == off_front.describe()


class TestValidation:
    def test_no_objective_raises(self, lr_obs, lr_profile):
        obs = dataclasses.replace(lr_obs, objective=None)
        with pytest.raises(ConstraintError):
            audit_regret(obs, lr_profile.candidates)

    def test_empty_candidates_raise(self, lr_obs):
        with pytest.raises(ConstraintError):
            audit_regret(lr_obs, [])

    def test_reallocation_creates_second_decision(self, lr_profile):
        a = lr_profile.candidates[0]
        b = lr_profile.candidates[-1]
        epochs = []
        for i, point in enumerate([a, a, b, b, b], start=1):
            epochs.append(
                EpochObservation(
                    index=i, alloc_label=point.allocation.describe(),
                    allocation=point.allocation, load_s=0.1,
                    compute_s=point.time_s, sync_s=0.1, cold_start_s=0.0,
                    queue_wait_s=0.0, wall_s=point.time_s + 0.2,
                    cost_usd=point.cost_usd,
                )
            )
        obs = RunObservation(
            epochs=epochs, jct_s=sum(e.wall_s for e in epochs),
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=100.0,
        )
        audit = audit_regret(obs, lr_profile.candidates)
        assert audit.decisions_total == 2
        assert [p.segment_epochs for p in audit.points] == [2, 3]
        assert audit.points[1].remaining_epochs == 3
