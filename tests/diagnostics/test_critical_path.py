"""Critical-path extraction: the decomposition must account for the JCT."""

import pytest

from repro.diagnostics import (
    COMPONENT_ORDER,
    RunObservation,
    analyze_critical_path,
)
from repro.diagnostics.critical_path import RestartOverheadSplit
from repro.diagnostics.timeline import EpochObservation


class TestDecomposition:
    def test_components_sum_to_jct(self, lr_obs):
        """Acceptance: queue+cold+load+compute+sync+scheduling = JCT (±1%)."""
        analysis = analyze_critical_path(lr_obs)
        assert analysis.accounted_s == pytest.approx(lr_obs.jct_s, rel=0.01)
        # The identity is in fact exact for live runs.
        assert analysis.accounted_s == pytest.approx(lr_obs.jct_s, rel=1e-9)

    def test_component_order_and_shares(self, lr_obs):
        analysis = analyze_critical_path(lr_obs)
        assert tuple(c.component for c in analysis.components) == COMPONENT_ORDER
        assert sum(c.share for c in analysis.components) == pytest.approx(
            1.0, rel=1e-9
        )
        for c in analysis.components:
            assert c.seconds >= 0.0

    def test_dominant_component(self, lr_obs):
        analysis = analyze_critical_path(lr_obs)
        assert analysis.dominant.seconds == max(
            c.seconds for c in analysis.components
        )


class TestBottlenecks:
    def test_top_k_sorted_descending(self, lr_obs):
        analysis = analyze_critical_path(lr_obs, top_k=5)
        assert len(analysis.bottlenecks) == 5
        durations = [b.seconds for b in analysis.bottlenecks]
        assert durations == sorted(durations, reverse=True)

    def test_top_k_respected(self, lr_obs):
        assert len(analyze_critical_path(lr_obs, top_k=2).bottlenecks) == 2

    def test_spans_reference_real_epochs(self, lr_obs):
        analysis = analyze_critical_path(lr_obs, top_k=3)
        indices = {e.index for e in lr_obs.epochs}
        for b in analysis.bottlenecks:
            assert b.epoch in indices
            assert b.component in COMPONENT_ORDER


class TestRestartSplit:
    def test_hidden_share(self):
        split = RestartOverheadSplit(hidden_s=3.0, visible_s=1.0)
        assert split.total_s == pytest.approx(4.0)
        assert split.hidden_share == pytest.approx(0.75)

    def test_no_restarts_no_division_by_zero(self):
        assert RestartOverheadSplit(0.0, 0.0).hidden_share == 0.0

    def test_visible_fallback_from_records(self):
        """Without a registry capture, visible overhead comes from the
        restarted epochs' recorded scheduling overhead."""
        epochs = [
            _epoch(1, scheduling=0.0),
            _epoch(2, scheduling=2.5, restarted=True, hidden=1.5),
            _epoch(3, scheduling=0.0),
        ]
        obs = RunObservation(
            epochs=epochs, jct_s=sum(e.wall_s for e in epochs) + 2.5,
            scheduling_overhead_s=2.5, hidden_restart_s=1.5,
            visible_restart_s=None, n_restarts=1,
        )
        analysis = analyze_critical_path(obs)
        assert analysis.restart.visible_s == pytest.approx(2.5)
        assert analysis.restart.hidden_s == pytest.approx(1.5)


def _epoch(index: int, scheduling: float = 0.0, restarted: bool = False,
           hidden: float = 0.0) -> EpochObservation:
    return EpochObservation(
        index=index, alloc_label="4fn/1769MB/s3", allocation=None,
        load_s=1.0, compute_s=5.0, sync_s=2.0, cold_start_s=0.0,
        queue_wait_s=0.0, wall_s=8.0, scheduling_overhead_s=scheduling,
        hidden_restart_overlap_s=hidden, restarted=restarted,
    )
