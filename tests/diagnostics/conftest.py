"""Diagnostics-test fixtures: one shared training run, diagnosed many ways."""

from __future__ import annotations

import pytest

from repro.workflow.runner import run_training
from repro.diagnostics import RunObservation


@pytest.fixture(scope="session")
def lr_run(lr_higgs, lr_profile):
    return run_training(lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile)


@pytest.fixture(scope="session")
def lr_obs(lr_run) -> RunObservation:
    return RunObservation.from_training_run(lr_run)
