"""Model-drift audit: Fig. 19/20 as a reusable check."""

import dataclasses

import pytest

from repro.diagnostics import audit_model_drift


class TestCalibratedRun:
    def test_residuals_within_paper_bands(self, lr_obs):
        """Acceptance: on a calibrated simulator the aggregate residuals sit
        at the paper's Fig. 19/20 validation-error level (single digits)."""
        audit = audit_model_drift(lr_obs)
        assert audit.points
        assert audit.aggregate_time_residual < 0.10
        assert audit.aggregate_cost_residual < 0.10
        assert not audit.drifting
        assert audit.refit_compute_s_per_mb is None

    def test_per_epoch_residuals_positive_and_bounded(self, lr_obs):
        audit = audit_model_drift(lr_obs)
        assert 0.0 < audit.mean_time_residual < 0.5
        assert audit.max_time_residual >= audit.mean_time_residual

    def test_workload_resolved_from_observation(self, lr_obs):
        """The observation's metadata names the workload; no explicit arg."""
        a = audit_model_drift(lr_obs)
        b = audit_model_drift(lr_obs, workload="lr-higgs")
        assert a.aggregate_time_residual == b.aggregate_time_residual


class TestDriftingRun:
    @pytest.fixture(scope="class")
    def drifted_obs(self, lr_obs):
        """An observation whose measured compute is 2x the model's view —
        the situation after a platform slowdown the constants don't know."""
        epochs = [
            dataclasses.replace(
                e,
                compute_s=e.compute_s * 2.0,
                wall_s=e.wall_s + e.compute_s,
            )
            for e in lr_obs.epochs
        ]
        return dataclasses.replace(
            lr_obs, epochs=epochs, jct_s=lr_obs.jct_s + sum(
                e.compute_s for e in lr_obs.epochs
            )
        )

    def test_systematic_drift_flagged(self, drifted_obs):
        audit = audit_model_drift(drifted_obs)
        assert audit.drifting
        assert audit.aggregate_time_residual > 0.15
        assert audit.flagged

    def test_refit_recovers_true_constant(self, drifted_obs, lr_higgs):
        """The recalibration hook must land near the doubled constant."""
        audit = audit_model_drift(drifted_obs)
        configured = lr_higgs.profile.compute_s_per_mb
        assert audit.configured_compute_s_per_mb == pytest.approx(configured)
        assert audit.refit_compute_s_per_mb == pytest.approx(
            2.0 * configured, rel=0.1
        )

    def test_threshold_tunable(self, drifted_obs):
        assert not audit_model_drift(drifted_obs, threshold=10.0).drifting


class TestEdgeCases:
    def test_unknown_workload_raises(self, lr_obs):
        obs = dataclasses.replace(lr_obs, workload_name=None, meta={})
        with pytest.raises(ValueError):
            audit_model_drift(obs)

    def test_unparseable_allocations_skipped(self, lr_obs):
        epochs = [
            dataclasses.replace(e, allocation=None) for e in lr_obs.epochs
        ]
        obs = dataclasses.replace(lr_obs, epochs=epochs)
        audit = audit_model_drift(obs)
        assert audit.points == ()
        assert audit.skipped_epochs == len(lr_obs.epochs)
