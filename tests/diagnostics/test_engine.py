"""Engine-level properties: determinism, capture round-trip, findings."""

import json

import pytest

from repro.diagnostics import DiagnosticsReport, RunObservation, diagnose
from repro.diagnostics.engine import JSON_SCHEMA, SEVERITIES
from repro.telemetry import get_registry, get_tracer
from repro.telemetry.session import TelemetrySession
from repro.workflow.runner import run_training


class TestDeterminism:
    def test_same_seed_byte_identical_json(self, lr_higgs, lr_profile, lr_run):
        """Acceptance: same seed, same report, byte for byte."""
        rerun = run_training(
            lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile
        )
        a = diagnose(RunObservation.from_training_run(lr_run),
                     candidates=lr_profile.candidates)
        b = diagnose(RunObservation.from_training_run(rerun),
                     candidates=lr_profile.candidates)
        assert a.to_json() == b.to_json()

    def test_telemetry_capture_does_not_perturb_simulation(
        self, tmp_path, lr_higgs, lr_profile, lr_run
    ):
        """Acceptance: telemetry on or off, the simulation is identical."""
        with TelemetrySession(
            metrics_path=tmp_path / "t.json", trace_path=tmp_path / "t.trace"
        ):
            observed = run_training(
                lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile
            )
        assert observed.result.jct_s == lr_run.result.jct_s
        assert observed.result.cost_usd == lr_run.result.cost_usd
        assert len(observed.result.epochs) == len(lr_run.result.epochs)

    def test_collectors_restored_after_capture(self, tmp_path, lr_higgs,
                                               lr_profile):
        registry, tracer = get_registry(), get_tracer()
        with TelemetrySession(metrics_path=tmp_path / "t.json"):
            run_training(lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile)
        assert get_registry() is registry
        assert get_tracer() is tracer


class TestCaptureRoundTrip:
    @pytest.fixture(scope="class")
    def capture(self, tmp_path_factory, lr_higgs, lr_profile):
        """Telemetry + trace files written the way `repro train` writes them."""
        out = tmp_path_factory.mktemp("capture")
        with TelemetrySession(
            metrics_path=out / "telemetry.json",
            trace_path=out / "trace.json",
            meta={"command": "train", "workload": lr_higgs.name,
                  "method": "ce-scaling", "seed": 0},
        ) as session:
            run = run_training(
                lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile
            )
            result = run.result
            session.set_run_summary(
                {
                    "jct_s": result.jct_s,
                    "cost_usd": result.cost_usd,
                    "epochs": len(result.epochs),
                    "n_restarts": result.n_restarts,
                    "converged": result.converged,
                    "scheduling_overhead_s": result.scheduling_overhead_s,
                    "objective": run.objective.value,
                    "budget_usd": run.budget_usd,
                    "qos_s": run.qos_s,
                }
            )
        telemetry = json.loads((out / "telemetry.json").read_text())
        trace = json.loads((out / "trace.json").read_text())
        return run, RunObservation.from_capture(telemetry, trace=trace)

    def test_run_context_survives(self, capture):
        run, obs = capture
        assert obs.workload_name == "lr-higgs"
        assert obs.objective is run.objective
        assert obs.budget_usd == run.budget_usd
        assert obs.jct_s == run.result.jct_s
        assert obs.converged == run.result.converged

    def test_timeline_reconstructed_span_by_span(self, capture):
        run, obs = capture
        assert len(obs.epochs) == len(run.result.epochs)
        for rec, e in zip(run.result.epochs, obs.epochs):
            assert e.index == rec.index
            assert e.alloc_label == rec.allocation.describe()
            assert e.compute_s == pytest.approx(rec.time.compute_s, abs=1e-9)
            assert e.sync_s == pytest.approx(rec.time.sync_s, abs=1e-9)
            assert e.wall_s == pytest.approx(rec.wall_s, abs=1e-9)
            assert len(e.worker_durations_s) == len(rec.worker_durations_s)

    def test_capture_diagnosis_matches_live(self, capture, lr_obs, lr_profile):
        """The saved capture must tell the same critical-path story."""
        _, obs = capture
        live = diagnose(lr_obs, candidates=lr_profile.candidates)
        saved = diagnose(obs, candidates=lr_profile.candidates)
        for a, b in zip(live.critical_path.components,
                        saved.critical_path.components):
            assert a.component == b.component
            assert b.seconds == pytest.approx(a.seconds, abs=1e-6)
        assert saved.critical_path.jct_s == pytest.approx(
            live.critical_path.jct_s
        )


class TestReportShape:
    @pytest.fixture(scope="class")
    def report(self, lr_obs, lr_profile) -> DiagnosticsReport:
        return diagnose(lr_obs, candidates=lr_profile.candidates)

    def test_payload_schema(self, report):
        payload = report.to_payload()
        assert payload["schema"] == JSON_SCHEMA
        assert {"meta", "critical_path", "stragglers", "drift", "regret",
                "findings"} <= set(payload)
        assert payload["drift"] is not None
        assert payload["regret"] is not None

    def test_json_is_sorted_and_parseable(self, report):
        text = report.to_json()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def test_findings_ranked_warnings_first(self, report):
        assert report.findings
        severities = [f.severity for f in report.findings]
        assert all(s in SEVERITIES for s in severities)
        order = [SEVERITIES.index(s) for s in reversed(severities)]
        assert order == sorted(order, reverse=True)

    def test_findings_cover_applicable_analyses(self, report):
        kinds = {f.kind for f in report.findings}
        assert "bottleneck" in kinds
        assert "model-drift" in kinds
        assert "regret" in kinds

    def test_render_mentions_every_section(self, report):
        text = report.render()
        for needle in ("critical path", "stragglers", "model drift",
                       "ex-post regret", "findings"):
            assert needle in text

    def test_analyses_degrade_gracefully(self):
        """No workload, no objective: still a report, fewer sections."""
        obs = RunObservation(epochs=[], jct_s=0.0)
        report = diagnose(obs)
        assert report.drift is None
        assert report.regret is None
        assert report.findings == ()
