"""Straggler detection: flag seeded faults, stay quiet on clean runs."""

import pytest

from repro.diagnostics import RunObservation, detect_stragglers
from repro.diagnostics.timeline import EpochObservation
from repro.workflow.runner import run_training


class TestCleanRun:
    def test_no_false_positives(self, lr_obs):
        analysis = detect_stragglers(lr_obs)
        assert analysis.findings == ()
        assert analysis.epochs_checked == len(lr_obs.epochs)
        assert analysis.workers_checked == sum(
            len(e.worker_durations_s) for e in lr_obs.epochs
        )


class TestInjectedStraggler:
    @pytest.fixture(scope="class")
    def faulty_obs(self, lr_higgs, lr_profile):
        run = run_training(
            lr_higgs, budget_usd=2.0, seed=0, profile=lr_profile,
            straggler_factors={3: 4.0},
        )
        return RunObservation.from_training_run(run)

    def test_seeded_rank_flagged(self, faulty_obs):
        """Acceptance: a fault-seeded worker must be detected."""
        analysis = detect_stragglers(faulty_obs)
        assert analysis.findings
        assert analysis.affected_ranks == (3,)

    def test_flagged_in_every_epoch(self, faulty_obs):
        """A persistent 4x slowdown shows up wherever the rank ran."""
        analysis = detect_stragglers(faulty_obs)
        assert len(analysis.findings) == len(faulty_obs.epochs)

    def test_slowdown_magnitude_recovered(self, faulty_obs):
        worst = detect_stragglers(faulty_obs).worst
        assert worst is not None
        # The factor applies to compute only; load dilutes it slightly.
        assert 2.0 < worst.slowdown < 4.5

    def test_straggler_stretches_epoch(self, lr_higgs, lr_profile, faulty_obs,
                                       lr_obs):
        """The BSP barrier means the straggler's overhang is critical-path."""
        assert faulty_obs.jct_s > lr_obs.jct_s


class TestRobustness:
    def test_small_gangs_skipped(self):
        obs = RunObservation(
            epochs=[_epoch(1, (1.0, 9.0))], jct_s=10.0
        )
        analysis = detect_stragglers(obs)
        assert analysis.epochs_checked == 0
        assert analysis.findings == ()

    def test_tight_gang_not_flagged(self):
        """Near-zero MAD must not turn micro-jitter into findings."""
        gang = tuple(1.0 + 1e-9 * r for r in range(8))
        obs = RunObservation(epochs=[_epoch(1, gang)], jct_s=1.0)
        assert detect_stragglers(obs).findings == ()

    def test_outlier_in_synthetic_gang(self):
        gang = (1.0, 1.01, 0.99, 1.02, 0.98, 3.0)
        obs = RunObservation(epochs=[_epoch(1, gang)], jct_s=3.0)
        findings = detect_stragglers(obs).findings
        assert [f.rank for f in findings] == [5]
        assert findings[0].slowdown == pytest.approx(3.0 / 1.005, rel=1e-6)

    def test_z_threshold_tunable(self):
        gang = (1.0, 1.01, 0.99, 1.02, 0.98, 1.5)
        obs = RunObservation(epochs=[_epoch(1, gang)], jct_s=1.5)
        assert detect_stragglers(obs, z=4.0).findings
        assert not detect_stragglers(obs, z=50.0).findings


def _epoch(index: int, workers: tuple[float, ...]) -> EpochObservation:
    return EpochObservation(
        index=index, alloc_label="8fn/1769MB/s3", allocation=None,
        load_s=0.0, compute_s=max(workers), sync_s=0.0, cold_start_s=0.0,
        queue_wait_s=0.0, wall_s=max(workers), worker_durations_s=workers,
    )
