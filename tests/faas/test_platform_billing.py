"""Tests for the FaaS platform simulator and the billing meter."""

import pytest

from repro.common.types import StorageKind
from repro.config import DEFAULT_PLATFORM
from repro.faas.billing import BillingMeter
from repro.faas.noise import NoiseModel
from repro.faas.platform import EpochExecution, FaaSPlatform


def _spec(group="g", n=4, mem=1769, load=1.0, compute=5.0, sync=2.0, prewarmed=False):
    return EpochExecution(
        group=group, n_functions=n, memory_mb=mem,
        load_s=load, compute_s=compute, sync_s=sync, prewarmed=prewarmed,
    )


class TestBillingMeter:
    def test_rounds_up_to_granularity(self):
        meter = BillingMeter()
        bill = meter.bill_invocation(1024, 0.0004)
        assert bill.billed_duration_s == pytest.approx(0.001)

    def test_gb_second_pricing(self):
        meter = BillingMeter()
        bill = meter.bill_invocation(1024, 10.0)
        assert bill.compute_usd == pytest.approx(
            10.0 * DEFAULT_PLATFORM.pricing.usd_per_gb_second
        )

    def test_invocation_fee(self):
        meter = BillingMeter()
        bill = meter.bill_invocation(512, 1.0)
        assert bill.invocation_usd == pytest.approx(0.20 / 1e6)

    def test_totals_accumulate(self):
        meter = BillingMeter()
        meter.bill_invocation(1024, 1.0)
        meter.bill_invocation(1024, 2.0)
        meter.bill_storage(0.5)
        assert meter.invocation_count == 2
        assert meter.total_usd == pytest.approx(
            meter.compute_usd + meter.invocation_usd + 0.5
        )

    def test_negative_storage_ignored(self):
        meter = BillingMeter()
        meter.bill_storage(-1.0)
        assert meter.storage_usd == 0.0

    def test_zero_duration_bills_one_granularity_unit(self):
        """Lambda bills a minimum of one granularity unit per invocation."""
        meter = BillingMeter()
        gran = DEFAULT_PLATFORM.pricing.billing_granularity_s
        bill = meter.bill_invocation(1024, 0.0)
        assert bill.billed_duration_s == pytest.approx(gran)
        assert bill.compute_usd > 0.0

    def test_negative_duration_clamps_to_one_unit(self):
        meter = BillingMeter()
        gran = DEFAULT_PLATFORM.pricing.billing_granularity_s
        bill = meter.bill_invocation(1024, -3.0)
        assert bill.billed_duration_s == pytest.approx(gran)

    def test_rounding_matches_ceil(self):
        import math

        meter = BillingMeter()
        gran = DEFAULT_PLATFORM.pricing.billing_granularity_s
        for duration in (0.0001, 0.0015, 0.01, 0.9999, 1.0, 7.3):
            bill = meter.bill_invocation(512, duration)
            assert bill.billed_duration_s == pytest.approx(
                math.ceil(duration / gran) * gran
            ), duration

    def test_exact_multiple_not_rounded_up(self):
        """A duration landing exactly on a boundary bills that amount."""
        meter = BillingMeter()
        gran = DEFAULT_PLATFORM.pricing.billing_granularity_s
        bill = meter.bill_invocation(1024, 5 * gran)
        assert bill.billed_duration_s == pytest.approx(5 * gran)


class TestNoiseModel:
    def test_deterministic(self):
        a = NoiseModel(1, "x")
        b = NoiseModel(1, "x")
        assert a.compute_factor() == b.compute_factor()
        assert a.network_factor() == b.network_factor()

    def test_factors_positive(self):
        n = NoiseModel(0)
        assert all(n.compute_factor() > 0 for _ in range(50))
        assert all(n.network_factor() > 0 for _ in range(50))

    def test_compute_factors_vector(self):
        n = NoiseModel(0)
        f = n.compute_factors(10)
        assert f.shape == (10,)
        assert (f > 0).all()

    def test_median_near_one(self):
        import numpy as np

        n = NoiseModel(3)
        samples = [n.compute_factor() for _ in range(500)]
        assert abs(np.median(samples) - 1.0) < 0.05


class TestPlatform:
    def test_cold_then_warm(self):
        p = FaaSPlatform(seed=0)
        first = p.execute_epoch(_spec())
        second = p.execute_epoch(_spec())
        assert first.cold_starts == 4
        assert second.cold_starts == 0
        assert first.wall_time_s > second.wall_time_s

    def test_prewarm_skips_cold_start(self):
        p = FaaSPlatform(seed=0)
        p.prewarm("hot", 4)
        res = p.execute_epoch(_spec(group="hot"))
        assert res.cold_starts == 0

    def test_partial_prewarm_partially_cold(self):
        p = FaaSPlatform(seed=0)
        p.prewarm("hot", 2)
        res = p.execute_epoch(_spec(group="hot", n=4))
        assert res.cold_starts == 2

    def test_scale_up_reuses_existing_instances(self):
        """Growing n mid-job only cold-starts the new instances."""
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(n=4))
        res = p.execute_epoch(_spec(n=6))
        assert res.cold_starts == 2

    def test_warm_ttl_expires_instances(self):
        p = FaaSPlatform(seed=0, warm_ttl_s=1.0)
        p.execute_epoch(_spec(n=4, compute=0.1, load=0.0, sync=0.0))
        # Advance simulated time past the TTL with an unrelated group.
        p.execute_epoch(_spec(group="other", n=1, compute=50.0, load=0.0, sync=0.0))
        res = p.execute_epoch(_spec(n=4, compute=0.1, load=0.0, sync=0.0))
        assert res.cold_starts == 4

    def test_retire_makes_group_cold(self):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(group="g"))
        p.retire("g")
        res = p.execute_epoch(_spec(group="g"))
        assert res.cold_starts == 4

    def test_billing_counts_all_functions(self):
        p = FaaSPlatform(seed=0)
        p.execute_epoch(_spec(n=7))
        assert p.meter.invocation_count == 7

    def test_wall_time_close_to_phases(self):
        p = FaaSPlatform(seed=0)
        res = p.execute_epoch(_spec(load=1.0, compute=5.0, sync=2.0, prewarmed=True))
        # Noise is a few percent; barrier adds the max over functions.
        assert res.wall_time_s == pytest.approx(8.0, rel=0.3)

    def test_measured_breakdown_components(self):
        p = FaaSPlatform(seed=1)
        res = p.execute_epoch(_spec(prewarmed=True))
        assert res.time.load_s > 0
        assert res.time.compute_s > 0
        assert res.time.sync_s > 0

    def test_concurrency_gang_over_limit_fails(self):
        """A BSP epoch needs all workers alive at once: demanding more than
        the account limit is infeasible, not queued."""
        from repro.common.errors import SimulationError
        from repro.config import LambdaLimits, PlatformConfig

        tiny = PlatformConfig(limits=LambdaLimits(max_concurrency=2))
        p = FaaSPlatform(platform=tiny, seed=0)
        with pytest.raises(SimulationError):
            p.execute_epoch(_spec(n=4, prewarmed=True))

    def test_concurrent_jobs_share_account(self):
        """Two function groups on one account serialize when their combined
        demand exceeds the concurrency limit."""
        from repro.config import LambdaLimits, PlatformConfig

        tiny = PlatformConfig(limits=LambdaLimits(max_concurrency=4))
        p = FaaSPlatform(platform=tiny, seed=0)
        a = p.execute_epoch(_spec(group="a", n=4, prewarmed=True))
        b = p.execute_epoch(_spec(group="b", n=4, prewarmed=True))
        assert a.queue_wait_s == 0.0
        assert b.queue_wait_s == 0.0  # sequential calls: slots were free again

    def test_deterministic_per_seed(self):
        a = FaaSPlatform(seed=42).execute_epoch(_spec())
        b = FaaSPlatform(seed=42).execute_epoch(_spec())
        assert a.wall_time_s == b.wall_time_s
        assert a.billed_usd == b.billed_usd
