"""Tests for the discrete-event simulation engine."""

import pytest

from repro.common.errors import SimulationError
from repro.faas.events import Acquire, Join, Release, Resource, Simulator


class TestScheduling:
    def test_time_advances(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_order_by_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]

    def test_fifo_tiebreak_at_equal_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]


class TestProcesses:
    def test_sleep_effect(self):
        sim = Simulator()

        def proc():
            yield 2.5
            yield 2.5
            return sim.now

        task = sim.spawn(proc())
        sim.run()
        assert task.done
        assert task.result == pytest.approx(5.0)

    def test_subprocess_composition(self):
        sim = Simulator()

        def child():
            yield 3.0
            return "child-done"

        def parent():
            result = yield child()
            yield 1.0
            return result

        task = sim.spawn(parent())
        sim.run()
        assert task.result == "child-done"
        assert sim.now == pytest.approx(4.0)

    def test_join_barrier(self):
        sim = Simulator()

        def worker(d):
            yield d
            return d

        tasks = [sim.spawn(worker(d)) for d in (1.0, 5.0, 3.0)]

        def barrier():
            results = yield Join.of(tasks)
            return (sim.now, results)

        b = sim.spawn(barrier())
        sim.run()
        at, results = b.result
        assert at == pytest.approx(5.0)  # waits for the slowest
        assert sorted(results) == [1.0, 3.0, 5.0]

    def test_join_on_completed_tasks(self):
        sim = Simulator()

        def quick():
            yield 0.1
            return 42

        t = sim.spawn(quick())
        sim.run()

        def joiner():
            res = yield Join.of([t])
            return res

        j = sim.spawn(joiner())
        sim.run()
        assert j.result == [42]

    def test_unsupported_effect_raises(self):
        sim = Simulator()

        def bad():
            yield "not-an-effect"

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestResources:
    def test_acquire_release(self):
        sim = Simulator()
        res = Resource(1, "slot")
        order = []

        def worker(name, hold):
            yield Acquire(res)
            order.append((name, sim.now))
            yield hold
            yield Release(res)

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 2.0))
        sim.run()
        assert order[0][0] == "a"
        assert order[1] == ("b", pytest.approx(2.0))  # queued behind a

    def test_concurrent_within_capacity(self):
        sim = Simulator()
        res = Resource(2, "slots")
        starts = []

        def worker():
            yield Acquire(res)
            starts.append(sim.now)
            yield 1.0
            yield Release(res)

        for _ in range(2):
            sim.spawn(worker())
        sim.run()
        assert starts == [0.0, 0.0]

    def test_peak_usage_tracked(self):
        sim = Simulator()
        res = Resource(4, "slots")

        def worker():
            yield Acquire(res)
            yield 1.0
            yield Release(res)

        for _ in range(3):
            sim.spawn(worker())
        sim.run()
        assert res.peak_in_use == 3
        assert res.available == 4

    def test_over_capacity_acquire_raises(self):
        sim = Simulator()
        res = Resource(1, "slot")

        def greedy():
            yield Acquire(res, amount=5)

        sim.spawn(greedy())
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(0)

    def test_fifo_fairness(self):
        sim = Simulator()
        res = Resource(1, "slot")
        order = []

        def worker(name):
            yield Acquire(res)
            order.append(name)
            yield 1.0
            yield Release(res)

        for name in ("w0", "w1", "w2", "w3"):
            sim.spawn(worker(name))
        sim.run()
        assert order == ["w0", "w1", "w2", "w3"]
