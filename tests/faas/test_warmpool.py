"""Unit tests for the warm-instance pool."""

import pytest

from repro.common.errors import ValidationError
from repro.faas.function import WarmPool


class TestWarmPool:
    def test_all_cold_initially(self):
        pool = WarmPool()
        warm, cold = pool.acquire("g", 3, now=0.0)
        assert (warm, cold) == (0, 3)

    def test_release_then_reuse(self):
        pool = WarmPool()
        pool.acquire("g", 3, now=0.0)
        pool.release("g", 3, now=1.0)
        warm, cold = pool.acquire("g", 3, now=2.0)
        assert (warm, cold) == (3, 0)
        assert pool.warm_reuses == 3

    def test_partial_reuse_on_scale_up(self):
        pool = WarmPool()
        pool.release("g", 2, now=0.0)
        warm, cold = pool.acquire("g", 5, now=1.0)
        assert (warm, cold) == (2, 3)

    def test_groups_isolated(self):
        pool = WarmPool()
        pool.release("a", 4, now=0.0)
        warm, cold = pool.acquire("b", 2, now=1.0)
        assert (warm, cold) == (0, 2)

    def test_ttl_expiry(self):
        pool = WarmPool(ttl_s=10.0)
        pool.release("g", 2, now=0.0)
        assert pool.warm_count("g", now=5.0) == 2
        assert pool.warm_count("g", now=11.0) == 0
        assert pool.expired == 2

    def test_prewarm(self):
        pool = WarmPool()
        pool.prewarm("g", 4, now=0.0)
        warm, cold = pool.acquire("g", 4, now=1.0)
        assert (warm, cold) == (4, 0)

    def test_retire(self):
        pool = WarmPool()
        pool.release("g", 3, now=0.0)
        assert pool.retire("g") == 3
        assert pool.warm_count("g", now=0.0) == 0
        assert pool.retire("g") == 0  # idempotent

    def test_total_warm(self):
        pool = WarmPool()
        pool.release("a", 2, now=0.0)
        pool.release("b", 3, now=0.0)
        assert pool.total_warm(now=1.0) == 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            WarmPool(ttl_s=0)
        with pytest.raises(ValidationError):
            WarmPool().acquire("g", 0, now=0.0)
        with pytest.raises(ValidationError):
            WarmPool().release("g", 0, now=0.0)

    def test_cold_start_counter(self):
        pool = WarmPool()
        pool.acquire("g", 4, now=0.0)
        pool.release("g", 4, now=1.0)
        pool.acquire("g", 6, now=2.0)
        assert pool.cold_starts == 6  # 4 + 2
        assert pool.warm_reuses == 4
