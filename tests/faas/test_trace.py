"""Tests for the execution-trace recorder."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.faas.trace import TraceRecorder, trace_epochs


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.0, "t1")
        rec.record("b", "sync", 1.0, 0.5, "t1")
        assert len(rec.spans()) == 2
        assert len(rec.spans("sync")) == 1

    def test_spans_sorted_by_start(self):
        rec = TraceRecorder()
        rec.record("late", "c", 5.0, 1.0, "t")
        rec.record("early", "c", 1.0, 1.0, "t")
        assert [e.name for e in rec.spans()] == ["early", "late"]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            TraceRecorder().record("x", "c", 0.0, -1.0, "t")

    def test_total_time_and_summary(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 2.0, "t")
        rec.record("b", "compute", 2.0, 3.0, "t")
        rec.record("c", "sync", 5.0, 1.0, "t")
        assert rec.total_time("compute") == pytest.approx(5.0)
        assert rec.summary() == {"compute": 5.0, "sync": 1.0}

    def test_chrome_trace_valid_json(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.5, "group:x", epoch=1)
        payload = json.loads(rec.to_chrome_trace())
        events = payload["traceEvents"]
        named = [e for e in events if e.get("ph") == "X"]
        assert named[0]["dur"] == pytest.approx(1.5e6)
        assert any(e.get("ph") == "M" for e in events)  # track names


class TestTraceEpochs:
    def test_training_run_traced(self, mobilenet, mobilenet_profile):
        from repro.tuning.plan import Objective
        from repro.workflow.job import training_envelope
        from repro.workflow.runner import run_training

        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        result = run_training(
            mobilenet, budget_usd=budget, seed=0, max_epochs=6,
            profile=mobilenet_profile,
        ).result
        rec = TraceRecorder()
        end = trace_epochs(rec, result.epochs)
        assert end > 0
        assert rec.total_time("sync") == pytest.approx(
            result.comm_overhead_s, rel=1e-9
        )
        # One load+compute+sync triple per epoch.
        assert len(rec.spans("compute")) == len(result.epochs)
        json.loads(rec.to_chrome_trace())  # exports cleanly
