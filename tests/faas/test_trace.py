"""Tests for the execution-trace recorder."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.faas.trace import TraceRecorder, trace_epochs


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.0, "t1")
        rec.record("b", "sync", 1.0, 0.5, "t1")
        assert len(rec.spans()) == 2
        assert len(rec.spans("sync")) == 1

    def test_spans_sorted_by_start(self):
        rec = TraceRecorder()
        rec.record("late", "c", 5.0, 1.0, "t")
        rec.record("early", "c", 1.0, 1.0, "t")
        assert [e.name for e in rec.spans()] == ["early", "late"]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            TraceRecorder().record("x", "c", 0.0, -1.0, "t")

    def test_total_time_and_summary(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 2.0, "t")
        rec.record("b", "compute", 2.0, 3.0, "t")
        rec.record("c", "sync", 5.0, 1.0, "t")
        assert rec.total_time("compute") == pytest.approx(5.0)
        assert rec.summary() == {"compute": 5.0, "sync": 1.0}

    def test_chrome_trace_valid_json(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.5, "group:x", epoch=1)
        payload = json.loads(rec.to_chrome_trace())
        events = payload["traceEvents"]
        named = [e for e in events if e.get("ph") == "X"]
        assert named[0]["dur"] == pytest.approx(1.5e6)
        assert any(e.get("ph") == "M" for e in events)  # track names


class TestChromeTraceExport:
    def _recorder(self):
        rec = TraceRecorder()
        rec.record("load", "load", 0.0, 1.0, "group:b", epoch=1)
        rec.record("compute", "compute", 1.0, 4.0, "group:a", epoch=1)
        rec.record("restart", "scheduling", 5.0, 0.5, "scheduler")
        return rec

    def test_round_trips_through_json(self):
        rec = self._recorder()
        payload = json.loads(rec.to_chrome_trace())
        again = json.loads(rec.to_chrome_trace())
        assert payload == again
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [(e["name"], e["ts"], e["dur"]) for e in spans] == [
            ("load", 0.0, 1.0e6),
            ("compute", 1.0e6, 4.0e6),
            ("restart", 5.0e6, 0.5e6),
        ]
        assert spans[0]["args"] == {"epoch": 1}

    def test_track_tid_mapping_deterministic(self):
        """tids follow the sorted track names, independent of record order."""
        payload = json.loads(self._recorder().to_chrome_trace())
        meta = {
            e["args"]["name"]: e["tid"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {"group:a": 1, "group:b": 2, "scheduler": 3}

    def test_meta_thread_names_cover_every_track(self):
        rec = self._recorder()
        payload = json.loads(rec.to_chrome_trace())
        events = payload["traceEvents"]
        named_tids = {e["tid"] for e in events if e["ph"] == "M"}
        span_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert span_tids <= named_tids
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {e.track for e in rec.events}


class TestTraceEpochs:
    def test_training_run_traced(self, mobilenet, mobilenet_profile):
        from repro.tuning.plan import Objective
        from repro.workflow.job import training_envelope
        from repro.workflow.runner import run_training

        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        result = run_training(
            mobilenet, budget_usd=budget, seed=0, max_epochs=6,
            profile=mobilenet_profile,
        ).result
        rec = TraceRecorder()
        end = trace_epochs(rec, result.epochs)
        assert end > 0
        assert rec.total_time("sync") == pytest.approx(
            result.comm_overhead_s, rel=1e-9
        )
        # One load+compute+sync triple per epoch.
        assert len(rec.spans("compute")) == len(result.epochs)
        json.loads(rec.to_chrome_trace())  # exports cleanly

    def test_restart_overlap_recorded_over_running_epoch(self):
        """The delayed-restart prewarm window (Fig. 8) overlaps the epoch it
        ran under — it must end exactly where that epoch ends, before any
        visible restart span."""
        from repro.common.types import (
            Allocation,
            EpochCostBreakdown,
            EpochRecord,
            EpochTimeBreakdown,
            StorageKind,
        )

        alloc = Allocation(
            n_functions=4, memory_mb=1769, storage=StorageKind.VMPS
        )
        cost = EpochCostBreakdown(0.0, 0.0, 0.0)
        epochs = [
            EpochRecord(
                index=1, allocation=alloc, cost=cost, loss=1.0,
                time=EpochTimeBreakdown(load_s=1.0, compute_s=8.0, sync_s=1.0),
                scheduling_overhead_s=2.0, restarted=True,
                hidden_restart_overlap_s=3.0,
            ),
            EpochRecord(
                index=2, allocation=alloc, cost=cost, loss=0.5,
                time=EpochTimeBreakdown(load_s=1.0, compute_s=8.0, sync_s=1.0),
            ),
        ]
        rec = TraceRecorder()
        trace_epochs(rec, epochs)
        (overlap,) = [e for e in rec.spans() if e.name == "restart-overlap"]
        (restart,) = [e for e in rec.spans() if e.name == "restart"]
        # Epoch 1 spans [0, 10): the 3 s prewarm hides under its tail.
        assert overlap.start_s == pytest.approx(7.0)
        assert overlap.duration_s == pytest.approx(3.0)
        assert overlap.args["hidden"] is True
        # The visible overhead sits after the epoch, on the critical path.
        assert restart.start_s == pytest.approx(10.0)
        assert restart.duration_s == pytest.approx(2.0)

    def test_restart_overlap_clamped_to_epoch_length(self):
        from repro.common.types import (
            Allocation,
            EpochCostBreakdown,
            EpochRecord,
            EpochTimeBreakdown,
            StorageKind,
        )

        alloc = Allocation(
            n_functions=2, memory_mb=1769, storage=StorageKind.S3
        )
        epochs = [
            EpochRecord(
                index=1, allocation=alloc,
                cost=EpochCostBreakdown(0.0, 0.0, 0.0), loss=1.0,
                time=EpochTimeBreakdown(load_s=0.5, compute_s=1.0, sync_s=0.5),
                hidden_restart_overlap_s=99.0,  # longer than the epoch
            ),
        ]
        rec = TraceRecorder()
        trace_epochs(rec, epochs)
        (overlap,) = [e for e in rec.spans() if e.name == "restart-overlap"]
        assert overlap.start_s == pytest.approx(0.0)
        assert overlap.duration_s == pytest.approx(2.0)
