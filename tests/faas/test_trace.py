"""Tests for the execution-trace recorder."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.faas.trace import TraceRecorder, trace_epochs


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.0, "t1")
        rec.record("b", "sync", 1.0, 0.5, "t1")
        assert len(rec.spans()) == 2
        assert len(rec.spans("sync")) == 1

    def test_spans_sorted_by_start(self):
        rec = TraceRecorder()
        rec.record("late", "c", 5.0, 1.0, "t")
        rec.record("early", "c", 1.0, 1.0, "t")
        assert [e.name for e in rec.spans()] == ["early", "late"]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            TraceRecorder().record("x", "c", 0.0, -1.0, "t")

    def test_total_time_and_summary(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 2.0, "t")
        rec.record("b", "compute", 2.0, 3.0, "t")
        rec.record("c", "sync", 5.0, 1.0, "t")
        assert rec.total_time("compute") == pytest.approx(5.0)
        assert rec.summary() == {"compute": 5.0, "sync": 1.0}

    def test_chrome_trace_valid_json(self):
        rec = TraceRecorder()
        rec.record("a", "compute", 0.0, 1.5, "group:x", epoch=1)
        payload = json.loads(rec.to_chrome_trace())
        events = payload["traceEvents"]
        named = [e for e in events if e.get("ph") == "X"]
        assert named[0]["dur"] == pytest.approx(1.5e6)
        assert any(e.get("ph") == "M" for e in events)  # track names


class TestChromeTraceExport:
    def _recorder(self):
        rec = TraceRecorder()
        rec.record("load", "load", 0.0, 1.0, "group:b", epoch=1)
        rec.record("compute", "compute", 1.0, 4.0, "group:a", epoch=1)
        rec.record("restart", "scheduling", 5.0, 0.5, "scheduler")
        return rec

    def test_round_trips_through_json(self):
        rec = self._recorder()
        payload = json.loads(rec.to_chrome_trace())
        again = json.loads(rec.to_chrome_trace())
        assert payload == again
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [(e["name"], e["ts"], e["dur"]) for e in spans] == [
            ("load", 0.0, 1.0e6),
            ("compute", 1.0e6, 4.0e6),
            ("restart", 5.0e6, 0.5e6),
        ]
        assert spans[0]["args"] == {"epoch": 1}

    def test_track_tid_mapping_deterministic(self):
        """tids follow the sorted track names, independent of record order."""
        payload = json.loads(self._recorder().to_chrome_trace())
        meta = {
            e["args"]["name"]: e["tid"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {"group:a": 1, "group:b": 2, "scheduler": 3}

    def test_meta_thread_names_cover_every_track(self):
        rec = self._recorder()
        payload = json.loads(rec.to_chrome_trace())
        events = payload["traceEvents"]
        named_tids = {e["tid"] for e in events if e["ph"] == "M"}
        span_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert span_tids <= named_tids
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {e.track for e in rec.events}


class TestDeterministicOrdering:
    def test_equal_starts_tie_broken_by_track(self):
        rec = TraceRecorder()
        rec.record("on-b", "c", 1.0, 1.0, "track-b")
        rec.record("on-a", "c", 1.0, 1.0, "track-a")
        rec.record("first", "c", 0.0, 1.0, "track-z")
        assert [e.name for e in rec.spans()] == ["first", "on-a", "on-b"]

    def test_same_start_same_track_keeps_insertion_order(self):
        """The (start, track) sort is stable: zero-duration markers recorded
        back-to-back must not swap between exports."""
        rec = TraceRecorder()
        for name in ("one", "two", "three"):
            rec.record(name, "c", 2.0, 0.0, "track")
        assert [e.name for e in rec.spans()] == ["one", "two", "three"]
        spans = [
            e
            for e in json.loads(rec.to_chrome_trace())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert [e["name"] for e in spans] == ["one", "two", "three"]

    def test_export_independent_of_record_order(self):
        """Two recorders fed the same spans in different orders export the
        identical Chrome trace document."""
        spans = [
            ("load", "load", 0.0, 1.0, "group:a"),
            ("compute", "compute", 1.0, 4.0, "group:a"),
            ("restart", "scheduling", 5.0, 0.5, "scheduler"),
        ]
        fwd, rev = TraceRecorder(), TraceRecorder()
        for s in spans:
            fwd.record(*s)
        for s in reversed(spans):
            rev.record(*s)
        assert fwd.to_chrome_trace() == rev.to_chrome_trace()

    def test_null_tracer_empty_trace_cached(self):
        from repro.telemetry.spans import NullTracer

        a, b = NullTracer(), NullTracer()
        assert a.to_chrome_trace() is b.to_chrome_trace()
        assert json.loads(a.to_chrome_trace()) == {"traceEvents": []}


class TestWorkerSpanRoundTrip:
    def test_worker_durations_survive_chrome_export(self):
        """Per-worker spans written by the platform round-trip through the
        Chrome JSON: parsed back, they match the InvocationResult exactly."""
        from repro.config import DEFAULT_PLATFORM
        from repro.diagnostics.timeline import _chrome_spans
        from repro.faas.platform import EpochExecution, FaaSPlatform
        from repro.telemetry import get_tracer, set_tracer
        from repro.telemetry.spans import Tracer

        prev = get_tracer()
        set_tracer(Tracer())
        try:
            platform = FaaSPlatform(platform=DEFAULT_PLATFORM, seed=0)
            result = platform.execute_epoch(
                EpochExecution(
                    group="8fn/1769MB/s3#g0", n_functions=8, memory_mb=1769,
                    load_s=1.0, compute_s=5.0, sync_s=0.5,
                )
            )
            trace = json.loads(platform.tracer.to_chrome_trace())
        finally:
            set_tracer(prev)
        workers = [s for s in _chrome_spans(trace) if s["cat"] == "worker"]
        workers.sort(key=lambda s: int(s["args"]["rank"]))
        assert [int(s["args"]["rank"]) for s in workers] == list(range(8))
        for span, duration in zip(workers, result.worker_durations_s):
            assert span["duration_s"] == pytest.approx(duration, abs=1e-9)
        # The first epoch of a fresh group is all cold starts.
        assert all(s["args"]["cold"] for s in workers)


class TestTraceEpochs:
    def test_training_run_traced(self, mobilenet, mobilenet_profile):
        from repro.workflow.job import training_envelope
        from repro.workflow.runner import run_training

        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        result = run_training(
            mobilenet, budget_usd=budget, seed=0, max_epochs=6,
            profile=mobilenet_profile,
        ).result
        rec = TraceRecorder()
        end = trace_epochs(rec, result.epochs)
        assert end > 0
        assert rec.total_time("sync") == pytest.approx(
            result.comm_overhead_s, rel=1e-9
        )
        # One load+compute+sync triple per epoch.
        assert len(rec.spans("compute")) == len(result.epochs)
        json.loads(rec.to_chrome_trace())  # exports cleanly

    def test_restart_overlap_recorded_over_running_epoch(self):
        """The delayed-restart prewarm window (Fig. 8) overlaps the epoch it
        ran under — it must end exactly where that epoch ends, before any
        visible restart span."""
        from repro.common.types import (
            Allocation,
            EpochCostBreakdown,
            EpochRecord,
            EpochTimeBreakdown,
            StorageKind,
        )

        alloc = Allocation(
            n_functions=4, memory_mb=1769, storage=StorageKind.VMPS
        )
        cost = EpochCostBreakdown(0.0, 0.0, 0.0)
        epochs = [
            EpochRecord(
                index=1, allocation=alloc, cost=cost, loss=1.0,
                time=EpochTimeBreakdown(load_s=1.0, compute_s=8.0, sync_s=1.0),
                scheduling_overhead_s=2.0, restarted=True,
                hidden_restart_overlap_s=3.0,
            ),
            EpochRecord(
                index=2, allocation=alloc, cost=cost, loss=0.5,
                time=EpochTimeBreakdown(load_s=1.0, compute_s=8.0, sync_s=1.0),
            ),
        ]
        rec = TraceRecorder()
        trace_epochs(rec, epochs)
        (overlap,) = [e for e in rec.spans() if e.name == "restart-overlap"]
        (restart,) = [e for e in rec.spans() if e.name == "restart"]
        # Epoch 1 spans [0, 10): the 3 s prewarm hides under its tail.
        assert overlap.start_s == pytest.approx(7.0)
        assert overlap.duration_s == pytest.approx(3.0)
        assert overlap.args["hidden"] is True
        # The visible overhead sits after the epoch, on the critical path.
        assert restart.start_s == pytest.approx(10.0)
        assert restart.duration_s == pytest.approx(2.0)

    def test_restart_overlap_clamped_to_epoch_length(self):
        from repro.common.types import (
            Allocation,
            EpochCostBreakdown,
            EpochRecord,
            EpochTimeBreakdown,
            StorageKind,
        )

        alloc = Allocation(
            n_functions=2, memory_mb=1769, storage=StorageKind.S3
        )
        epochs = [
            EpochRecord(
                index=1, allocation=alloc,
                cost=EpochCostBreakdown(0.0, 0.0, 0.0), loss=1.0,
                time=EpochTimeBreakdown(load_s=0.5, compute_s=1.0, sync_s=0.5),
                hidden_restart_overlap_s=99.0,  # longer than the epoch
            ),
        ]
        rec = TraceRecorder()
        trace_epochs(rec, epochs)
        (overlap,) = [e for e in rec.spans() if e.name == "restart-overlap"]
        assert overlap.start_s == pytest.approx(0.0)
        assert overlap.duration_s == pytest.approx(2.0)
