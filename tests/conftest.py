"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analytical.profiler import ParetoProfiler, ProfileResult
from repro.ml.models import Workload, workload


@pytest.fixture(scope="session")
def lr_higgs() -> Workload:
    return workload("lr-higgs")


@pytest.fixture(scope="session")
def mobilenet() -> Workload:
    return workload("mobilenet-cifar10")


@pytest.fixture(scope="session")
def bert() -> Workload:
    return workload("bert-imdb")


@pytest.fixture(scope="session")
def lr_profile(lr_higgs) -> ProfileResult:
    return ParetoProfiler().profile(lr_higgs)


@pytest.fixture(scope="session")
def mobilenet_profile(mobilenet) -> ProfileResult:
    return ParetoProfiler().profile(mobilenet)
