"""Baseline ledger: round-trip, budgets, discovery, and failure modes."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, find_baseline
from repro.common.errors import BaselineError


def _finding(rule="REP005", path="repro/a.py", line=3, snippet="except Exception:"):
    return Finding(
        rule=rule, severity="warning", path=path, line=line, col=0,
        message="m", snippet=snippet,
    )


class TestBaselineApply:
    def test_matching_finding_is_baselined(self):
        base = Baseline.from_findings([_finding()])
        new, accepted = base.apply([_finding(line=99)])  # line moved: still matches
        assert new == []
        assert len(accepted) == 1
        assert accepted[0].baselined

    def test_budget_is_per_occurrence(self):
        base = Baseline.from_findings([_finding()])  # count == 1
        new, accepted = base.apply([_finding(line=3), _finding(line=7)])
        assert len(accepted) == 1
        assert len(new) == 1

    def test_different_rule_or_snippet_is_new(self):
        base = Baseline.from_findings([_finding()])
        new, accepted = base.apply([_finding(snippet="except BaseException:")])
        assert accepted == []
        assert len(new) == 1


class TestBaselineRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        base = Baseline.from_findings([_finding(), _finding()], reason="why")
        path = tmp_path / "lint-baseline.json"
        base.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [
            BaselineEntry(
                rule="REP005", path="repro/a.py",
                snippet="except Exception:", count=2, reason="why",
            )
        ]

    def test_serialization_is_deterministic(self, tmp_path):
        a = Baseline.from_findings([_finding(rule="REP002"), _finding()])
        b = Baseline.from_findings([_finding(), _finding(rule="REP002")])
        assert a.to_json() == b.to_json()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": "other/v1", "entries": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_load_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"schema": "repro-baseline/v1", "entries": [{"rule": "R"}]})
        )
        with pytest.raises(BaselineError):
            Baseline.load(path)


class TestBaselineDiscovery:
    def test_walks_up_to_nearest_baseline(self, tmp_path):
        (tmp_path / "lint-baseline.json").write_text(Baseline.empty().to_json())
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert find_baseline(nested) == tmp_path / "lint-baseline.json"

    def test_explicit_path_must_exist(self, tmp_path):
        with pytest.raises(BaselineError):
            find_baseline(tmp_path, explicit=str(tmp_path / "missing.json"))

    def test_no_baseline_found_returns_none(self, tmp_path):
        assert find_baseline(tmp_path) is None
