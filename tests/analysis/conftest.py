"""Shared helpers for the static-analysis test suite."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, all_rules

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="session")
def analyzer() -> Analyzer:
    return Analyzer(all_rules())
