"""Meta-test: the repository passes its own lint.

This is the same gate CI runs — every determinism/simulation-safety rule
over ``src/repro``, judged against the committed baseline. A new finding
here means a reproducibility hazard entered the tree (fix it) or a
deliberate exception was added without a baseline entry (add one, with a
reason).
"""

import json

from repro.analysis import Analyzer, Baseline, all_rules, to_json

from tests.analysis.conftest import REPO_ROOT, SRC_REPRO


class TestSelfLint:
    def test_repo_lints_clean_against_committed_baseline(self):
        result = Analyzer(all_rules()).analyze_paths([SRC_REPRO])
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        new, _ = baseline.apply(result.findings)
        details = "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in new
        )
        assert new == [], f"new lint findings:\n{details}"
        assert result.parse_errors == 0

    def test_every_committed_baseline_entry_still_matches(self):
        """Stale entries hide future regressions; prune them when fixed."""
        result = Analyzer(all_rules()).analyze_paths([SRC_REPRO])
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        _, accepted = baseline.apply(result.findings)
        assert len(accepted) == sum(e.count for e in baseline.entries)

    def test_self_lint_json_is_deterministic(self):
        def run() -> str:
            analyzer = Analyzer(all_rules())
            result = analyzer.analyze_paths([SRC_REPRO])
            baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
            new, accepted = baseline.apply(result.findings)
            return to_json(result, all_rules(), new, accepted)

        first, second = run(), run()
        assert first == second
        doc = json.loads(first)
        assert doc["schema"] == "repro-lint/v1"
        assert doc["summary"]["new"] == 0

    def test_fixture_suite_exercises_every_rule(self, analyzer):
        from tests.analysis.conftest import FIXTURES

        result = analyzer.analyze_paths([FIXTURES])
        triggered = {f.rule for f in result.findings}
        expected = {r.rule_id for r in all_rules()}
        assert triggered == expected
        assert len(expected) >= 6
