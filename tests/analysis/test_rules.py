"""Golden-fixture and scope tests for every rule in the catalogue."""

from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_source, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture subdir, minimum findings expected in bad.py)
GOLDEN = {
    "REP001": ("rep001", 5),
    "REP002": ("rep002", 3),
    "REP003": ("rep003", 2),
    "REP004": ("rep004", 3),
    "REP005": ("rep005", 2),
    "REP006": ("rep006", 2),
    "REP007": ("rep007", 3),
    "REP008": ("rep008", 4),
    "REP014": ("rep014", 4),
}


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_bad_fixture_triggers_only_its_rule(self, analyzer, rule_id):
        subdir, minimum = GOLDEN[rule_id]
        result = analyzer.analyze_paths([FIXTURES / subdir])
        bad = [f for f in result.findings if f.path.endswith("bad.py")]
        assert len(bad) >= minimum
        assert {f.rule for f in bad} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_good_fixture_is_clean(self, analyzer, rule_id):
        subdir, _ = GOLDEN[rule_id]
        result = analyzer.analyze_paths([FIXTURES / subdir])
        assert [f for f in result.findings if not f.path.endswith("bad.py")] == []

    def test_catalogue_covers_at_least_six_rules(self):
        assert len({r.rule_id for r in all_rules()}) >= 6

    def test_findings_carry_catalogue_severity(self, analyzer):
        by_id = rules_by_id()
        result = analyzer.analyze_paths([FIXTURES])
        assert result.findings
        for f in result.findings:
            assert f.severity == by_id[f.rule].severity


class TestRuleScoping:
    """Path-scoped rules fire only inside their packages."""

    def test_rng_module_is_exempt_from_rep001(self):
        src = "import numpy as np\nx = np.random.rand()\n"
        rule = [rules_by_id()["REP001"]]
        assert analyze_source(src, rule, relpath="repro/common/rng.py") == []
        assert analyze_source(src, rule, relpath="repro/faas/worker.py") != []

    def test_wall_clock_allowed_outside_simulated_packages(self):
        src = "import time\nstart = time.perf_counter()\n"
        rule = [rules_by_id()["REP002"]]
        assert analyze_source(src, rule, relpath="repro/telemetry/timer.py") == []
        assert analyze_source(src, rule, relpath="repro/faas/clock.py") != []

    def test_benchmarks_exempt_from_wall_clock(self, analyzer):
        result = analyzer.analyze_paths([FIXTURES / "rep002"])
        assert not any("exempt.py" in f.path for f in result.findings)

    def test_event_loop_rule_scoped_to_faas(self):
        src = "import heapq\n\ndef push(h, t, a):\n    heapq.heappush(h, (t, a))\n"
        rule = [rules_by_id()["REP003"]]
        assert analyze_source(src, rule, relpath="repro/tuning/queue.py") == []
        assert analyze_source(src, rule, relpath="repro/faas/events.py") != []


class TestRuleDetails:
    def test_bare_except_always_flagged(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert analyze_source(src, [rules_by_id()["REP005"]]) != []

    def test_broad_except_with_reraise_allowed(self):
        src = "try:\n    pass\nexcept Exception:\n    raise\n"
        assert analyze_source(src, [rules_by_id()["REP005"]]) == []

    def test_import_aliases_resolved(self):
        src = "import numpy.random as nr\nx = nr.rand()\n"
        assert analyze_source(src, [rules_by_id()["REP001"]]) != []

    def test_seeded_numpy_generator_allowed(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.normal()\n"
        )
        assert analyze_source(src, [rules_by_id()["REP001"]]) == []

    def test_unit_ratio_suffixes_compose(self):
        rule = [rules_by_id()["REP004"]]
        clean = "def f(a_mb_s: float, b_mb_s: float) -> float:\n    return a_mb_s + b_mb_s\n"
        mixed = "def f(a_mb_s: float, b_s: float) -> float:\n    return a_mb_s + b_s\n"
        assert analyze_source(clean, rule) == []
        assert analyze_source(mixed, rule) != []

    def test_sorted_set_iteration_allowed(self):
        src = "s = {1, 2}\nout = [x for x in sorted(s)]\n"
        assert analyze_source(src, [rules_by_id()["REP007"]]) == []

    def test_set_membership_allowed(self):
        src = "s = {1, 2}\nok = 1 in s\nn = len(s)\n"
        assert analyze_source(src, [rules_by_id()["REP007"]]) == []


class TestSuppression:
    def test_inline_ignore_with_rule_id(self):
        src = "try:\n    pass\nexcept Exception:  # lint: ignore[REP005]\n    pass\n"
        assert analyze_source(src, [rules_by_id()["REP005"]]) == []

    def test_inline_ignore_bare_suppresses_all(self):
        src = "try:\n    pass\nexcept Exception:  # lint: ignore\n    pass\n"
        assert analyze_source(src, [rules_by_id()["REP005"]]) == []

    def test_inline_ignore_wrong_id_does_not_suppress(self):
        src = "try:\n    pass\nexcept Exception:  # lint: ignore[REP001]\n    pass\n"
        assert analyze_source(src, [rules_by_id()["REP005"]]) != []

    def test_skip_file_pragma(self):
        src = "# lint: skip-file\ntry:\n    pass\nexcept:\n    pass\n"
        assert analyze_source(src, all_rules()) == []


class TestParseErrors:
    def test_syntax_error_becomes_rep000(self, analyzer, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        result = analyzer.analyze_paths([broken])
        assert result.parse_errors == 1
        assert [f.rule for f in result.findings] == ["REP000"]
