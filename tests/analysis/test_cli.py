"""End-to-end `repro lint` CLI behaviour."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD_DIR = str(FIXTURES / "rep005")


def lint(*argv: str) -> int:
    return main(["lint", *argv])


class TestExitCodes:
    def test_findings_exit_nonzero(self, capsys):
        assert lint(BAD_DIR, "--no-baseline") == 1

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint(str(tmp_path), "--no-baseline") == 0

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert lint(str(tmp_path / "nope"), "--no-baseline") == 2

    def test_unknown_rule_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            lint(BAD_DIR, "--select", "REP999")


class TestOutputFormats:
    def test_table_lists_findings(self, capsys):
        lint(BAD_DIR, "--no-baseline")
        out = capsys.readouterr().out
        assert "REP005" in out
        assert "bad.py" in out
        assert "new finding(s)" in out

    def test_json_document_shape(self, capsys):
        lint(BAD_DIR, "--no-baseline", "--format", "json")
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint/v1"
        assert doc["tool"]["name"] == "repro-lint"
        assert doc["summary"]["new"] == len(doc["findings"]) > 0
        assert {f["rule"] for f in doc["findings"]} == {"REP005"}

    def test_json_byte_identical_across_runs(self, capsys):
        lint(str(FIXTURES), "--no-baseline", "--format", "json")
        first = capsys.readouterr().out
        lint(str(FIXTURES), "--no-baseline", "--format", "json")
        second = capsys.readouterr().out
        assert first == second

    def test_list_rules(self, capsys):
        assert lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP007"):
            assert rule_id in out


class TestSelection:
    def test_select_restricts_rules(self, capsys):
        lint(str(FIXTURES), "--no-baseline", "--select", "REP001",
             "--format", "json")
        doc = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in doc["findings"]} == {"REP001"}

    def test_ignore_removes_rules(self, capsys):
        lint(str(FIXTURES), "--no-baseline", "--ignore", "REP001",
             "--format", "json")
        doc = json.loads(capsys.readouterr().out)
        assert "REP001" not in {f["rule"] for f in doc["findings"]}


class TestBaselineWorkflow:
    def test_write_then_apply_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "lint-baseline.json"
        assert lint(BAD_DIR, "--write-baseline", "--baseline", str(baseline)) == 0
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == "repro-baseline/v1"
        assert payload["entries"]

        assert lint(BAD_DIR, "--baseline", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
        assert "(baselined)" in out

    def test_no_baseline_flag_reports_everything(self, capsys, tmp_path):
        baseline = tmp_path / "lint-baseline.json"
        assert lint(BAD_DIR, "--write-baseline", "--baseline", str(baseline)) == 0
        capsys.readouterr()
        assert lint(BAD_DIR, "--no-baseline") == 1
