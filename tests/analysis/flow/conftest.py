"""Shared paths for the flow-analysis test suite."""

from pathlib import Path

FLOW_FIXTURES = Path(__file__).parent / "fixtures"


def fixture_tree(rule_dir: str, kind: str) -> Path:
    """The analyzable package root of one golden fixture, e.g.
    ``fixture_tree("rep009", "bad")``."""
    return FLOW_FIXTURES / rule_dir / kind / "pkg"
