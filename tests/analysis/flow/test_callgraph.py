"""Call-graph construction, resolution, and byte-determinism."""

import json

from repro.analysis.flow import (
    CALLGRAPH_SCHEMA,
    build_callgraph,
    build_index,
    callgraph_payload,
    callgraph_to_dot,
    callgraph_to_json,
)

from tests.analysis.conftest import SRC_REPRO
from tests.analysis.flow.conftest import fixture_tree


def _graph(paths):
    index, errors, _, _ = build_index(paths)
    assert errors == []
    return build_callgraph(index)


class TestResolution:
    def test_cross_module_internal_edge(self):
        graph = _graph([fixture_tree("rep009", "bad")])
        edges = {(e.caller, e.callee, e.kind) for e in graph.edges}
        assert (
            "pkg.engine.mix_with_sim_clock",
            "pkg.helper.indirect_wall",
            "internal",
        ) in edges

    def test_external_edge_keeps_dotted_name(self):
        graph = _graph([fixture_tree("rep009", "bad")])
        external = {
            e.callee for e in graph.edges if e.kind == "external"
        }
        assert "time.perf_counter" in external

    def test_self_method_call_resolves_within_class(self):
        graph = _graph([fixture_tree("rep009", "good")])
        edges = {(e.caller, e.callee) for e in graph.edges
                 if e.kind == "internal"}
        assert (
            "pkg.helper.Stopwatch.start",
            "pkg.helper.wall_now",
        ) in edges
        assert (
            "pkg.helper.Stopwatch.elapsed_s",
            "pkg.helper.wall_now",
        ) in edges

    def test_reexport_canonicalizes_through_package_init(self):
        index, _, _, _ = build_index([SRC_REPRO])
        canon = index.canonicalize("repro.profiling.host_clock_s")
        assert canon == "repro.profiling.clock.host_clock_s"

    def test_reachability_closure(self):
        graph = _graph([fixture_tree("rep009", "bad")])
        reachable = graph.reachable_from({"pkg.engine.mix_with_sim_clock"})
        assert "pkg.helper.indirect_wall" in reachable
        assert "pkg.helper.wall_now" in reachable
        assert "pkg.engine.leak_onto_bus" not in reachable


class TestDocument:
    def test_payload_shape_matches_registered_schema(self):
        from repro.analysis import SCHEMA_KEYS

        graph = _graph([fixture_tree("rep010", "good")])
        payload = callgraph_payload(graph)
        assert payload["schema"] == CALLGRAPH_SCHEMA
        assert set(payload) == SCHEMA_KEYS[CALLGRAPH_SCHEMA]

    def test_whole_repo_json_is_byte_identical_across_builds(self):
        first = callgraph_to_json(_graph([SRC_REPRO]))
        second = callgraph_to_json(_graph([SRC_REPRO]))
        assert first == second
        doc = json.loads(first)
        assert doc["summary"]["n_edges"] == len(doc["edges"])
        assert doc["summary"]["n_nodes"] == len(doc["nodes"])
        assert doc["summary"]["n_internal"] + doc["summary"]["n_external"] \
            == doc["summary"]["n_edges"]

    def test_document_contains_no_absolute_paths(self):
        text = callgraph_to_json(_graph([fixture_tree("rep013", "good")]))
        assert str(fixture_tree("rep013", "good").resolve().parent) not in text

    def test_dot_rendering_clusters_by_module(self):
        graph = _graph([fixture_tree("rep009", "bad")])
        dot = callgraph_to_dot(graph)
        assert dot.startswith("digraph callgraph {")
        assert 'label="pkg.helper";' in dot
        assert '"pkg.engine.mix_with_sim_clock" -> "pkg.helper.indirect_wall"' in dot
        # internal_only by default: no external targets in the rendering
        assert "time.perf_counter" not in dot

    def test_edges_are_deduplicated_and_sorted(self):
        graph = _graph([fixture_tree("rep010", "bad")])
        keys = [(e.caller, e.callee, e.line) for e in graph.edges]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
