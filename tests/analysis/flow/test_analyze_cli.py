"""End-to-end `repro analyze` and `repro lint --flow` CLI behaviour."""

import json

import pytest

from repro.cli import main

from tests.analysis.flow.conftest import fixture_tree


def analyze(*argv: str) -> int:
    return main(["analyze", *argv])


def lint(*argv: str) -> int:
    return main(["lint", *argv])


class TestGraph:
    def test_json_document(self, capsys):
        assert analyze("graph", str(fixture_tree("rep009", "bad"))) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-callgraph/v1"
        assert doc["summary"]["n_edges"] > 0

    def test_dot_output(self, capsys):
        assert analyze("graph", str(fixture_tree("rep009", "bad")),
                       "--format", "dot") == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph callgraph {")

    def test_out_writes_file(self, capsys, tmp_path):
        target = tmp_path / "callgraph.json"
        assert analyze("graph", str(fixture_tree("rep010", "good")),
                       "--out", str(target)) == 0
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro-callgraph/v1"

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert analyze("graph", str(tmp_path / "nope")) == 2


class TestTaint:
    def test_findings_exit_nonzero(self, capsys):
        assert analyze("taint", str(fixture_tree("rep009", "bad")),
                       "--no-baseline") == 1
        out = capsys.readouterr().out
        assert "REP009" in out

    def test_clean_tree_exits_zero(self, capsys):
        assert analyze("taint", str(fixture_tree("rep009", "good")),
                       "--no-baseline") == 0

    def test_json_document_shape(self, capsys):
        assert analyze("taint", str(fixture_tree("rep010", "bad")),
                       "--no-baseline", "--format", "json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint/v1"
        assert {f["rule"] for f in doc["findings"]} == {"REP010"}

    def test_shard_rule_not_in_taint_scope(self, capsys):
        assert analyze("taint", str(fixture_tree("rep012", "bad")),
                       "--no-baseline") == 0


class TestShardSafety:
    def test_bad_tree_blocked(self, capsys):
        assert analyze("shard-safety", str(fixture_tree("rep012", "bad")),
                       "--no-baseline") == 1
        out = capsys.readouterr().out
        assert "blocked" in out

    def test_good_tree_ready(self, capsys):
        assert analyze("shard-safety", str(fixture_tree("rep012", "good")),
                       "--no-baseline") == 0
        out = capsys.readouterr().out
        assert "ready" in out
        assert "null_singleton: 1" in out

    def test_json_report(self, capsys):
        assert analyze("shard-safety", str(fixture_tree("rep012", "bad")),
                       "--no-baseline", "--format", "json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-sharding/v1"
        assert doc["verdict"] == "blocked"
        assert "pkg.state.RUN_LOG" in doc["summary"]["blocking"]

    def test_out_writes_report(self, capsys, tmp_path):
        target = tmp_path / "shard.json"
        assert analyze("shard-safety", str(fixture_tree("rep012", "good")),
                       "--no-baseline", "--format", "json",
                       "--out", str(target)) == 0
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["verdict"] == "ready"


class TestLintFlow:
    def test_flow_flag_adds_flow_findings(self, capsys):
        assert lint(str(fixture_tree("rep009", "bad")),
                    "--no-baseline") == 0
        capsys.readouterr()
        assert lint(str(fixture_tree("rep009", "bad")),
                    "--no-baseline", "--flow", "--format", "json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in doc["findings"]} == {"REP009"}

    def test_flow_rules_listed_only_with_flag(self, capsys):
        assert lint("--list-rules") == 0
        assert "REP009" not in capsys.readouterr().out
        assert lint("--flow", "--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in ("REP009", "REP010", "REP011", "REP012", "REP013"):
            assert rule_id in out

    def test_flow_select_requires_flag(self, capsys):
        with pytest.raises(SystemExit):
            lint(str(fixture_tree("rep009", "bad")), "--select", "REP009")

    def test_flow_select_narrows(self, capsys):
        assert lint(str(fixture_tree("rep009", "bad")), "--flow",
                    "--no-baseline", "--select", "REP010") == 0

    def test_json_byte_identical_across_runs(self, capsys):
        args = (str(fixture_tree("rep012", "bad")), "--flow",
                "--no-baseline", "--format", "json")
        lint(*args)
        first = capsys.readouterr().out
        lint(*args)
        second = capsys.readouterr().out
        assert first == second
