"""RNG generators escaping into module globals, both ways."""

from repro.common.rng import stream_for

# Escape 1: a stream bound at module level is shared mutable state.
SHARED_RNG = stream_for(0, "module-shared")

_LAZY_RNG = None


def setup(seed):
    # Escape 2: a generator rebound onto a module global from a function.
    global _LAZY_RNG
    _LAZY_RNG = stream_for(seed, "lazy-shared")
