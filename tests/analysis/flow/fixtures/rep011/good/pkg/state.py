"""Streams created where they are consumed and threaded explicitly."""

from repro.common.rng import stream_for


def run_trial(seed, n):
    rng = stream_for(seed, "trial-local")
    return [draw(rng) for _ in range(n)]


def draw(rng):
    return rng.random()
