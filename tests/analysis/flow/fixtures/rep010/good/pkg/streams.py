"""Distinguishable streams: unique constants or dynamic labels."""

from repro.common.rng import stream_for

STAGE_LABEL = "stage-0"


def pilot_stream(seed):
    return stream_for(seed, "pilot", STAGE_LABEL)


def exec_stream(seed):
    return stream_for(seed, "exec", STAGE_LABEL)


def per_site_stream(seed, site):
    # Dynamic label component: distinguished at run time, exempt here.
    return stream_for(seed, "faults", site)


def another_site_stream(seed, site):
    return stream_for(seed, "faults", site)
