"""The colliding call site: identical constant labels, different consumer."""

from repro.common.rng import stream_for


def shadow_stream(seed):
    # Same ("pilot", "stage-0") tuple as pkg.first.pilot_stream: both
    # consumers would draw the very same stream.
    return stream_for(seed, "pilot", "stage-0")
