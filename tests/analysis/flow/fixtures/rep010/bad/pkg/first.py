"""A label tuple reused verbatim by a second call site."""

from repro.common.rng import stream_for


def pilot_stream(seed):
    return stream_for(seed, "pilot", "stage-0")


def rootlike_stream(seed):
    # No labels at all: indistinguishable from the root seed.
    return stream_for(seed)
