"""Clean simulated-time arithmetic and documents: both domains stay apart."""


def simulated_latency(sim, task):
    # Pure simulated-time arithmetic: no host values anywhere.
    return sim.now - task.submitted_s


def export_document(sim, task):
    doc = {"schema": "repro-events/v1", "meta": {}}
    doc["meta"] = {"finished_s": sim.now, "latency_s": simulated_latency(sim, task)}
    return doc


def publish_completion(sim, bus):
    bus.publish(sim.now)
