"""Legitimate host-clock instrumentation: taint is cut at attribute stores."""

import time


def wall_now():
    return time.perf_counter()


class Stopwatch:
    def __init__(self):
        self.t0_s = 0.0

    def start(self):
        # Attribute stores cut taint: wall-time bookkeeping is fine.
        self.t0_s = wall_now()

    def elapsed_s(self):
        return wall_now() - self.t0_s
