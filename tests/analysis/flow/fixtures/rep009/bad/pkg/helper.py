"""A helper that (transitively) returns a host-clock value."""

import time


def wall_now():
    return time.perf_counter()


def indirect_wall():
    # One hop of indirection: the fixpoint must still see HOST taint.
    return wall_now()
