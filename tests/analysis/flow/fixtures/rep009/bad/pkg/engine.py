"""Host-clock taint reaching all three REP009 sinks."""

from pkg.helper import indirect_wall


def mix_with_sim_clock(sim, task):
    start = indirect_wall()
    # Sink 1: host x sim arithmetic.
    return sim.now - start


def leak_into_document(sim):
    started = indirect_wall()
    doc = {"schema": "repro-events/v1", "meta": {}}
    # Sink 2: host value stored into a versioned-schema document
    # ("meta" is a registered key, so only REP009 fires here).
    doc["meta"] = started
    return doc


def leak_onto_bus(bus):
    stamp = indirect_wall()
    # Sink 3: host value published onto the event bus.
    bus.publish(stamp)
