"""Flow-analysis golden fixture package."""
