"""Simulation code mutating shard-unsafe module state."""

from pkg.state import RUN_LOG

_MEMO = {}


def record(run_id, cost_usd):
    # Cross-module mutation of a bare global: shards would diverge.
    RUN_LOG[run_id] = cost_usd


def lookup(key):
    # A module-level cache filled from a simulation call path.
    if key not in _MEMO:
        _MEMO[key] = expensive(key)
    return _MEMO[key]


def expensive(key):
    return key * 2
