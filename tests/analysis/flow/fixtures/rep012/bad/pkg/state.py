"""A bare mutable module global, mutated from another module."""

RUN_LOG = {}
