"""The registered patterns: null-object singleton and a pure lookup table."""


class NullSink:
    def emit(self, record):
        return None


_NULL_SINK = NullSink()
_sink = _NULL_SINK

#: Built once at import, never mutated: safe to duplicate per shard.
KNOB_TABLE = {"burst": 2.0, "steady": 1.0}


def get_sink():
    return _sink


def set_sink(sink):
    global _sink
    _sink = sink
