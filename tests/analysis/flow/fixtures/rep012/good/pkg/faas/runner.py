"""Simulation code using only registered state access."""

from pkg.state import KNOB_TABLE, get_sink


def record(run_id, cost_usd):
    get_sink().emit((run_id, cost_usd))


def knob(name):
    return KNOB_TABLE[name]
