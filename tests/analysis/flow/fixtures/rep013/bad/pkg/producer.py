"""Schema documents that drift after construction."""


def produce_direct():
    doc = {"schema": "repro-events/v1", "meta": {}}
    # Post-construction key not in the registered key set.
    doc["extra"] = 1
    return doc


def _decorate(doc):
    # The helper adds an unregistered top-level key.
    doc["sneaky"] = 2


def produce_via_helper():
    doc = {"schema": "repro-events/v1", "meta": {}}
    _decorate(doc)
    return doc
