"""Conforming producers: only registered keys, before or after literal."""


def produce_direct():
    doc = {"schema": "repro-events/v1", "meta": {}}
    doc["meta"] = {"n": 3}
    return doc


def _fill_meta(doc):
    doc["meta"] = {"n": 4}


def produce_via_helper():
    doc = {"schema": "repro-events/v1", "meta": {}}
    _fill_meta(doc)
    return doc


def unversioned_dicts_are_free():
    scratch = {"anything": 1}
    scratch["goes"] = 2
    return scratch
