"""Meta-test: the repository passes its own flow analysis.

Mirror of ``tests/analysis/test_self_lint.py`` for the interprocedural
layer: the whole tree must produce zero unbaselined REP009–REP013
findings, the shard-safety report must classify every known
process-global singleton as a registered null-object singleton with a
"ready" verdict, and both exported documents must be byte-stable.
"""

import json

from repro.analysis import Baseline
from repro.analysis.flow import (
    SHARDING_SCHEMA,
    analyze_flow,
    sharding_payload,
    sharding_to_json,
)

from tests.analysis.conftest import REPO_ROOT, SRC_REPRO

#: The process-global singletons the repo registers deliberately; the
#: audit must see every one as the null-object pattern.
KNOWN_SINGLETONS = {
    "repro.profiling._profiler",
    "repro.slo.events._bus",
    "repro.telemetry._registry",
    "repro.telemetry._tracer",
    "repro.timeseries._sampler",
}


class TestSelfFlow:
    def test_repo_flow_is_clean_against_committed_baseline(self):
        result = analyze_flow([SRC_REPRO])
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        new, _ = baseline.apply(result.findings)
        details = "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in new
        )
        assert new == [], f"new flow findings:\n{details}"
        assert result.parse_errors == 0

    def test_singletons_classified_as_null_objects(self):
        result = analyze_flow([SRC_REPRO], select=set())
        by_name = {r.var.qualname: r for r in result.shard_reports}
        for qualname in sorted(KNOWN_SINGLETONS):
            report = by_name[qualname]
            assert report.kind == "null_singleton", qualname
            assert report.setter is not None, qualname

    def test_shard_verdict_is_ready(self):
        result = analyze_flow([SRC_REPRO], select=set())
        payload = sharding_payload(result.index, result.shard_reports)
        assert payload["schema"] == SHARDING_SCHEMA
        assert payload["verdict"] == "ready"
        assert payload["summary"]["blocking"] == []
        assert payload["summary"]["by_kind"]["bare_mutable"] == 0
        assert payload["summary"]["by_kind"]["null_singleton"] == len(
            KNOWN_SINGLETONS
        )

    def test_sharding_document_is_byte_identical_across_builds(self):
        def run() -> str:
            result = analyze_flow([SRC_REPRO], select=set())
            return sharding_to_json(result.index, result.shard_reports)

        first, second = run(), run()
        assert first == second
        doc = json.loads(first)
        assert set(doc) == {"schema", "meta", "globals", "summary", "verdict"}
        assert doc["summary"]["n_globals"] == len(doc["globals"])

    def test_flow_schemas_registered_for_rep006(self):
        from repro.analysis import SCHEMA_KEYS

        assert SCHEMA_KEYS["repro-callgraph/v1"] == frozenset(
            {"schema", "meta", "nodes", "edges", "summary"}
        )
        assert SCHEMA_KEYS["repro-sharding/v1"] == frozenset(
            {"schema", "meta", "globals", "summary", "verdict"}
        )

    def test_flow_analyzer_is_in_rep002_scope(self):
        """The flow package's own documents must never read the host
        clock; REP002's simulated-package scope covers it."""
        from repro.analysis.rules.determinism import _SIM_PACKAGES

        assert "flow" in _SIM_PACKAGES
