"""Golden-fixture tests for the interprocedural rules REP009–REP013."""

import pytest

from repro.analysis import all_rules
from repro.analysis.flow import analyze_flow, flow_rules, flow_rules_by_id

from tests.analysis.flow.conftest import fixture_tree

#: rule id -> (fixture subdir, exact findings expected in the bad tree)
GOLDEN = {
    "REP009": ("rep009", 3),
    "REP010": ("rep010", 3),
    "REP011": ("rep011", 2),
    "REP012": ("rep012", 2),
    "REP013": ("rep013", 2),
}


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_bad_fixture_triggers_only_its_rule(self, rule_id):
        subdir, expected = GOLDEN[rule_id]
        result = analyze_flow([fixture_tree(subdir, "bad")])
        assert len(result.findings) == expected
        assert {f.rule for f in result.findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_good_fixture_is_clean(self, rule_id):
        subdir, _ = GOLDEN[rule_id]
        result = analyze_flow([fixture_tree(subdir, "good")])
        assert result.findings == []

    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_select_narrows_to_one_rule(self, rule_id):
        subdir, expected = GOLDEN[rule_id]
        result = analyze_flow(
            [fixture_tree(subdir, "bad")], select={rule_id}
        )
        assert len(result.findings) == expected
        other = set(GOLDEN) - {rule_id}
        narrowed = analyze_flow([fixture_tree(subdir, "bad")], select=other)
        assert narrowed.findings == []

    def test_findings_carry_catalogue_severity(self):
        by_id = flow_rules_by_id()
        for rule_id, (subdir, _) in sorted(GOLDEN.items()):
            result = analyze_flow([fixture_tree(subdir, "bad")])
            for finding in result.findings:
                assert finding.severity == by_id[finding.rule].severity


class TestCatalogue:
    def test_flow_rule_ids_are_appended_after_per_file_rules(self):
        per_file = {r.rule_id for r in all_rules()}
        flow = {r.rule_id for r in flow_rules()}
        assert flow == {"REP009", "REP010", "REP011", "REP012", "REP013"}
        assert not (per_file & flow)

    def test_flow_rules_have_rationales_and_names(self):
        for rule in flow_rules():
            assert rule.rationale
            assert rule.name
            assert rule.severity in ("error", "warning")

    def test_per_module_check_is_empty(self):
        """Flow rules are project-level: the per-file hook yields nothing,
        so registering them alongside per-file rules is harmless."""
        from repro.analysis.core import build_context
        from tests.analysis.conftest import SRC_REPRO

        path = SRC_REPRO / "cli.py"
        ctx = build_context(path, "repro/cli.py")
        for rule in flow_rules():
            assert list(rule.check(ctx)) == []


class TestSuppression:
    def test_inline_pragma_suppresses_flow_finding(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "mod.py").write_text(
            "from repro.common.rng import stream_for\n"
            "\n"
            "\n"
            "def unlabeled(seed):\n"
            "    return stream_for(seed)  # lint: ignore[REP010]\n",
            encoding="utf-8",
        )
        result = analyze_flow([pkg])
        assert result.findings == []
        assert result.suppressed == 1

    def test_skip_file_excludes_module_from_index(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "mod.py").write_text(
            "# lint: skip-file\n"
            "from repro.common.rng import stream_for\n"
            "\n"
            "RNG = stream_for(0)\n",
            encoding="utf-8",
        )
        result = analyze_flow([pkg])
        assert result.findings == []
