"""REP005 negative fixture: narrow handlers, or broad ones that re-raise."""


def load(path: str) -> str | None:
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:
        return None


def run(fn) -> None:
    try:
        fn()
    except Exception:
        log_failure(fn)
        raise


def log_failure(fn) -> None:
    print(f"failed: {fn!r}")
