"""REP005 positive fixture: broad handlers that swallow everything."""


def load(path: str) -> str | None:
    try:
        with open(path) as fh:
            return fh.read()
    except Exception:
        return None


def run(fn) -> None:
    try:
        fn()
    except BaseException:
        pass
