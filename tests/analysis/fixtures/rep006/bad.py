"""REP006 positive fixture: schema drift and an unregistered document."""


def payload() -> dict:
    return {
        "schema": "repro-telemetry/v1",
        "meta": {},
        "run": {},
        "metrics": [],
        "extra_field": 1,
    }


def unknown() -> dict:
    return {"schema": "repro-mystery/v1", "data": []}
