"""REP006 negative fixture: the document matches its registered key set."""

SCHEMA = "repro-telemetry/v1"


def payload() -> dict:
    return {"schema": SCHEMA, "meta": {}, "run": {}, "metrics": []}
