"""REP001 positive fixture: every statement draws unseeded entropy."""

import os
import random
import uuid

import numpy as np


def jitter() -> float:
    return random.random() + float(np.random.rand())


def run_id() -> str:
    return uuid.uuid4().hex + os.urandom(4).hex()


def bucket(name: str) -> int:
    return hash(name) % 8
