"""REP001 negative fixture: all entropy flows through seeded generators."""

import zlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def jitter(rng: np.random.Generator) -> float:
    return float(rng.random())


def bucket(name: str) -> int:
    return zlib.crc32(name.encode()) % 8
