"""REP008 good fixture: bounded retries that exhaust into an error."""


class RetryExhausted(RuntimeError):
    pass


def call_with_retries(op, max_attempts: int = 4):
    for attempt in range(max_attempts):
        try:
            return op(attempt)
        except OSError:
            continue
    raise RetryExhausted(f"gave up after {max_attempts} attempts")


def bounded_while(op, max_attempts: int = 4):
    attempt = 0
    while attempt < max_attempts:
        if op(attempt):
            return attempt
        attempt += 1
    raise RetryExhausted(f"gave up after {max_attempts} attempts")


def event_loop(queue):
    # A constant-true loop that can escape is fine: this is the engine's
    # drain-until-done idiom, not a retry.
    while True:
        item = queue.pop()
        if item is None:
            break
        item.run()
