"""REP008 bad fixture: unbounded retry loops in a simulated package."""

import itertools


def spin_forever(op):
    # Constant-true while with no escape: can never terminate.
    while True:
        op()


def swallow_and_retry(op):
    while True:
        try:
            return op()
        except OSError:
            continue


def call_with_retries(op):
    # Retry helper looping on a constant-true while.
    while True:
        ok = op()
        if ok:
            break


def retry_request(op):
    # Retry helper iterating itertools.count(): no attempt bound.
    for attempt in itertools.count():
        if op(attempt):
            return attempt
    return -1
