"""REP014 positive fixture: a private event queue next to the kernel."""

import heapq
import queue

PENDING: list = []


def enqueue(when: float, seq: int, action) -> None:
    heapq.heappush(PENDING, (when, seq, action))


def drain() -> list:
    out = []
    while PENDING:
        out.append(heapq.heappop(PENDING))
    return out


def rebuild(entries: list) -> None:
    PENDING[:] = entries
    heapq.heapify(PENDING)


def make_workqueue():
    return queue.PriorityQueue()
