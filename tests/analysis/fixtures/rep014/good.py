"""REP014 negative fixture: scheduling goes through the event kernel."""

from repro.kernel import EventKernel, Priority


def run_round(actions: list) -> float:
    kernel = EventKernel()
    for delay, action in actions:
        kernel.schedule(delay, action, priority=Priority.STORAGE)
    return kernel.run()


def smallest(values: list, n: int) -> list:
    # Selection helpers order data, not events — not an event queue.
    import heapq

    return heapq.nsmallest(n, values)
