"""REP007 positive fixture: raw iteration over sets."""


def export(names: list) -> list:
    seen = set(names)
    return [n.upper() for n in seen]


def merge(a: set, b: set) -> list:
    out = []
    for item in a | b:
        out.append(item)
    return out


def render(tags: list) -> str:
    return ", ".join({t.strip() for t in tags})
