"""REP007 negative fixture: every set is sorted before iteration."""


def export(names: list) -> list:
    seen = set(names)
    return [n.upper() for n in sorted(seen)]


def merge(a: set, b: set) -> list:
    return sorted(a | b)


def render(tags: list) -> str:
    return ", ".join(sorted({t.strip() for t in tags}))


def membership(a: set, b: set) -> bool:
    return bool(a & b)
