"""REP004 positive fixture: unit suffixes mixed across arithmetic."""


def total(duration_s: float, size_mb: float) -> float:
    return duration_s + size_mb


def over_budget(cost_usd: float, limit_s: float) -> bool:
    return cost_usd > limit_s


def billable(size_mb: float, price_usd: float) -> float:
    return gb_seconds(size_mb, price_usd)


def gb_seconds(size_mb: float, duration_s: float) -> float:
    return size_mb / 1024.0 * duration_s
