"""REP004 negative fixture: arithmetic stays inside one unit."""


def total_s(duration_s: float, overhead_s: float) -> float:
    return duration_s + overhead_s


def within_budget(cost_usd: float, limit_usd: float) -> bool:
    return cost_usd <= limit_usd


def billable(size_mb: float, duration_s: float) -> float:
    return gb_seconds(size_mb, duration_s)


def gb_seconds(size_mb: float, duration_s: float) -> float:
    return size_mb / 1024.0 * duration_s
