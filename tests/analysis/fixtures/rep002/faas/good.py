"""REP002 negative fixture: time comes from the event-loop clock."""


def stamp(sim) -> float:
    return sim.now


def elapsed(sim, start_s: float) -> float:
    return sim.now - start_s
