"""REP002 positive fixture: host-clock reads inside a simulated package."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def elapsed(start: float) -> float:
    return time.perf_counter() - start


def label() -> str:
    return datetime.now().isoformat()
