"""REP002 scope fixture: benchmarks legitimately time the host."""

import time


def measure(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
