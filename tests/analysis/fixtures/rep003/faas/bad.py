"""REP003 positive fixture: tie-break-free heap entries and shared mutation."""

import heapq

STATE: dict = {}


def schedule(heap: list, when: float, action) -> None:
    heapq.heappush(heap, (when, action))  # lint: ignore[REP014]


def handler(event):
    yield 1.0
    STATE["last"] = event
