"""REP003 negative fixture: (time, seq, action) entries, local state only."""

import heapq


def schedule(heap: list, when: float, seq: int, action) -> None:
    heapq.heappush(heap, (when, seq, action))  # lint: ignore[REP014]


def handler(event, state: dict):
    yield 1.0
    state["last"] = event
