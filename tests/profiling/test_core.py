"""Frame stacks, aggregation, counter attribution, and the null default."""

import tracemalloc

import pytest

from repro.profiling import (
    NullProfiler,
    Profiler,
    get_profiler,
    profile_phase,
    profiled,
    profiling_enabled,
    set_profiler,
)
from repro.profiling.core import NULL_PHASE, UNATTRIBUTED


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestFrameNesting:
    def test_nested_phases_aggregate_under_full_call_path(self):
        prof = Profiler(clock=FakeClock())
        with prof.phase("a"):
            with prof.phase("b"):
                pass
            with prof.phase("b"):
                pass
        assert set(prof.frames) == {("a",), ("a", "b")}
        assert prof.frames[("a",)].n_calls == 1
        assert prof.frames[("a", "b")].n_calls == 2

    def test_same_name_different_parents_are_distinct_rows(self):
        prof = Profiler(clock=FakeClock())
        with prof.phase("x"):
            with prof.phase("leaf"):
                pass
        with prof.phase("y"):
            with prof.phase("leaf"):
                pass
        assert ("x", "leaf") in prof.frames
        assert ("y", "leaf") in prof.frames

    def test_durations_use_injected_clock(self):
        # Clock reads: t0, enter, exit -> duration exactly one step.
        prof = Profiler(clock=FakeClock(step=2.0))
        with prof.phase("a"):
            pass
        assert prof.frames[("a",)].total_s == pytest.approx(2.0)

    def test_phase_records_even_when_body_raises(self):
        prof = Profiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with prof.phase("a"):
                raise RuntimeError("boom")
        assert prof.frames[("a",)].n_calls == 1
        assert prof._stack == []  # stack unwound

    def test_event_cap_drops_but_keeps_aggregating(self):
        prof = Profiler(clock=FakeClock(), max_events=2)
        for _ in range(5):
            with prof.phase("a"):
                pass
        assert len(prof.events) == 2
        assert prof.dropped_events == 3
        assert prof.frames[("a",)].n_calls == 5


class TestCounterAttribution:
    def test_phase_add_credits_that_frame(self):
        prof = Profiler(clock=FakeClock())
        with prof.phase("a") as ph:
            ph.add("widgets", 3)
            ph.add("widgets")
        assert prof.frames[("a",)].counters == {"widgets": 4.0}

    def test_profiler_add_credits_innermost_open_frame(self):
        prof = Profiler(clock=FakeClock())
        with prof.phase("a"):
            with prof.phase("b"):
                prof.add("n", 7)
        assert prof.frames[("a", "b")].counters == {"n": 7.0}
        assert "n" not in prof.frames[("a",)].counters

    def test_counter_with_no_open_phase_goes_unattributed(self):
        prof = Profiler(clock=FakeClock())
        prof.add("stray", 2)
        assert prof.frames[UNATTRIBUTED].counters == {"stray": 2.0}


class TestGlobalInstall:
    def test_default_is_null_and_hooks_are_noops(self):
        assert isinstance(get_profiler(), NullProfiler)
        assert not profiling_enabled()
        assert profile_phase("anything") is NULL_PHASE
        with profile_phase("anything") as ph:
            ph.add("ignored", 5)  # must not raise, must not record
        assert get_profiler().frames == {}

    def test_set_profiler_none_reinstalls_null(self):
        prof = Profiler(clock=FakeClock())
        set_profiler(prof)
        try:
            assert profiling_enabled()
            with profile_phase("a"):
                pass
            assert ("a",) in prof.frames
        finally:
            set_profiler(None)
        assert not profiling_enabled()
        assert isinstance(get_profiler(), NullProfiler)

    def test_null_profiler_state_is_empty_and_shared_safely(self):
        null = NullProfiler()
        null.add("x", 1)
        null.close()
        assert null.frames == {}
        assert null.events == []
        assert null.phase("p") is NULL_PHASE


class TestProfiledDecorator:
    def test_decorator_records_when_installed(self):
        prof = Profiler(clock=FakeClock())

        @profiled("decorated/fn")
        def fn(x):
            return x + 1

        set_profiler(prof)
        try:
            assert fn(1) == 2
        finally:
            set_profiler(None)
        assert prof.frames[("decorated/fn",)].n_calls == 1

    def test_decorator_bypasses_when_off(self):
        calls = []

        @profiled()
        def fn():
            calls.append(1)
            return "ok"

        assert fn() == "ok"
        assert calls == [1]
        assert fn.__name__ == "fn"  # functools.wraps preserved


class TestMemorySampling:
    def test_peak_bytes_recorded_and_tracemalloc_released(self):
        was_tracing = tracemalloc.is_tracing()
        prof = Profiler(clock=FakeClock(), sample_memory=True)
        try:
            with prof.phase("alloc"):
                _ = [0] * 50_000
            assert prof.frames[("alloc",)].peak_bytes > 0
        finally:
            prof.close()
        assert tracemalloc.is_tracing() == was_tracing
