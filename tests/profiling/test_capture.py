"""The repro-profile/v1 capture: build, serialize, validate, render."""

import pytest

from repro.common.errors import ValidationError
from repro.profiling import (
    Profiler,
    capture_payload,
    load_capture,
    render_capture,
    to_json,
    validate_capture,
)
from repro.profiling.capture import _TOP_KEYS, JSON_SCHEMA

from tests.profiling.test_core import FakeClock


def _sample_profiler() -> Profiler:
    prof = Profiler(clock=FakeClock())
    with prof.phase("outer") as ph:
        ph.add("items", 10)
        with prof.phase("inner"):
            pass
        with prof.phase("inner"):
            pass
    with prof.phase("solo"):
        pass
    return prof


class TestPayload:
    def test_schema_and_totals(self):
        payload = capture_payload(_sample_profiler(), meta={"seed": 0})
        assert payload["schema"] == JSON_SCHEMA
        assert payload["meta"] == {"seed": 0}
        assert payload["totals"]["n_frames"] == 3
        assert payload["totals"]["n_calls"] == 4
        assert payload["totals"]["dropped_events"] == 0
        # wall_s sums only the top-level (depth-1) frames.
        depth1 = [f for f in payload["frames"] if f["depth"] == 1]
        assert payload["totals"]["wall_s"] == pytest.approx(
            sum(f["total_s"] for f in depth1)
        )

    def test_self_time_excludes_children(self):
        # FakeClock: every phase enter/exit pair costs exactly 1s of
        # "time", and the two inner phases run inside outer.
        payload = capture_payload(_sample_profiler())
        by_path = {f["path"]: f for f in payload["frames"]}
        outer = by_path["outer"]
        inner = by_path["outer;inner"]
        assert inner["n_calls"] == 2
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )

    def test_frames_sorted_by_path(self):
        payload = capture_payload(_sample_profiler())
        paths = [f["path"] for f in payload["frames"]]
        assert paths == sorted(paths)

    def test_counters_carried_per_frame(self):
        payload = capture_payload(_sample_profiler())
        by_path = {f["path"]: f for f in payload["frames"]}
        assert by_path["outer"]["counters"] == {"items": 10.0}
        assert by_path["solo"]["counters"] == {}


class TestRoundTrip:
    def test_json_round_trip_is_byte_stable(self):
        payload = capture_payload(_sample_profiler(), meta={"k": "v"})
        text = to_json(payload)
        assert text == to_json(load_capture(text))
        assert text.endswith("\n")

    def test_load_rejects_bad_json(self):
        with pytest.raises(ValidationError):
            load_capture("{not json")

    def test_validate_rejects_wrong_schema(self):
        payload = capture_payload(_sample_profiler())
        payload["schema"] = "repro-profile/v999"
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_validate_rejects_extra_top_level_key(self):
        payload = capture_payload(_sample_profiler())
        payload["surprise"] = 1
        with pytest.raises(ValidationError):
            validate_capture(payload)

    def test_validate_rejects_frame_missing_keys(self):
        payload = capture_payload(_sample_profiler())
        del payload["frames"][0]["self_s"]
        with pytest.raises(ValidationError):
            validate_capture(payload)


class TestSchemaRegistry:
    def test_capture_keys_match_rep006_registry(self):
        """The capture contract and the lint registry must agree."""
        from repro.analysis.rules.schema import SCHEMA_KEYS

        assert SCHEMA_KEYS[JSON_SCHEMA] == _TOP_KEYS

    def test_diff_schema_registered_too(self):
        from repro.analysis.rules.schema import SCHEMA_KEYS
        from repro.profiling import diff_captures
        from repro.profiling.diff import DIFF_SCHEMA

        payload = capture_payload(_sample_profiler())
        report = diff_captures(payload, payload)
        assert set(report) == SCHEMA_KEYS[DIFF_SCHEMA]


class TestRender:
    def test_render_lists_frames_widest_first(self):
        text = render_capture(capture_payload(_sample_profiler()))
        lines = text.splitlines()
        assert "3 frame(s)" in lines[0]
        body = lines[2:]
        assert body[0].startswith("outer")

    def test_top_limits_rows(self):
        text = render_capture(capture_payload(_sample_profiler()), top=1)
        assert len(text.splitlines()) == 3  # header x2 + one frame

    def test_counters_rendered_with_rates(self):
        text = render_capture(capture_payload(_sample_profiler()))
        assert "items=10" in text
