"""The hot paths actually report into the profiler, with full attribution.

These tests drive the real planner / scheduler / storage code under an
installed profiler (the ``profiler`` fixture) and pin the acceptance
criteria: planner wall time is >= 95% attributed to named child frames,
and the per-site ``candidates_evaluated`` counters sum exactly to the
planner's own ``PlannerStats``.
"""

import numpy as np
import pytest

from repro.storage.catalog import make_service
from repro.storage.sync import BSPSynchronizer
from repro.common.types import StorageKind
from repro.telemetry import set_registry
from repro.telemetry.metrics import MetricsRegistry
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, evaluate_plan
from repro.tuning.static_planner import static_plan
from repro.tuning.sha import SHASpec
from repro.workflow.job import training_envelope
from repro.workflow.runner import run_training

PLAN = ("planner/plan",)
COUNTER_SITES = (
    ("planner/plan", "planner/warm_start"),
    ("planner/plan", "planner/recycle_reinvest"),
    ("planner/plan", "planner/spend_remainder"),
)


class TestPlannerAttribution:
    @pytest.fixture
    def planned(self, lr_profile, profiler):
        ladder = sorted(lr_profile.pareto, key=lambda p: p.cost_usd)
        spec = SHASpec(32, 2, 2)
        cheap_ev = evaluate_plan(static_plan(ladder[0], spec), spec)
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            result = GreedyHeuristicPlanner().plan(
                ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=cheap_ev.cost_usd * 1.3,
            )
        finally:
            set_registry(None)
        return result, profiler, registry

    def test_counters_sum_to_planner_stats(self, planned):
        result, profiler, _ = planned
        credited = sum(
            profiler.frames[path].counters.get("candidates_evaluated", 0.0)
            for path in COUNTER_SITES
            if path in profiler.frames
        )
        assert credited == result.stats.candidates_evaluated
        assert credited > 0

    def test_planner_wall_time_mostly_attributed(self, planned):
        """>= 95% of planner/plan inclusive time sits in named children."""
        _, profiler, _ = planned
        plan_total = profiler.frames[PLAN].total_s
        child_total = sum(
            stat.total_s
            for path, stat in profiler.frames.items()
            if len(path) == 2 and path[0] == "planner/plan"
        )
        assert plan_total > 0
        assert child_total / plan_total >= 0.95

    def test_registry_agrees_with_profiler_counters(self, planned):
        result, _, registry = planned
        samples = [
            s
            for m in registry.snapshot()
            if m.name == "repro_planner_candidates_evaluated_total"
            for s in m.samples
        ]
        assert sum(s.value for s in samples) == result.stats.candidates_evaluated


class TestSchedulerFrames:
    def test_training_run_reports_scheduler_frames(
        self, mobilenet, mobilenet_profile, profiler
    ):
        budget = training_envelope(mobilenet, mobilenet_profile).budget(2.5)
        run_training(
            mobilenet, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=3, max_epochs=10, profile=mobilenet_profile,
        )
        paths = {"/".join(p) for p in profiler.frames}
        assert "train/run" in paths
        assert "train/run/scheduler/initial_decision" in paths
        assert "train/run/scheduler/refit" in paths
        assert "train/run/train/execute_epoch" in paths
        init = profiler.frames[("train/run", "scheduler/initial_decision")]
        assert init.counters["candidates_considered"] > 0
        epoch = profiler.frames[("train/run", "train/execute_epoch")]
        assert epoch.counters["functions"] > 0


class TestStorageFrames:
    def test_sync_round_frame_and_transfer_counter(self, profiler):
        sync = BSPSynchronizer(make_service(StorageKind.S3), 4)
        rng = np.random.default_rng(0)
        sync.run_round([rng.standard_normal(16) for _ in range(4)])
        stat = profiler.frames[("storage/sync_round",)]
        assert stat.n_calls == 1
        # Passive storage: N puts + N*(N-1) gets... whatever the model
        # says, the counter must mirror the report exactly.
        merged, report = sync.run_round(
            [rng.standard_normal(16) for _ in range(4)]
        )
        assert (
            profiler.frames[("storage/sync_round",)].counters["transfers"]
            >= report.transfers
        )
