"""Collapsed-stack and Chrome-trace exporters."""

import json

from repro.profiling import Profiler, augment_chrome_trace, capture_payload, to_collapsed
from repro.profiling.flamegraph import PROFILER_PID, profiler_chrome_events

from tests.profiling.test_core import FakeClock


def _profiler() -> Profiler:
    prof = Profiler(clock=FakeClock())
    with prof.phase("b"):
        with prof.phase("leaf"):
            pass
    with prof.phase("a"):
        pass
    return prof


class TestCollapsed:
    def test_lines_sorted_with_microsecond_weights(self):
        text = to_collapsed(capture_payload(_profiler()))
        lines = text.splitlines()
        assert lines == sorted(lines)
        # FakeClock steps 1 s per read: "a" spends 1 s of self time.
        assert "a 1000000" in lines
        # "b" has 1 s of child time inside 3 s inclusive -> 2 s self.
        assert "b 2000000" in lines
        assert "b;leaf 1000000" in lines

    def test_trailing_newline_and_empty_capture(self):
        assert to_collapsed(capture_payload(_profiler())).endswith("\n")
        assert to_collapsed(capture_payload(Profiler(clock=FakeClock()))) == ""

    def test_byte_stable_across_exports(self):
        payload = capture_payload(_profiler())
        assert to_collapsed(payload) == to_collapsed(payload)


class TestChromeEvents:
    def test_spans_and_metadata_on_profiler_pid(self):
        events = profiler_chrome_events(_profiler())
        phases = {e["ph"] for e in events}
        assert phases == {"X", "M"}
        assert all(e["pid"] == PROFILER_PID for e in events)
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["path"] for e in spans} == {"a", "b", "b;leaf"}
        assert all(e["dur"] > 0 for e in spans)

    def test_no_events_yields_empty_list(self):
        assert profiler_chrome_events(Profiler(clock=FakeClock())) == []

    def test_augment_merges_into_existing_trace(self):
        trace = json.dumps(
            {"traceEvents": [{"name": "sim", "ph": "X", "pid": 1}]}
        )
        doc = json.loads(augment_chrome_trace(trace, _profiler()))
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert pids == {1, PROFILER_PID}
        # The original simulation span survives untouched.
        assert doc["traceEvents"][0] == {"name": "sim", "ph": "X", "pid": 1}
