"""The `repro profile` command family and the --profile/--flamegraph flags."""

import json

import pytest

from repro.cli import main
from repro.profiling import load_capture


def _run_capture(tmp_path, name="cap.json", extra=()):
    out = tmp_path / name
    rc = main(
        [
            "profile", "lr-higgs", "--run", "train", "--seed", "0",
            "--out", str(out), *extra,
        ]
    )
    assert rc == 0
    return out


class TestLegacyProfile:
    def test_pareto_table_still_prints(self, capsys):
        assert main(["profile", "lr-higgs"]) == 0
        out = capsys.readouterr().out
        assert "Pareto boundary" in out

    def test_workload_required_without_diff_or_validate(self, capsys):
        assert main(["profile"]) == 2
        assert "workload name is required" in capsys.readouterr().err


class TestProfileRun:
    def test_train_capture_written_and_valid(self, tmp_path, capsys):
        out = _run_capture(tmp_path)
        payload = load_capture(out.read_text())
        paths = {f["path"] for f in payload["frames"]}
        assert "train/run" in paths
        assert "profiler/evaluate_space" in paths
        assert payload["meta"]["workload"] == "lr-higgs"
        table = capsys.readouterr().out
        assert "train/run" in table

    def test_tune_capture_contains_planner_frames(self, tmp_path):
        out = tmp_path / "tune.json"
        rc = main(
            [
                "profile", "lr-higgs", "--run", "tune", "--seed", "0",
                "--trials", "8", "--epochs-per-stage", "1",
                "--out", str(out),
            ]
        )
        assert rc == 0
        paths = {f["path"] for f in load_capture(out.read_text())["frames"]}
        assert "tune/run" in paths
        assert any(p.endswith("planner/plan") for p in paths)

    def test_flamegraph_written(self, tmp_path):
        flame = tmp_path / "flame.txt"
        _run_capture(tmp_path, extra=("--flamegraph", str(flame)))
        lines = flame.read_text().splitlines()
        assert lines
        # "path <int microseconds>" per line
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert path
            int(weight)

    def test_run_without_workload_is_usage_error(self, capsys):
        assert main(["profile", "--run", "train"]) == 2
        assert "needs a workload name" in capsys.readouterr().err


class TestProfileDiff:
    def test_self_diff_is_clean_exit_zero(self, tmp_path, capsys):
        cap = _run_capture(tmp_path)
        capsys.readouterr()
        assert main(["profile", "--diff", str(cap), str(cap)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        cap = _run_capture(tmp_path)
        doctored = json.loads(cap.read_text())
        for frame in doctored["frames"]:
            if frame["path"] == "train/run":
                frame["total_s"] *= 10
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doctored))
        capsys.readouterr()
        rc = main(["profile", "--diff", str(cap), str(slow)])
        assert rc == 1
        assert "regressed" in capsys.readouterr().out

    def test_diff_json_format_and_out_file(self, tmp_path, capsys):
        cap = _run_capture(tmp_path)
        report_path = tmp_path / "report.json"
        capsys.readouterr()
        rc = main(
            [
                "profile", "--diff", str(cap), str(cap),
                "--format", "json", "--out", str(report_path),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert printed == report_path.read_text()
        report = json.loads(printed)
        assert report["schema"] == "repro-profile-diff/v1"

    def test_missing_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["profile", "--diff", missing, missing]) == 2


class TestProfileValidate:
    def test_good_capture_validates(self, tmp_path, capsys):
        cap = _run_capture(tmp_path)
        capsys.readouterr()
        assert main(["profile", "--validate", str(cap)]) == 0
        assert "valid repro-profile/v1" in capsys.readouterr().out

    def test_corrupt_capture_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["profile", "--validate", str(bad)]) == 2

    def test_key_drift_exits_two(self, tmp_path, capsys):
        cap = _run_capture(tmp_path)
        payload = json.loads(cap.read_text())
        payload["extra"] = 1
        cap.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["profile", "--validate", str(cap)]) == 2
        assert "repro-profile/v1" in capsys.readouterr().err


class TestInlineProfileFlags:
    """--profile/--flamegraph ride along on train/tune/workflow."""

    def test_train_writes_capture_and_flamegraph(self, tmp_path, capsys):
        cap = tmp_path / "train.json"
        flame = tmp_path / "train.flame"
        rc = main(
            [
                "train", "lr-higgs", "--budget-multiple", "2.5",
                "--profile", str(cap), "--flamegraph", str(flame),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile :" in out
        payload = load_capture(cap.read_text())
        assert any(f["path"] == "train/run" for f in payload["frames"])
        assert flame.read_text().splitlines()

    def test_trace_gets_profiler_process(self, tmp_path):
        cap = tmp_path / "train.json"
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "train", "lr-higgs", "--budget-multiple", "2.5",
                "--trace", str(trace), "--profile", str(cap),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert {1, 2} <= pids

    def test_profiler_uninstalled_without_flag(self, capsys):
        from repro.profiling import profiling_enabled

        rc = main(["train", "lr-higgs", "--budget-multiple", "2.5"])
        assert rc == 0
        assert not profiling_enabled()
