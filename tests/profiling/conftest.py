"""Fixtures for the profiling suite: a scoped real profiler."""

from __future__ import annotations

import pytest

from repro.profiling import Profiler, get_profiler, set_profiler


@pytest.fixture
def profiler():
    """A real Profiler installed globally for one test, then restored."""
    prev = get_profiler()
    prof = Profiler()
    set_profiler(prof)
    yield prof
    set_profiler(prev)
    prof.close()
