"""Capture-to-capture diffing: statuses, determinism, regression gate."""

import copy

from repro.profiling import (
    Profiler,
    capture_payload,
    diff_captures,
    diff_to_json,
    has_regressions,
    render_diff,
)

from tests.profiling.test_core import FakeClock


def _capture(extra_phase: str | None = None) -> dict:
    prof = Profiler(clock=FakeClock())
    with prof.phase("planner") as ph:
        ph.add("candidates", 100)
        with prof.phase("warm_start"):
            pass
    if extra_phase:
        with prof.phase(extra_phase):
            pass
    return capture_payload(prof, meta={"workload": "lr-higgs"})


def _scale(payload: dict, path: str, factor: float) -> dict:
    doctored = copy.deepcopy(payload)
    for frame in doctored["frames"]:
        if frame["path"] == path:
            frame["total_s"] *= factor
    return doctored


class TestStatuses:
    def test_self_diff_is_all_unchanged(self):
        report = diff_captures(_capture(), _capture())
        assert {f["status"] for f in report["frames"]} == {"unchanged"}
        assert not has_regressions(report)
        assert report["summary"]["delta_wall_s"] == 0.0

    def test_slower_target_regresses(self):
        base = _capture()
        report = diff_captures(base, _scale(base, "planner", 2.0))
        by_path = {f["path"]: f for f in report["frames"]}
        assert by_path["planner"]["status"] == "regressed"
        assert by_path["planner"]["ratio"] == 2.0
        assert has_regressions(report)

    def test_faster_target_improves(self):
        base = _capture()
        report = diff_captures(base, _scale(base, "planner", 0.5))
        by_path = {f["path"]: f for f in report["frames"]}
        assert by_path["planner"]["status"] == "improved"
        assert not has_regressions(report)

    def test_added_and_removed_frames(self):
        report = diff_captures(_capture(), _capture(extra_phase="new_pass"))
        by_path = {f["path"]: f for f in report["frames"]}
        assert by_path["new_pass"]["status"] == "added"
        assert report["summary"]["n_added"] == 1
        reverse = diff_captures(_capture(extra_phase="new_pass"), _capture())
        assert reverse["summary"]["n_removed"] == 1
        assert not has_regressions(report)

    def test_min_s_filters_timer_noise(self):
        base = _capture()
        # A 10x blowup on a sub-threshold frame must not count.
        tiny = copy.deepcopy(base)
        for frame in tiny["frames"]:
            frame["total_s"] = 1e-5
        report = diff_captures(tiny, _scale(tiny, "planner", 10.0))
        assert not has_regressions(report)

    def test_threshold_is_respected(self):
        base = _capture()
        target = _scale(base, "planner", 1.3)
        assert has_regressions(diff_captures(base, target, threshold=1.2))
        assert not has_regressions(diff_captures(base, target, threshold=1.5))


class TestCounters:
    def test_counter_deltas_per_frame(self):
        base = _capture()
        target = copy.deepcopy(base)
        for frame in target["frames"]:
            if frame["path"] == "planner":
                frame["counters"]["candidates"] = 140.0
        report = diff_captures(base, target)
        by_path = {f["path"]: f for f in report["frames"]}
        assert by_path["planner"]["counters"]["candidates"] == {
            "base": 100.0,
            "target": 140.0,
            "delta": 40.0,
        }


class TestDeterminism:
    def test_json_byte_identical_across_calls(self):
        base, target = _capture(), _capture(extra_phase="new_pass")
        assert diff_to_json(diff_captures(base, target)) == diff_to_json(
            diff_captures(base, target)
        )

    def test_frame_order_in_report_ignores_input_order(self):
        base, target = _capture(), _capture()
        shuffled = copy.deepcopy(base)
        shuffled["frames"].reverse()
        assert diff_to_json(diff_captures(base, target)) == diff_to_json(
            diff_captures(shuffled, target)
        )


class TestRender:
    def test_regressions_marked(self):
        base = _capture()
        text = render_diff(diff_captures(base, _scale(base, "planner", 2.0)))
        assert "1 regressed" in text
        assert any(
            line.startswith("!") and "planner" in line
            for line in text.splitlines()
        )

    def test_self_diff_render_mentions_zero_regressions(self):
        text = render_diff(diff_captures(_capture(), _capture()))
        assert "0 regressed" in text
