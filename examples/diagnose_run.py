"""Diagnostics walkthrough: from a finished run to ranked findings.

Runs one CE-scaling training job twice — once clean, once with a seeded
4x straggler on worker rank 3 — and diagnoses both:

* critical-path decomposition (where the JCT actually went),
* straggler detection (the seeded fault must be flagged),
* model-drift audit (measured epochs vs the Eq. (2)/(4) predictions),
* ex-post regret (were the allocation decisions hindsight-optimal?).

Run:  python examples/diagnose_run.py
"""

from repro import Objective, RunObservation, diagnose, workload
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def main() -> None:
    w = workload("lr-higgs")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)

    # --- a clean run: expect quiet diagnostics ---------------------------
    run = run_training(
        w,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=0,
        profile=profile,
    )
    obs = RunObservation.from_training_run(run)
    report = diagnose(obs, candidates=profile.candidates)
    print(report.render())

    # --- the same job with a seeded fault: rank 3 computes at 4x ---------
    faulty = run_training(
        w,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=0,
        profile=profile,
        straggler_factors={3: 4.0},
    )
    faulty_obs = RunObservation.from_training_run(faulty)
    faulty_report = diagnose(faulty_obs, candidates=profile.candidates)

    print("\n--- with a seeded 4x straggler on rank 3 ---\n")
    stretch = faulty_obs.jct_s - obs.jct_s
    print(
        f"JCT {obs.jct_s:.2f} s -> {faulty_obs.jct_s:.2f} s "
        f"(+{stretch:.2f} s: the BSP barrier waits for the laggard)"
    )
    for finding in faulty_report.findings:
        print(f"  [{finding.severity}] {finding.kind}: {finding.message}")

    flagged = faulty_report.stragglers.affected_ranks
    print(f"\nstraggler ranks flagged: {flagged}")
    worst = faulty_report.stragglers.worst
    if worst is not None:
        print(
            f"worst observation: epoch {worst.epoch}, rank {worst.rank}, "
            f"{worst.slowdown:.2f}x the gang median ({worst.deviation_sigma:.0f}σ)"
        )
    print("\nsame analysis from a saved capture: "
          "python -m repro diagnose out.json --trace out.trace.json")


if __name__ == "__main__":
    main()
