"""Quickstart: profile a workload and train it with CE-scaling under a budget.

Run:  python examples/quickstart.py
"""

from repro import Objective, run_training, workload
from repro.common.units import format_duration, format_usd
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload


def main() -> None:
    # 1. Pick a workload from the paper's Table IV.
    w = workload("mobilenet-cifar10")
    print(f"workload: {w.name}  model={w.model_mb:.1f} MB  "
          f"dataset={w.dataset_mb:.0f} MB  target loss={w.target_loss}")

    # 2. Profile the allocation space: the Pareto profiler evaluates the
    #    analytical time/cost models (Eq. 2-5) over (n, memory, storage)
    #    and keeps only the Pareto-optimal points.
    profile = profile_workload(w)
    print(f"\nprofiled {len(profile.all_points)} feasible allocations "
          f"-> {len(profile.pareto)} on the Pareto boundary "
          f"({profile.profile_time_s * 1e3:.1f} ms)")
    fastest, cheapest = profile.fastest(), profile.cheapest()
    print(f"  fastest : {fastest.allocation.describe():24s} "
          f"{format_duration(fastest.time_s)}/epoch  "
          f"{format_usd(fastest.cost_usd)}/epoch")
    print(f"  cheapest: {cheapest.allocation.describe():24s} "
          f"{format_duration(cheapest.time_s)}/epoch  "
          f"{format_usd(cheapest.cost_usd)}/epoch")

    # 3. Derive a budget (2.5x the cheapest possible spend) and train with
    #    CE-scaling: offline warm start, online loss-curve refitting, and
    #    allocation switches hidden by delayed restart.
    budget = training_envelope(w, profile).budget(2.5)
    print(f"\nbudget: {format_usd(budget)}")
    run = run_training(
        w,
        method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        seed=0,
        profile=profile,
    )
    r = run.result
    print(f"\nCE-scaling result:")
    print(f"  converged : {r.converged} (final loss {r.final_loss:.3f})")
    print(f"  JCT       : {format_duration(r.jct_s)}")
    print(f"  cost      : {format_usd(r.cost_usd)} (within budget: "
          f"{r.cost_usd <= budget})")
    print(f"  epochs    : {len(r.epochs)}, restarts: {r.n_restarts}, "
          f"scheduling overhead: {format_duration(r.scheduling_overhead_s)}")
    print(f"  comm time : {format_duration(r.comm_overhead_s)}  "
          f"storage cost: {format_usd(r.storage_cost_usd)}")


if __name__ == "__main__":
    main()
