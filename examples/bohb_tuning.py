"""BOHB over HyperBand brackets, partitioned by CE-scaling's planner.

The paper (§II-A) argues its resource partitioning applies to any
early-stopping tuner. This example runs BOHB — HyperBand brackets with a
TPE model proposing configurations — where every bracket's stages are
partitioned by the greedy heuristic planner.

Run:  python examples/bohb_tuning.py
"""

from repro import workload
from repro.common.units import format_duration, format_usd
from repro.tuning.bohb import BOHBRunner
from repro.tuning.hyperband import HyperBandSpec
from repro.workflow.runner import profile_workload


def main() -> None:
    w = workload("mobilenet-cifar10")
    spec = HyperBandSpec(max_epochs_per_trial=16, reduction_factor=2)
    print(f"HyperBand: R={spec.max_epochs_per_trial}, eta={spec.reduction_factor}, "
          f"{len(spec.brackets())} brackets, "
          f"{spec.total_trial_epochs()} trial-epochs total")
    for b in spec.brackets():
        print(f"  bracket s={b.bracket_index}: {b.n_trials} trials, "
              f"{b.n_stages} stages, epochs/stage "
              f"{[b.epochs_in_stage(i) for i in range(b.n_stages)]}")

    profile = profile_workload(w)
    runner = BOHBRunner(
        workload=w, spec=spec, candidates=profile.pareto,
        budget_usd=50.0, seed=0,
    )
    result = runner.run()
    print(f"\nBOHB finished: JCT {format_duration(result.jct_s)}, "
          f"cost {format_usd(result.cost_usd)}")
    best = result.best_trial
    print(f"best config: lr={best.learning_rate:.2e} "
          f"momentum={best.momentum:.2f} (latent quality {best.quality:.2f})")
    print("\nper-bracket outcomes:")
    for b, r in zip(spec.brackets(), result.bracket_results):
        print(f"  s={b.bracket_index}: JCT {format_duration(r.jct_s)} "
              f"cost {format_usd(r.cost_usd)} "
              f"winner quality {r.winner.quality:.2f}")


if __name__ == "__main__":
    main()
