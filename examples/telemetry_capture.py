"""Observability walkthrough: metrics, live traces, and the run report.

Wraps one CE-scaling training job in a :class:`TelemetrySession`, then
shows the three export surfaces the telemetry layer offers:

* the breakdown report (`repro report` renders the same thing),
* Prometheus text exposition (scrape-format metrics),
* a Chrome trace-event timeline (load it in Perfetto).

Run:  python examples/telemetry_capture.py
"""

import json
import tempfile
from pathlib import Path

from repro import Objective, workload
from repro.telemetry import RunReport
from repro.telemetry.exporters import to_prometheus_text
from repro.telemetry.session import TelemetrySession
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def main() -> None:
    w = workload("lr-higgs")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)

    out_dir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    metrics_path = out_dir / "run.json"
    trace_path = out_dir / "run.trace.json"

    # Everything constructed inside the session records onto its registry
    # and tracer; on exit the capture is written and the process-global
    # no-op collectors are restored.
    with TelemetrySession(
        metrics_path=metrics_path,
        trace_path=trace_path,
        meta={"command": "train", "workload": "lr-higgs"},
    ) as session:
        run = run_training(
            w,
            method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
            seed=0,
            profile=profile,
        )
        r = run.result
        session.set_run_summary(
            {
                "jct_s": r.jct_s,
                "cost_usd": r.cost_usd,
                "comm_overhead_s": r.comm_overhead_s,
                "scheduling_overhead_s": r.scheduling_overhead_s,
            }
        )

    # 1. The breakdown report — where the time and the money went.
    report = RunReport.from_registry(
        session.registry,
        run={"jct_s": r.jct_s, "cost_usd": r.cost_usd,
             "comm_overhead_s": r.comm_overhead_s,
             "scheduling_overhead_s": r.scheduling_overhead_s},
        meta=session.meta,
    )
    print(report.render())

    # 2. Prometheus exposition — a few lines of what a scraper would see.
    print("\nprometheus sample:")
    exposition = to_prometheus_text(session.registry.snapshot())
    for line in exposition.splitlines():
        if "cold_start" in line or "billed_usd" in line:
            print(f"  {line}")

    # 3. The Chrome trace — per-phase spans on per-group tracks.
    chrome = json.loads(trace_path.read_text())
    spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    tracks = sorted({e["args"]["name"] for e in chrome["traceEvents"]
                     if e["ph"] == "M"})
    print(f"\ntrace: {len(spans)} spans on {len(tracks)} tracks -> {trace_path}")
    print(f"tracks: {', '.join(tracks)}")
    print(f"telemetry JSON ({metrics_path.stat().st_size} bytes) -> "
          f"{metrics_path}")
    print("inspect later with: "
          f"python -m repro report {metrics_path}")


if __name__ == "__main__":
    main()
