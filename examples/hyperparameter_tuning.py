"""Hyperparameter tuning: Successive Halving with smart resource partitioning.

Compares CE-scaling's greedy heuristic planner (Algorithm 1) against the
static (LambdaML-style) and cluster-style Fixed baselines on the same SHA
run, under the same budget.

Run:  python examples/hyperparameter_tuning.py
"""

from repro import Objective, SHASpec, run_tuning, workload
from repro.common.units import format_duration, format_usd
from repro.workflow.job import tuning_envelope
from repro.workflow.runner import profile_workload


def main() -> None:
    w = workload("lr-higgs")
    spec = SHASpec(n_trials=256, reduction_factor=2, epochs_per_stage=2)
    print(f"SHA: {spec.n_trials} trials, eta={spec.reduction_factor}, "
          f"{spec.n_stages} stages, {spec.total_trial_epochs()} trial-epochs")

    profile = profile_workload(w)
    budget = tuning_envelope(profile, spec).budget(1.3)
    print(f"budget: {format_usd(budget)}\n")

    print(f"{'method':12s} {'JCT':>12s} {'cost':>12s} {'winner lr':>12s}")
    for method in ("ce-scaling", "lambdaml", "siren", "fixed"):
        run = run_tuning(
            w, spec, method=method,
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=0, profile=profile,
        )
        r = run.result
        print(f"{method:12s} {format_duration(r.jct_s):>12s} "
              f"{format_usd(r.cost_usd):>12s} "
              f"{r.winner.learning_rate:>12.2e}")

    # Show where CE-scaling puts the money: per-stage allocations.
    run = run_tuning(
        w, spec, method="ce-scaling",
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget, seed=0, profile=profile,
    )
    print("\nCE-scaling per-stage plan (early stages are cheap: most of "
          "their trials get terminated):")
    for i, point in enumerate(run.plan.stages):
        trials = spec.trials_in_stage(i)
        print(f"  stage {i + 1:2d} ({trials:4d} trials): "
              f"{point.allocation.describe():26s} "
              f"{format_usd(point.cost_usd)}/trial-epoch")


if __name__ == "__main__":
    main()
