"""Simulated-time metrics walkthrough: sample a run, replay its dashboard.

Wraps one training job in a :class:`repro.timeseries.TimeSeriesSession`,
which records resource trajectories on the *simulated* clock — in-flight
invocations against the account limit, warm-pool size, cold-start rate,
the scheduler's active (m, s) allocation with reallocation markers, and
cumulative spend — then shows the three surfaces built on the capture:

* the terminal dashboard (``repro dash --replay`` renders the same thing
  byte-for-byte, because rendering is a pure function of the document),
* the high-water marks that become ``repro report``'s ``peaks`` section,
* the EWMA/MAD anomaly detector that feeds ``repro diagnose``.

The sampler is observational: it never consumes randomness or branches
simulation logic, so a sampled run is byte-identical to an unsampled one
(see ``tests/test_determinism.py``).

Run:  python examples/dashboard_run.py
"""

import tempfile
from pathlib import Path

from repro import workload
from repro.timeseries import (
    TimeSeriesSession,
    detect_anomalies,
    diff_captures,
    load_capture,
    peaks_summary,
    render_dashboard,
    render_diff,
)
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def main() -> None:
    w = workload("lr-higgs")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)

    # 1. Sample a training run; the session writes the capture on exit.
    out_dir = Path(tempfile.mkdtemp(prefix="repro-timeseries-"))
    capture_path = out_dir / "run.timeseries.json"
    with TimeSeriesSession(
        capture_path=capture_path,
        meta={"workload": "lr-higgs", "seed": 0},
    ) as session:
        run_training(
            w, method="ce-scaling", objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget, seed=0, profile=profile,
        )

    # 2. Replay it: the dashboard is a pure function of the document.
    payload = load_capture(capture_path.read_text())
    print(render_dashboard(payload, width=48))
    print(f"capture written to {capture_path}")
    print(f"replay it with: python -m repro dash --replay {capture_path}")

    # 3. High-water marks — the `peaks` section of `repro report`.
    peaks = peaks_summary(session.sampler)
    print(f"\npeak concurrency {peaks['concurrency']:g}, "
          f"peak warm pool {peaks['warm_pool']:g}, "
          f"peak storage bandwidth {peaks['storage_bandwidth_mb_s']:g} MB/s")

    # 4. Anomaly scan (clean run -> usually empty) and a self-diff.
    anomalies = detect_anomalies(payload)
    if anomalies:
        for a in anomalies:
            print(f"[{a.severity}] {a.rule}: {a.message}")
    else:
        print("anomaly scan: clean (seed a storage-throttle fault plan "
              "via `repro diagnose --faults ... --timeseries ...` to trip it)")
    print()
    print(render_diff(diff_captures(payload, payload)))


if __name__ == "__main__":
    main()
