"""Hot-path profiling walkthrough: where does the planner's time go?

Installs the deterministic hot-path profiler (`repro.profiling`), runs
Algorithm 1 on a real Pareto ladder, and shows the three export
surfaces:

* the per-frame table (`repro profile WORKLOAD --run tune` renders the
  same thing) with attributed counters — candidates evaluated per call
  site, and candidates/second per frame,
* the ``repro-profile/v1`` JSON capture (diff two of them later with
  ``repro profile --diff``),
* a collapsed-stack flamegraph (feed it to ``flamegraph.pl``,
  ``inferno-flamegraph`` or speedscope).

The profiler is observational: frames only measure *host* time and never
touch simulated clocks, so a profiled run is byte-identical to an
unprofiled one (see ``tests/test_determinism.py``).

Run:  python examples/profile_planner.py
"""

import tempfile
from pathlib import Path

from repro import workload
from repro.profiling import (
    Profiler,
    capture_payload,
    diff_captures,
    render_capture,
    render_diff,
    set_profiler,
    to_collapsed,
    to_json,
)
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective, evaluate_plan
from repro.tuning.sha import SHASpec
from repro.tuning.static_planner import static_plan
from repro.workflow.runner import profile_workload


def main() -> None:
    w = workload("lr-higgs")
    ladder = sorted(profile_workload(w).pareto, key=lambda p: p.cost_usd)
    spec = SHASpec(n_trials=32, reduction_factor=2, epochs_per_stage=2)
    cheap = evaluate_plan(static_plan(ladder[0], spec), spec)

    # 1. Install a profiler, run the planner, render the frame table.
    profiler = Profiler()
    set_profiler(profiler)
    try:
        result = GreedyHeuristicPlanner().plan(
            ladder, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=cheap.cost_usd * 1.3,
        )
    finally:
        set_profiler(None)

    payload = capture_payload(
        profiler, meta={"workload": "lr-higgs", "entry": "planner"}
    )
    print(render_capture(payload))
    print(f"\nplanner evaluated {result.stats.candidates_evaluated} "
          f"candidate plans in {result.stats.wall_time_s * 1e3:.1f} ms "
          f"(every one attributed to a frame above)")

    # 2. Persist the capture + flamegraph.
    out_dir = Path(tempfile.mkdtemp(prefix="repro-profile-"))
    capture_path = out_dir / "planner.profile.json"
    flame_path = out_dir / "planner.flame.txt"
    capture_path.write_text(to_json(payload))
    flame_path.write_text(to_collapsed(payload))
    print(f"\ncapture    : {capture_path}")
    print(f"flamegraph : {flame_path}  "
          f"(flamegraph.pl / inferno / speedscope)")

    # 3. Diff the capture against itself — the shape of a CI perf gate.
    report = diff_captures(payload, payload)
    print("\nself-diff (a real gate compares against a committed baseline):")
    print(render_diff(report))
    profiler.close()


if __name__ == "__main__":
    main()
