"""Chaos walkthrough: fault injection and the resilience layer.

Runs the same CE-scaling training job twice — once fault-free, once under
the default chaos profile (worker crashes at p=0.05 per epoch·function,
cold-start failures, storage transients, one throttling window, and one
permanent function loss at epoch 5) — and shows the three recovery
surfaces:

* bounded retries with deterministic backoff absorb the per-worker
  crashes without failing the epoch,
* the permanent loss triggers graceful degradation: the adaptive
  scheduler re-selects a surviving allocation from the Pareto boundary
  instead of aborting,
* the fault ledger records every injected fault and recovery action, and
  ``JobResult.extra["faults"]`` carries the aggregate split (work lost to
  faults vs recovery overhead).

The same seed plus the same plan reproduces the ledger byte-for-byte;
an empty plan is byte-identical to not passing one at all.

Run:  python examples/chaos_run.py
"""

from repro import FaultPlan, workload
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def main() -> None:
    w = workload("lr-higgs")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)

    clean = run_training(w, budget_usd=budget, profile=profile, seed=0)
    chaos = run_training(
        w, budget_usd=budget, profile=profile, seed=0,
        fault_plan=FaultPlan.default_profile(),
    )
    c, f = clean.result, chaos.result

    print(f"fault-free: JCT {c.jct_s:8.2f} s  cost ${c.cost_usd:.4f}  "
          f"converged={c.converged}")
    print(f"chaos     : JCT {f.jct_s:8.2f} s  cost ${f.cost_usd:.4f}  "
          f"converged={f.converged}  restarts={f.n_restarts}")
    print(f"JCT inflation: {f.jct_s / c.jct_s:.2f}x")

    summary = f.extra["faults"]
    print(f"\ninjected {summary['n_faults']} fault(s), "
          f"{summary['n_recoveries']} recovery action(s)")
    print(f"work lost to faults : {summary['fault_time_s']:8.2f} s "
          "(cumulative across workers)")
    print(f"recovery overhead   : {summary['recovery_time_s']:8.2f} s")
    for kind, count in summary["by_kind"].items():
        print(f"  {kind:<20} {count:>5}")

    # The ledger itself has per-record detail (simulated time, epoch,
    # rank, attempt); `repro faults summarize` renders the same table.
    ledger = chaos.fault_ledger
    print("\nfirst ledger records:")
    print("\n".join(ledger.render().splitlines()[:8]))


if __name__ == "__main__":
    main()
