"""The complete serverless ML workflow of the paper's Fig. 1: tune, then train.

Splits one budget between hyperparameter tuning (SHA + Algorithm 1) and
model training (Algorithm 2), and shows the tuning-investment trade-off.

Run:  python examples/full_workflow.py
"""

from repro import SHASpec, workload
from repro.common.units import format_duration, format_usd
from repro.workflow.campaign import run_workflow


def main() -> None:
    w = workload("mobilenet-cifar10")
    spec = SHASpec(n_trials=32, reduction_factor=2, epochs_per_stage=1)
    budget = 25.0
    print(f"workflow: {w.name}, SHA {spec.n_trials} trials, "
          f"total budget {format_usd(budget)}\n")

    print(f"{'tuning %':>9s} {'winner q':>9s} {'tune cost':>11s} "
          f"{'train cost':>11s} {'total JCT':>12s} {'converged':>10s}")
    for fraction in (0.2, 0.4, 0.6):
        r = run_workflow(w, spec, budget_usd=budget,
                         tuning_fraction=fraction, seed=0)
        print(f"{fraction * 100:>8.0f}% {r.winner.quality:>9.2f} "
              f"{format_usd(r.tuning.cost_usd):>11s} "
              f"{format_usd(r.training.cost_usd):>11s} "
              f"{format_duration(r.total_jct_s):>12s} "
              f"{str(r.training.converged):>10s}")

    print("\nA better configuration (higher quality) converges in fewer "
          "epochs, so tuning spend buys back training spend — up to a point.")


if __name__ == "__main__":
    main()
