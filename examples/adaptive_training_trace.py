"""A deep dive into Algorithm 2: epoch-by-epoch scheduler decisions.

Traces one CE-scaling training run: the offline warm start, the online
loss-curve predictions, the δ-gated allocation switches, and the delayed
restarts that hide their overhead.

Run:  python examples/adaptive_training_trace.py
"""

from repro import AdaptiveScheduler, Objective, workload
from repro.analytical.timemodel import epoch_time
from repro.common.units import format_duration, format_usd
from repro.training.delayed_restart import DelayedRestartPlanner
from repro.training.executor import SurrogateLossProvider
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload


def main() -> None:
    w = workload("resnet50-cifar10")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)
    scheduler = AdaptiveScheduler(
        workload=w,
        candidates=profile.pareto,
        objective=Objective.MIN_JCT_GIVEN_BUDGET,
        budget_usd=budget,
        delta=0.1,
        seed=1,
    )
    provider = SurrogateLossProvider(w, seed=1)
    restarts = DelayedRestartPlanner()

    decision = scheduler.initial_decision()
    print(f"budget {format_usd(budget)}; offline prediction: "
          f"{decision.predicted_total_epochs:.0f} epochs")
    print(f"initial allocation: {decision.point.allocation.describe()}\n")
    print(f"{'ep':>3s} {'loss':>8s} {'pred':>6s} {'allocation':26s} "
          f"{'epoch time':>12s} {'switch'}")

    point = decision.point
    for epoch in range(1, 200):
        t = epoch_time(w, point.allocation)
        loss = provider.epoch_loss(point.allocation.n_functions)
        decision = scheduler.on_epoch_end(loss, point.cost_usd, t.total_s)
        note = ""
        if decision.restart:
            plan = restarts.plan_restart(w, decision.point.allocation, t.total_s)
            note = (f"-> {decision.point.allocation.describe()} "
                    f"(restart overhead hidden: "
                    f"{format_duration(plan.hidden_overhead_s)}, visible: "
                    f"{format_duration(plan.visible_overhead_s)})")
        print(f"{epoch:3d} {loss:8.3f} {decision.predicted_total_epochs:6.1f} "
              f"{point.allocation.describe():26s} "
              f"{format_duration(t.total_s):>12s} {note}")
        point = decision.point
        if loss <= w.target_loss:
            print(f"\nconverged after {epoch} epochs "
                  f"({scheduler.n_searches} scheduler searches, "
                  f"{format_usd(scheduler.spent_usd)} spent)")
            break


if __name__ == "__main__":
    main()
