"""QoS guard walkthrough: burn-rate accounting, alerts, and event replay.

Runs one CE-scaling training job inside an :class:`SLOSession` that holds
it to a deadline it cannot make, then shows the three guard surfaces:

* the alert stream — the ``deadline-projected-miss`` alert fires many
  epochs before the clock actually crosses the deadline, because the
  guard projects completion from the online predictor's horizon,
* the SLO report (`repro slo` renders the same table),
* deterministic replay — re-evaluating the structured event log offline
  reaches the same objective states as the live guard did.

Run:  python examples/slo_guard.py
"""

import tempfile
from pathlib import Path

from repro import (
    Objective,
    SLOSession,
    SLOSpec,
    evaluate_guard,
    replay_events,
    workload,
)
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload, run_training


def main() -> None:
    w = workload("lr-higgs")
    profile = profile_workload(w)
    budget = training_envelope(w, profile).budget(2.5)

    # lr-higgs needs ~84 simulated seconds at this budget; a 55 s deadline
    # is a promise the run cannot keep. The interesting part is *when* the
    # guard notices: from the projection, not from the miss itself.
    spec = SLOSpec(name="demo", deadline_s=55.0, budget_usd=5.0)

    out_dir = Path(tempfile.mkdtemp(prefix="repro-slo-"))
    events_path = out_dir / "events.jsonl"

    # Everything the runner, executor and scheduler emit while the session
    # is live flows through the event bus into the guard and its log.
    with SLOSession(
        spec=spec,
        events_path=events_path,
        meta={"command": "train", "workload": "lr-higgs"},
    ) as session:
        run = run_training(
            w,
            method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=budget,
            seed=0,
            profile=profile,
        )

    r = run.result
    guard = session.guard
    print(
        f"run finished: jct {r.jct_s:.1f} s vs deadline {spec.deadline_s:.0f} s, "
        f"cost ${r.cost_usd:.2f} vs budget ${spec.budget_usd:.2f}\n"
    )

    # 1. The alert stream — leading indicators, stamped in simulated time.
    print("alerts:")
    for alert in guard.alerts:
        end = (
            f"resolved t={alert.resolved_t_s:.1f}s"
            if alert.resolved_t_s is not None
            else "never resolved"
        )
        print(
            f"  [{alert.severity}] {alert.rule}: fired epoch "
            f"{alert.fired_epoch} (t={alert.fired_t_s:.1f}s), {end}"
        )

    # 2. The SLO report — `repro slo` renders the same thing.
    report = evaluate_guard(guard, meta=session.meta)
    print()
    print(report.render())

    # 3. Replay: the event log alone reproduces the objective states.
    replayed = replay_events(spec, events_path.read_text())
    match = (
        replayed.to_payload()["objectives"] == report.to_payload()["objectives"]
    )
    print(f"\nevent log: {len(session.log)} events -> {events_path}")
    print(f"replay reaches the same objective states: {match}")
    print(
        "evaluate a capture later with: python -m repro slo "
        f"--spec <spec.json> --capture {events_path}"
    )


if __name__ == "__main__":
    main()
