"""The substrate stack end to end: real SGD over a simulated parameter server.

Runs genuine numpy logistic-regression SGD with 8 workers whose gradients
travel through the simulated VM-PS storage service (real bytes through the
K/V plane), then verifies the distributed result against single-process
training and reports what the storage layer metered.

Run:  python examples/distributed_sgd_on_storage.py
"""

import numpy as np

from repro import StorageKind, workload
from repro.common.units import format_duration
from repro.ml.sgd import DistributedSGD, SGDConfig
from repro.storage.catalog import make_service
from repro.storage.sync import BSPSynchronizer


def main() -> None:
    w = workload("lr-higgs")
    n_workers = 8
    cfg = SGDConfig(batch_size=512, learning_rate=0.3, rows_per_worker=600)

    service = make_service(StorageKind.VMPS)
    synchronizer = BSPSynchronizer(service, n_workers)
    sim_time = 0.0

    def sync_hook(n: int, model_mb: float) -> None:
        nonlocal sim_time
        # Push each worker's gradient through the storage data plane. (The
        # trainer's weights are exchanged by the engine; here we move real
        # placeholder buffers of the model's size to exercise the plane.)
        grads = [np.zeros(max(1, int(model_mb * 2**20 / 8))) for _ in range(n)]
        _, report = synchronizer.run_round(grads)
        sim_time += report.wall_time_s

    sgd = DistributedSGD(w, n_workers, cfg, seed=0, sync_hook=sync_hook)
    print(f"training LR on synthetic Higgs with {n_workers} workers over VM-PS")
    for epoch in range(1, 9):
        loss = sgd.run_epoch(iterations=25)
        print(f"  epoch {epoch}: loss {loss:.4f}")

    print(f"\nstorage-plane activity:")
    print(f"  rounds          : {synchronizer.round_index}")
    print(f"  billable requests: {service.metrics.requests}")
    print(f"  data transferred : {service.metrics.transferred_mb:.2f} MB")
    print(f"  simulated sync   : {format_duration(sim_time)}")
    print(f"  transfers/round  : {synchronizer.expected_transfers()} "
          f"(Eq. 3: 2n-2 = {2 * n_workers - 2})")

    reference = DistributedSGD(w, n_workers, cfg, seed=0)
    for _ in range(8):
        reference.run_epoch(iterations=25)
    drift = float(np.abs(sgd.weights - reference.weights).max())
    print(f"\nmax |weight difference| vs in-memory training: {drift:.2e}")


if __name__ == "__main__":
    main()
