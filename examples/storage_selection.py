"""Storage selection: why the external storage must be co-optimized.

Reproduces the paper's Finding 3 interactively: trains two models with
CE-scaling pinned to each storage service and shows that the best choice
depends on the model (and that DynamoDB is simply unavailable above its
400 KB item cap).

Run:  python examples/storage_selection.py
"""

from repro import Objective, StorageKind, run_training, workload
from repro.common.errors import ConstraintError, InfeasibleAllocationError
from repro.common.units import format_duration, format_usd
from repro.workflow.job import training_envelope
from repro.workflow.runner import profile_workload


def main() -> None:
    for name in ("lr-higgs", "mobilenet-cifar10"):
        w = workload(name)
        print(f"\n=== {w.name} (model {w.model_mb:.4f} MB) ===")
        print(f"{'storage':12s} {'JCT':>12s} {'cost':>12s} "
              f"{'comm':>12s} {'storage $':>12s}")
        rows = {}
        for storage in StorageKind:
            try:
                profile = profile_workload(w, storage_pin=storage)
            except (InfeasibleAllocationError, ConstraintError):
                print(f"{storage.value:12s} {'N/A (object too large)':>12s}")
                continue
            budget = training_envelope(w, profile).budget(2.5)
            r = run_training(
                w, method="ce-scaling",
                objective=Objective.MIN_JCT_GIVEN_BUDGET,
                budget_usd=budget, seed=0, profile=profile,
                storage_pin=storage,
            ).result
            rows[storage.value] = r
            print(f"{storage.value:12s} {format_duration(r.jct_s):>12s} "
                  f"{format_usd(r.cost_usd):>12s} "
                  f"{format_duration(r.comm_overhead_s):>12s} "
                  f"{format_usd(r.storage_cost_usd):>12s}")
        best_jct = min(rows, key=lambda k: rows[k].jct_s)
        best_cost = min(rows, key=lambda k: rows[k].cost_usd)
        print(f"-> fastest with {best_jct}, cheapest with {best_cost}")
    print("\nThe best service depends on the model: this is why CE-scaling "
          "treats storage as a third allocation dimension (Finding 3).")


if __name__ == "__main__":
    main()
