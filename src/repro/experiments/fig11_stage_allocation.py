"""Fig. 11 — normalized per-trial budget per SHA stage (LR-Higgs).

Shows *where the money goes*: CE-scaling gives early stages (full of
soon-terminated trials) less per-trial budget and late stages more; static
methods spend >80% of the budget in the first two stages; the Fixed split
starves early-stage trials into resource competition.

Values are per-trial spend in each stage, normalized to the static method
(LambdaML), exactly like the figure.
"""

from __future__ import annotations

from repro.tuning.plan import Objective, evaluate_plan
from repro.workflow.job import tuning_envelope
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import make_tuning_plan, profile_workload
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig11"
TITLE = "Average per-trial allocated budget per stage (LR-Higgs)"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    profile = profile_workload("lr-higgs")
    env = tuning_envelope(profile, spec)
    budget = env.budget(1.3)
    methods = ("ce-scaling", "lambdaml", "fixed")
    per_trial: dict[str, list[float]] = {}
    evaluations = {}
    for method in methods:
        plan, _, _ = make_tuning_plan(
            method, profile, spec, Objective.MIN_JCT_GIVEN_BUDGET, budget, None
        )
        ev = evaluate_plan(plan, spec)
        evaluations[method] = ev
        per_trial[method] = [
            c / spec.trials_in_stage(i) for i, c in enumerate(ev.stage_cost_usd)
        ]

    table = ComparisonTable(
        title="Per-trial spend per stage, normalized to the static method",
        columns=["stage", "trials", "ce-scaling", "lambdaml", "fixed"],
    )
    for i in range(spec.n_stages):
        base = per_trial["lambdaml"][i]
        table.add_row(
            i + 1,
            spec.trials_in_stage(i),
            per_trial["ce-scaling"][i] / base,
            1.0,
            per_trial["fixed"][i] / base,
        )

    share_table = ComparisonTable(
        title="Share of total spend in the first two stages",
        columns=["method", "first_two_stages_%"],
    )
    series: dict = {"per_trial": per_trial}
    for method in methods:
        total = evaluations[method].cost_usd
        share = 100 * sum(evaluations[method].stage_cost_usd[:2]) / total
        share_table.add_row(method, share)
        series[f"{method}_first2_share"] = share / 100

    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table, share_table],
        series=series,
        notes=(
            "paper: static spends >80% in the first two stages; CE shifts "
            "per-trial budget toward late stages"
        ),
    )


if __name__ == "__main__":
    print(run().render())
