"""Fig. 4 — offline vs online epoch-prediction error.

(a) The sampling-based offline method (LambdaML) shows a high average error
    (paper: up to ~40% per model).
(b) Online loss-curve fitting improves as state accumulates, ending around
    ~5% (paper's average).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PredictionError
from repro.ml.curves import LossCurveSampler
from repro.ml.models import workload
from repro.training.offline_predictor import OfflinePredictor
from repro.training.online_predictor import OnlinePredictor
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig04"
TITLE = "Offline vs online epoch-prediction error"

PROGRESS_FRACTIONS = (0.2, 0.4, 0.6, 0.8)


def _true_epochs(w, seed: int) -> int:
    sampler = LossCurveSampler(
        w.curve_params(), seed=seed, run_label=("train", w.name),
        anchor_target=w.target_loss,
    )
    return sampler.epochs_to_target(w.target_loss)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    offline_table = ComparisonTable(
        title="(a) Offline (sampling-based) prediction error",
        columns=["workload", "mean_error_%", "max_error_%"],
    )
    online_table = ComparisonTable(
        title="(b) Online prediction error vs training progress",
        columns=["workload"] + [f"@{int(f * 100)}%" for f in PROGRESS_FRACTIONS],
    )
    series: dict = {"offline": {}, "online": {}}
    for name in sc.workloads:
        w = workload(name)
        off_errs, online_errs = [], {f: [] for f in PROGRESS_FRACTIONS}
        for s in sc.seeds(seed):
            true = _true_epochs(w, s)
            off = OfflinePredictor(w, seed=s).predict_total_epochs()
            off_errs.append(abs(off - true) / true)
            for f in PROGRESS_FRACTIONS:
                predictor = OnlinePredictor(w.target_loss, prior=w.curve_params())
                sampler = LossCurveSampler(
                    w.curve_params(), seed=s, run_label=("train", w.name),
                    anchor_target=w.target_loss,
                )
                for _ in range(max(4, int(true * f))):
                    predictor.observe(sampler.next_loss())
                try:
                    p = predictor.predict_total_epochs()
                    online_errs[f].append(abs(p - true) / true)
                except PredictionError:
                    # Too few observations at this progress fraction — the
                    # figure simply has no data point there.
                    continue
        offline_table.add_row(
            name, 100 * float(np.mean(off_errs)), 100 * float(np.max(off_errs))
        )
        mean_online = {
            f: (100 * float(np.mean(v)) if v else float("nan"))
            for f, v in online_errs.items()
        }
        online_table.add_row(name, *mean_online.values())
        series["offline"][name] = float(np.mean(off_errs))
        series["online"][name] = {f: v / 100 for f, v in mean_online.items()}
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[offline_table, online_table],
        series=series,
        notes=(
            "paper: offline error up to ~40% average; online error decays "
            "toward ~5% as training state accumulates"
        ),
    )


if __name__ == "__main__":
    print(run().render())
