"""Fig. 21 — scheduling overhead and the impact of δ.

(a) Tuning: the greedy planner with vs without Pareto pruning (WO-pa).
    Paper: Pareto cuts planning overhead ~69% on average.
(b) Training: CE vs WO-pa (full search space) vs WO-pa-dr (additionally no
    delayed restart). Paper: Pareto −64%, delayed restart −55%.
(c) The δ threshold: smaller δ reacts to every prediction wiggle (many
    restarts, high overhead); larger δ reacts slowly. Paper default 0.1.
"""

from __future__ import annotations

import numpy as np

from repro.ml.models import workload as lookup_workload
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective
from repro.workflow.job import training_envelope, tuning_envelope
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload, run_training
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig21"
TITLE = "Scheduling overhead (Pareto pruning, delayed restart, δ)"

WORKLOAD = "mobilenet-cifar10"
DELTAS = (0.01, 0.05, 0.1, 0.15, 0.2)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    seeds = sc.seeds(seed)

    # (a) tuning planner overhead, with and without Pareto pruning.
    tuning_table = ComparisonTable(
        title="(a) Tuning planning overhead",
        columns=["variant", "candidates", "evaluations", "sim_overhead_s",
                 "wall_time_s"],
    )
    tuning_series = {}
    for variant, use_pareto in (("ce-scaling", True), ("wo-pa", False)):
        profile = profile_workload(WORKLOAD, use_pareto=use_pareto)
        env = tuning_envelope(profile, spec)
        res = GreedyHeuristicPlanner().plan(
            profile.candidates, spec, Objective.MIN_JCT_GIVEN_BUDGET,
            budget_usd=env.budget(1.3),
        )
        sim_overhead = 0.05 * len(profile.candidates)
        tuning_table.add_row(
            variant, len(profile.candidates), res.stats.candidates_evaluated,
            sim_overhead, res.stats.wall_time_s,
        )
        tuning_series[variant] = {
            "candidates": len(profile.candidates),
            "evaluations": res.stats.candidates_evaluated,
            "sim_overhead_s": sim_overhead,
            "wall_time_s": res.stats.wall_time_s,
        }

    # (b) training scheduling overhead under the ablations.
    training_table = ComparisonTable(
        title="(b) Training scheduling overhead per job",
        columns=["variant", "sched_overhead_s", "restarts", "jct_s"],
    )
    training_series = {}
    variants = (
        ("ce-scaling", dict(use_pareto=True, delayed_restart=True)),
        ("wo-pa", dict(use_pareto=False, delayed_restart=True)),
        ("wo-pa-dr", dict(use_pareto=False, delayed_restart=False)),
    )
    base_profile = profile_workload(WORKLOAD)
    budget = training_envelope(lookup_workload(WORKLOAD), base_profile).budget(2.0)
    for variant, kw in variants:
        rows = [
            run_training(
                WORKLOAD, method="ce-scaling",
                objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
                seed=s, **kw,
            ).result
            for s in seeds
        ]
        entry = {
            "sched_overhead_s": float(np.mean([r.scheduling_overhead_s for r in rows])),
            "restarts": float(np.mean([r.n_restarts for r in rows])),
            "jct_s": float(np.mean([r.jct_s for r in rows])),
        }
        training_table.add_row(
            variant, entry["sched_overhead_s"], entry["restarts"], entry["jct_s"]
        )
        training_series[variant] = entry

    # (c) δ sweep.
    delta_table = ComparisonTable(
        title="(c) Impact of the adjustment threshold δ",
        columns=["delta", "restarts", "sched_overhead_s", "jct_s"],
    )
    delta_series = {}
    for delta in DELTAS:
        rows = [
            run_training(
                WORKLOAD, method="ce-scaling",
                objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
                seed=s, delta=delta, profile=base_profile,
            ).result
            for s in seeds
        ]
        entry = {
            "restarts": float(np.mean([r.n_restarts for r in rows])),
            "sched_overhead_s": float(np.mean([r.scheduling_overhead_s for r in rows])),
            "jct_s": float(np.mean([r.jct_s for r in rows])),
        }
        delta_table.add_row(
            delta, entry["restarts"], entry["sched_overhead_s"], entry["jct_s"]
        )
        delta_series[delta] = entry

    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[tuning_table, training_table, delta_table],
        series={
            "tuning": tuning_series,
            "training": training_series,
            "delta": delta_series,
        },
        notes=(
            "paper: Pareto cuts tuning planning ~69% and training "
            "scheduling ~64%; delayed restart cuts ~55%; low δ = frequent "
            "restarts, high δ = slow reaction (default 0.1)"
        ),
    )


if __name__ == "__main__":
    print(run().render())
