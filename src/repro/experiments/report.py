"""One-shot report generator: regenerate every experiment into Markdown.

``python -m repro.experiments.report [--scale small] [--out report.md]``
runs every registered experiment and writes a consolidated Markdown report
(the data behind EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, run_experiment


def generate_report(scale: str = "tiny", seed: int = 0) -> str:
    """Run every experiment and render a Markdown report."""
    lines = [
        "# CE-scaling reproduction report",
        "",
        f"scale: `{scale}`, seed: {seed}",
        "",
    ]
    for exp_id in REGISTRY.available():
        start = time.perf_counter()
        result = run_experiment(exp_id, scale=scale, seed=seed)
        elapsed = time.perf_counter() - start
        lines.append(f"## {exp_id} — {result.title}")
        lines.append("")
        for table in result.tables:
            lines.append("```")
            lines.append(table.render())
            lines.append("```")
            lines.append("")
        if result.notes:
            lines.append(f"*{result.notes}*")
            lines.append("")
        lines.append(f"_(regenerated in {elapsed:.1f} s)_")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="output file (default: stdout)")
    args = parser.parse_args(argv)
    report = generate_report(scale=args.scale, seed=args.seed)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
