"""Fig. 12 — model-training JCT under a budget, with communication overhead.

CE-scaling vs Siren (RL, S3, per-epoch adjustment) and modified Cirrus
(online prediction, VM-PS). Paper: CE-scaling reduces JCT by up to ~56%;
the hatched bar bottom is communication (parameter-synchronization) time,
which dominates Siren on the big models.
"""

from __future__ import annotations

from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.experiments.common import training_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig12"
TITLE = "Training JCT given a budget (with communication breakdown)"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    table = ComparisonTable(
        title="JCT (s) and communication share; constraint: budget",
        columns=[
            "workload", "method", "jct_s", "comm_s", "cost_usd",
            "within_budget", "restarts",
        ],
    )
    series: dict = {}
    for name in sc.workloads:
        comp = training_comparison(
            name, Objective.MIN_JCT_GIVEN_BUDGET, sc.seeds(seed),
            budget_multiple=2.5,
        )
        for method, row in comp.items():
            table.add_row(
                name, method, row["jct_s"], row["comm_s"], row["cost_usd"],
                row["cost_usd"] <= row["budget_usd"] * 1.05, row["restarts"],
            )
        series[name] = comp
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes=(
            "paper: CE up to ~56% lower JCT; Siren's S3 sync dominates on "
            "big models; Cirrus runs fast but overruns budgets its VM-PS "
            "floor cannot meet (LambdaML excluded as in the paper)"
        ),
    )


if __name__ == "__main__":
    print(run().render())
