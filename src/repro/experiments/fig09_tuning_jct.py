"""Fig. 9 — hyperparameter-tuning JCT under a budget constraint.

CE-scaling vs the static methods (LambdaML, Siren) and the cluster-style
Fixed split, per model. Paper: CE-scaling cuts JCT by up to ~66%, the Fixed
method is worst, and LambdaML beats Siren (whose RL over-allocates early
stages).
"""

from __future__ import annotations

from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.experiments.common import tuning_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig09"
TITLE = "Tuning JCT given a budget"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    table = ComparisonTable(
        title=f"JCT (s), SHA {spec.n_trials} trials / {spec.n_stages} stages",
        columns=["workload", "ce-scaling", "lambdaml", "siren", "fixed",
                 "ce_vs_best_static_%"],
    )
    series: dict = {}
    for name in sc.workloads:
        comp = tuning_comparison(
            name, spec, Objective.MIN_JCT_GIVEN_BUDGET, sc.seeds(seed),
            budget_multiple=1.3,
        )
        best_static = min(comp["lambdaml"]["jct_s"], comp["siren"]["jct_s"])
        improvement = (1 - comp["ce-scaling"]["jct_s"] / best_static) * 100
        table.add_row(
            name,
            comp["ce-scaling"]["jct_s"],
            comp["lambdaml"]["jct_s"],
            comp["siren"]["jct_s"],
            comp["fixed"]["jct_s"],
            improvement,
        )
        series[name] = comp
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes="paper: CE-scaling up to ~66% lower JCT; Fixed worst",
    )


if __name__ == "__main__":
    print(run().render())
