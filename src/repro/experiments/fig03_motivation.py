"""Fig. 3 — motivation: reallocating early-stage resources in SHA.

The paper runs SHA with 5 stages / 32 trials and shows that moving ~10% of
stage 1's per-trial resources to later stages cuts JCT by ~39%, while an
aggressive 30% reallocation *increases* JCT by ~36% because stage 1
collapses under resource competition.

Reproduction: start from a mid-ladder static plan; a reallocation of
fraction ``f`` downgrades stage 1 until its per-trial cost has dropped by
``f``, then spends the freed budget on later stages greedily (best JCT
gain per dollar). Per-stage JCTs are reported like the figure's bars.
"""

from __future__ import annotations

from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import PartitionPlan, evaluate_plan
from repro.tuning.sha import SHASpec
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload
from repro.experiments.harness import ExperimentResult

EXPERIMENT = "fig03"
TITLE = "Reallocating stage-1 resources in hyperparameter tuning (motivation)"


def _realloc_plan(
    ladder: list[ProfiledAllocation],
    static_point: ProfiledAllocation,
    spec: SHASpec,
    fraction: float,
) -> PartitionPlan:
    """Move ~``fraction`` of stage-1 per-trial cost to the later stages."""
    plan = PartitionPlan.uniform(static_point, spec.n_stages)
    idx = ladder.index(static_point)
    # Downgrade stage 0 until its per-epoch cost drops by >= fraction.
    target_cost = static_point.cost_usd * (1.0 - fraction)
    j = idx
    while j > 0 and ladder[j].cost_usd > target_cost:
        j -= 1
    plan = plan.replace_stage(0, ladder[j])
    freed = (
        spec.trials_in_stage(0)
        * spec.epochs_in_stage(0)
        * (static_point.cost_usd - ladder[j].cost_usd)
    )
    # Spend the freed budget on later stages, best JCT gain per dollar.
    budget = evaluate_plan(plan, spec).cost_usd + freed
    while True:
        ev = evaluate_plan(plan, spec)
        best = None
        for i in range(1, spec.n_stages):
            k = ladder.index(plan.stages[i])
            if k + 1 >= len(ladder):
                continue
            cand = plan.replace_stage(i, ladder[k + 1])
            cev = evaluate_plan(cand, spec)
            if cev.cost_usd > budget:
                continue
            gain = ev.jct_s - cev.jct_s
            spend = cev.cost_usd - ev.cost_usd
            if gain > 0 and spend > 0 and (best is None or gain / spend > best[0]):
                best = (gain / spend, cand)
        if best is None:
            break
        plan = best[1]
    return plan


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    workload_name = "lr-higgs"
    profile = profile_workload(workload_name)
    ladder = sorted(profile.pareto, key=lambda p: p.cost_usd)
    spec = SHASpec(n_trials=32, reduction_factor=2, epochs_per_stage=2)

    # The paper's static method: same per-trial allocation everywhere,
    # taken from the middle of the boundary (enough headroom both ways).
    static_point = ladder[len(ladder) // 2]
    plans = {
        "static": PartitionPlan.uniform(static_point, spec.n_stages),
        "realloc-10%": _realloc_plan(ladder, static_point, spec, 0.10),
        "realloc-30%": _realloc_plan(ladder, static_point, spec, 0.30),
    }
    evals = {name: evaluate_plan(p, spec) for name, p in plans.items()}

    table = ComparisonTable(
        title="Per-stage JCT (s) — 5 stages, 32 trials, eta=2 (LR-Higgs)",
        columns=["method"]
        + [f"stage{i + 1}" for i in range(spec.n_stages)]
        + ["total_jct_s", "cost_usd"],
    )
    for name, ev in evals.items():
        table.add_row(name, *ev.stage_jct_s, ev.jct_s, ev.cost_usd)

    cost_table = ComparisonTable(
        title="Share of total cost per stage (static method)",
        columns=["stage", "trials", "cost_share_%"],
    )
    total_cost = evals["static"].cost_usd
    for i, c in enumerate(evals["static"].stage_cost_usd):
        cost_table.add_row(i + 1, spec.trials_in_stage(i), 100.0 * c / total_cost)

    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table, cost_table],
        series={
            "jct": {name: ev.jct_s for name, ev in evals.items()},
            "stage_jct": {name: ev.stage_jct_s for name, ev in evals.items()},
            "static_cost_share_first3": sum(evals["static"].stage_cost_usd[:3])
            / total_cost,
        },
        notes=(
            "moderate reallocation must beat static; aggressive reallocation "
            "must overload stage 1 (paper: -39% then +36% JCT)"
        ),
    )


if __name__ == "__main__":
    print(run().render())
