"""Fig. 13 — model-training cost under a QoS constraint, with storage cost.

Paper: CE-scaling achieves up to ~35% cost reduction; the hatched bar
bottom is the external-storage cost share.
"""

from __future__ import annotations

from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.experiments.common import training_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig13"
TITLE = "Training cost given a QoS constraint (with storage breakdown)"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    table = ComparisonTable(
        title="Cost (USD) and storage share; constraint: QoS deadline",
        columns=[
            "workload", "method", "cost_usd", "storage_usd", "jct_s",
            "within_qos", "restarts",
        ],
    )
    series: dict = {}
    for name in sc.workloads:
        comp = training_comparison(
            name, Objective.MIN_COST_GIVEN_QOS, sc.seeds(seed), qos_multiple=3.0,
        )
        for method, row in comp.items():
            table.add_row(
                name, method, row["cost_usd"], row["storage_usd"], row["jct_s"],
                row["jct_s"] <= row["qos_s"] * 1.05, row["restarts"],
            )
        series[name] = comp
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes="paper: CE up to ~35% cheaper under the same deadline",
    )


if __name__ == "__main__":
    print(run().render())
