"""Shared comparison drivers for the tuning/training experiment modules."""

from __future__ import annotations

import numpy as np

from repro.common.types import StorageKind
from repro.analytical.profiler import ProfileResult
from repro.ml.models import Workload, workload as lookup
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec
from repro.workflow.job import training_envelope, tuning_envelope
from repro.workflow.runner import profile_workload, run_training, run_tuning

TUNING_BASELINES = ("ce-scaling", "lambdaml", "siren", "fixed")
TRAINING_BASELINES = ("ce-scaling", "siren", "cirrus")


def tuning_comparison(
    workload_name: str,
    spec: SHASpec,
    objective: Objective,
    seeds: list[int],
    budget_multiple: float = 1.5,
    qos_multiple: float = 2.0,
    methods: tuple[str, ...] = TUNING_BASELINES,
    profile: ProfileResult | None = None,
) -> dict[str, dict[str, float]]:
    """Mean JCT/cost per method for one tuning workload.

    Constraints derive from the workload's envelope: budget as a multiple
    of the cheapest static plan's cost, QoS as a multiple of the fastest
    static plan's JCT.
    """
    w = lookup(workload_name)
    profile = profile or profile_workload(w)
    env = tuning_envelope(profile, spec)
    budget = env.budget(budget_multiple)
    qos = env.qos(qos_multiple)
    out: dict[str, dict[str, float]] = {}
    for method in methods:
        jcts, costs = [], []
        for s in seeds:
            run = run_tuning(
                w,
                spec,
                method=method,
                objective=objective,
                budget_usd=budget,
                qos_s=qos if objective is Objective.MIN_COST_GIVEN_QOS else None,
                seed=s,
                profile=profile,
            )
            jcts.append(run.result.jct_s)
            costs.append(run.result.cost_usd)
        out[method] = {
            "jct_s": float(np.mean(jcts)),
            "cost_usd": float(np.mean(costs)),
            "budget_usd": budget,
            "qos_s": qos,
        }
    return out


def training_comparison(
    workload_name: str,
    objective: Objective,
    seeds: list[int],
    budget_multiple: float = 2.0,
    qos_multiple: float = 3.0,
    methods: tuple[str, ...] = TRAINING_BASELINES,
    profile: ProfileResult | None = None,
    storage_pin: StorageKind | None = None,
) -> dict[str, dict[str, float]]:
    """Mean JCT/cost (+breakdowns) per method for one training workload."""
    w = lookup(workload_name)
    profile = profile or profile_workload(w, storage_pin=storage_pin)
    env = training_envelope(w, profile)
    budget = env.budget(budget_multiple)
    qos = env.qos(qos_multiple)
    out: dict[str, dict[str, float]] = {}
    for method in methods:
        rows = []
        for s in seeds:
            run = run_training(
                w,
                method=method,
                objective=objective,
                budget_usd=budget if objective is Objective.MIN_JCT_GIVEN_BUDGET else None,
                qos_s=qos if objective is Objective.MIN_COST_GIVEN_QOS else None,
                seed=s,
                profile=profile,
                storage_pin=storage_pin,
            )
            rows.append(run.result)
        out[method] = {
            "jct_s": float(np.mean([r.jct_s for r in rows])),
            "cost_usd": float(np.mean([r.cost_usd for r in rows])),
            "comm_s": float(np.mean([r.comm_overhead_s for r in rows])),
            "storage_usd": float(np.mean([r.storage_cost_usd for r in rows])),
            "restarts": float(np.mean([r.n_restarts for r in rows])),
            "sched_s": float(np.mean([r.scheduling_overhead_s for r in rows])),
            "converged": float(np.mean([r.converged for r in rows])),
            "budget_usd": budget,
            "qos_s": qos,
        }
    return out
