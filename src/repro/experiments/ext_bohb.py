"""Extension experiment: BOHB vs plain SHA under equal budget.

Not a paper figure — it substantiates the paper's §II-A claim that
CE-scaling's partitioning "can be applied" to other early-stopping tuners:
BOHB runs on HyperBand brackets, each partitioned by the greedy planner,
and is compared against a planner-partitioned SHA of similar trial-epoch
volume.
"""

from __future__ import annotations

import numpy as np

from repro.ml.models import workload
from repro.tuning.bohb import BOHBRunner
from repro.tuning.hyperband import HyperBandSpec
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload, run_tuning
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "ext_bohb"
TITLE = "BOHB (HyperBand + TPE) vs SHA, both planner-partitioned"

WORKLOAD = "mobilenet-cifar10"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    w = workload(WORKLOAD)
    profile = profile_workload(w)
    hb = HyperBandSpec(max_epochs_per_trial=16, reduction_factor=2)
    sha = SHASpec(n_trials=64, reduction_factor=2, epochs_per_stage=2)
    budget = 40.0

    rows = {"bohb": [], "sha": []}
    for s in sc.seeds(seed):
        bohb = BOHBRunner(w, hb, profile.pareto, budget_usd=budget, seed=s).run()
        rows["bohb"].append((bohb.jct_s, bohb.cost_usd, bohb.best_trial.quality))
        sha_run = run_tuning(
            w, sha, method="ce-scaling",
            objective=Objective.MIN_JCT_GIVEN_BUDGET, budget_usd=budget,
            seed=s, profile=profile,
        )
        rows["sha"].append(
            (sha_run.result.jct_s, sha_run.result.cost_usd,
             sha_run.result.winner.quality)
        )

    table = ComparisonTable(
        title=f"Equal budget (${budget:.0f}), mean over {sc.n_seeds} seeds",
        columns=["tuner", "jct_s", "cost_usd", "winner_quality"],
    )
    series = {}
    for name, data in rows.items():
        arr = np.asarray(data)
        entry = {
            "jct_s": float(arr[:, 0].mean()),
            "cost_usd": float(arr[:, 1].mean()),
            "quality": float(arr[:, 2].mean()),
        }
        table.add_row(name, entry["jct_s"], entry["cost_usd"], entry["quality"])
        series[name] = entry
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes=(
            "both tuners run under the same greedy partitioning; BOHB's "
            "model-based sampling should find comparable-or-better configs"
        ),
    )


if __name__ == "__main__":
    print(run().render())
