"""Shared experiment infrastructure: scales, result container, helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import iter_seeds
from repro.tuning.sha import SHASpec
from repro.workflow.metrics import ComparisonTable


@dataclass(frozen=True)
class Scale:
    """How big an experiment runs.

    ``small`` keeps every experiment minutes-fast on a laptop; ``paper``
    matches the paper's headline configuration (16384 trials, 10 runs,
    all five models).
    """

    name: str
    sha_trials: int
    sha_epochs_per_stage: int
    n_seeds: int
    workloads: tuple[str, ...]

    def sha_spec(self) -> SHASpec:
        return SHASpec(
            n_trials=self.sha_trials,
            reduction_factor=2,
            epochs_per_stage=self.sha_epochs_per_stage,
        )

    def seeds(self, base: int = 0) -> list[int]:
        return list(iter_seeds(base, self.n_seeds))


SCALES: dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        sha_trials=64,
        sha_epochs_per_stage=2,
        n_seeds=2,
        workloads=("lr-higgs", "mobilenet-cifar10"),
    ),
    "small": Scale(
        name="small",
        sha_trials=256,
        sha_epochs_per_stage=2,
        n_seeds=3,
        workloads=("lr-higgs", "svm-higgs", "mobilenet-cifar10", "bert-imdb"),
    ),
    "paper": Scale(
        name="paper",
        sha_trials=16384,
        sha_epochs_per_stage=2,
        n_seeds=10,
        workloads=(
            "lr-higgs",
            "svm-higgs",
            "lr-yfcc",
            "svm-yfcc",
            "mobilenet-cifar10",
            "resnet50-cifar10",
            "bert-imdb",
        ),
    ),
}


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValidationError(
            f"unknown scale {scale!r}; available: {sorted(SCALES)}"
        ) from None


@dataclass
class ExperimentResult:
    """Output of one experiment reproduction.

    Attributes:
        experiment: id, e.g. ``"fig09"``.
        title: what the paper's figure/table shows.
        tables: rendered rows/series (what the benchmark prints).
        series: raw numbers for programmatic assertions.
        notes: caveats (scale-downs, known deviations).
    """

    experiment: str
    title: str
    tables: list[ComparisonTable] = field(default_factory=list)
    series: dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        parts = [f"=== {self.experiment}: {self.title} ==="]
        for t in self.tables:
            parts.append(t.render())
            parts.append("")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def summarize(values: list[float]) -> dict[str, float]:
    """Mean/min/max summary used throughout the experiment modules."""
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
