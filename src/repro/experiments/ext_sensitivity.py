"""Extension experiment: calibration sensitivity of the storage decision.

Not a paper figure — it quantifies how robust the reproduction's
conclusions (which storage wins, how fast the fastest plan is) are to the
calibrated constants in ``repro.config``.
"""

from __future__ import annotations

from repro.analytical.sensitivity import full_sweep
from repro.ml.models import workload
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult

EXPERIMENT = "ext_sensitivity"
TITLE = "Sensitivity of profiling decisions to calibration constants"

WORKLOADS = ("lr-higgs", "mobilenet-cifar10")
FACTORS = (0.5, 1.0, 2.0)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    table = ComparisonTable(
        title=f"Knob sweeps x{FACTORS}",
        columns=["workload", "knob", "decision_stable", "fastest_range",
                 "cheapest_cost_spread"],
    )
    series: dict = {}
    for name in WORKLOADS:
        w = workload(name)
        reports = full_sweep(w, factors=FACTORS)
        series[name] = {}
        for knob, report in reports.items():
            fastest = {p.fastest.describe() for p in report.points}
            costs = [p.cheapest_cost_usd for p in report.points]
            spread = max(costs) / min(costs)
            table.add_row(
                name, knob, report.decision_stable,
                " | ".join(sorted(fastest)), spread,
            )
            series[name][knob] = {
                "stable": report.decision_stable,
                "cost_spread": spread,
            }
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes=(
            "price knobs move costs proportionally but rarely flip the "
            "fastest allocation; latency/bandwidth knobs matter most for "
            "communication-bound workloads"
        ),
    )


if __name__ == "__main__":
    print(run().render())
