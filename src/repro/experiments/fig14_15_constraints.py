"""Fig. 14/15 — CE-scaling under varying constraint tightness (LR-YFCC).

Sweeps the budget (JCT-min) and QoS (cost-min) multipliers for both tuning
and training. Paper: the advantage of CE-scaling over the baselines is
largest under *tight* constraints and shrinks as they relax.
"""

from __future__ import annotations

from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.experiments.common import training_comparison, tuning_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig14_15"
TITLE = "CE-scaling under varying budget/QoS tightness (LR-YFCC)"

BUDGET_MULTIPLES = (1.1, 1.5, 2.5, 4.0)
QOS_MULTIPLES = (1.5, 2.5, 4.0, 6.0)
WORKLOAD = "lr-yfcc"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    seeds = sc.seeds(seed)

    tuning_table = ComparisonTable(
        title="Fig. 14 — tuning JCT vs budget multiple",
        columns=["budget_x", "ce-scaling", "lambdaml", "advantage_%"],
    )
    tuning_series = {}
    for mult in BUDGET_MULTIPLES:
        comp = tuning_comparison(
            WORKLOAD, spec, Objective.MIN_JCT_GIVEN_BUDGET, seeds,
            budget_multiple=mult, methods=("ce-scaling", "lambdaml"),
        )
        adv = (1 - comp["ce-scaling"]["jct_s"] / comp["lambdaml"]["jct_s"]) * 100
        tuning_table.add_row(
            mult, comp["ce-scaling"]["jct_s"], comp["lambdaml"]["jct_s"], adv
        )
        tuning_series[mult] = comp

    training_table = ComparisonTable(
        title="Fig. 15 — training cost vs QoS multiple",
        columns=["qos_x", "ce-scaling", "siren", "advantage_%"],
    )
    training_series = {}
    for mult in QOS_MULTIPLES:
        comp = training_comparison(
            WORKLOAD, Objective.MIN_COST_GIVEN_QOS, seeds, qos_multiple=mult,
            methods=("ce-scaling", "siren"),
        )
        adv = (1 - comp["ce-scaling"]["cost_usd"] / comp["siren"]["cost_usd"]) * 100
        training_table.add_row(
            mult, comp["ce-scaling"]["cost_usd"], comp["siren"]["cost_usd"], adv
        )
        training_series[mult] = comp

    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[tuning_table, training_table],
        series={"tuning": tuning_series, "training": training_series},
        notes="paper: the CE advantage is largest under tight constraints",
    )


if __name__ == "__main__":
    print(run().render())
