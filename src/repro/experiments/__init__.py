"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(scale="small", seed=0) -> ExperimentResult`` and
can be executed directly (``python -m repro.experiments.fig09_tuning_jct``).
``repro.experiments.registry`` maps experiment ids to their run functions.
"""

from repro.experiments.harness import ExperimentResult, Scale, SCALES
from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "SCALES", "Scale", "run_experiment"]
