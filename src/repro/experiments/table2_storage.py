"""Table II — JCT/cost of each storage service under Cirrus, relative to S3.

Trains LR (Higgs) and MobileNet (Cifar10) at 10 and 50 functions x 1769 MB
under Cirrus-style static execution, pinning the storage service, and
reports JCT and cost normalized to S3. DynamoDB is N/A for MobileNet (12 MB
model exceeds the 400 KB item cap).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InfeasibleAllocationError
from repro.common.types import Allocation, StorageKind
from repro.analytical.costmodel import storage_cost
from repro.analytical.timemodel import epoch_time
from repro.config import DEFAULT_PLATFORM
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.ml.models import workload
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "table2"
TITLE = "Storage services under Cirrus-style execution, normalized to S3"

WORKLOADS = ("lr-higgs", "mobilenet-cifar10")
FUNCTION_COUNTS = (10, 50)
MEMORY_MB = 1769


def _measure(w, alloc: Allocation, epochs: int, seed: int) -> tuple[float, float]:
    """Simulated (JCT, cost) of ``epochs`` static epochs under ``alloc``."""
    platform = FaaSPlatform(platform=DEFAULT_PLATFORM, seed=seed)
    base = epoch_time(w, alloc)
    jct = 0.0
    cost = 0.0
    for e in range(epochs):
        res = platform.execute_epoch(
            EpochExecution(
                group=alloc.describe(),
                n_functions=alloc.n_functions,
                memory_mb=alloc.memory_mb,
                load_s=base.load_s,
                compute_s=base.compute_s,
                sync_s=base.sync_s,
            )
        )
        jct += res.wall_time_s
        cost += res.billed_usd + storage_cost(w, alloc, res.wall_time_s)
    return jct, cost


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    epochs = 5
    table = ComparisonTable(
        title="Table II (JCT and cost relative to S3; N/A = object too large)",
        columns=["workload", "n_functions", "storage", "jct_rel", "cost_rel"],
    )
    series: dict = {}
    for wname in WORKLOADS:
        w = workload(wname)
        for n in FUNCTION_COUNTS:
            results: dict[str, tuple[float, float]] = {}
            for storage in StorageKind:
                alloc = Allocation(n, MEMORY_MB, storage)
                try:
                    samples = [
                        _measure(w, alloc, epochs, s) for s in sc.seeds(seed)
                    ]
                except InfeasibleAllocationError:
                    results[storage.value] = (float("nan"), float("nan"))
                    continue
                results[storage.value] = (
                    float(np.mean([s[0] for s in samples])),
                    float(np.mean([s[1] for s in samples])),
                )
            base_jct, base_cost = results["s3"]
            for storage in StorageKind:
                jct, cost = results[storage.value]
                if np.isnan(jct):
                    table.add_row(wname, n, storage.value, "N/A", "N/A")
                else:
                    table.add_row(
                        wname, n, storage.value, jct / base_jct, cost / base_cost
                    )
            series[(wname, n)] = {
                k: (v[0] / base_jct, v[1] / base_cost) for k, v in results.items()
            }
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes=(
            "our simulator's sequential-transfer sync model (Eq. 3 with "
            "fitted constants) amplifies S3's penalty vs the paper's "
            "measurements; orderings and the DynamoDB N/A gate match"
        ),
    )


if __name__ == "__main__":
    print(run().render())
