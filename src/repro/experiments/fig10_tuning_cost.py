"""Fig. 10 — hyperparameter-tuning cost under a QoS constraint.

Paper: CE-scaling achieves up to ~42% cost reduction; improvements are
larger for the big models (BERT, ResNet50).
"""

from __future__ import annotations

from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.experiments.common import tuning_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig10"
TITLE = "Tuning cost given a QoS constraint"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    table = ComparisonTable(
        title=f"Cost (USD), SHA {spec.n_trials} trials / {spec.n_stages} stages",
        columns=["workload", "ce-scaling", "lambdaml", "siren", "fixed",
                 "ce_vs_best_static_%"],
    )
    series: dict = {}
    for name in sc.workloads:
        comp = tuning_comparison(
            name, spec, Objective.MIN_COST_GIVEN_QOS, sc.seeds(seed),
            budget_multiple=10.0, qos_multiple=3.0,
        )
        best_static = min(comp["lambdaml"]["cost_usd"], comp["siren"]["cost_usd"])
        improvement = (1 - comp["ce-scaling"]["cost_usd"] / best_static) * 100
        table.add_row(
            name,
            comp["ce-scaling"]["cost_usd"],
            comp["lambdaml"]["cost_usd"],
            comp["siren"]["cost_usd"],
            comp["fixed"]["cost_usd"],
            improvement,
        )
        series[name] = comp
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes="paper: CE-scaling up to ~42% cheaper under the same deadline",
    )


if __name__ == "__main__":
    print(run().render())
