"""Fig. 19/20 — validation of the analytical JCT/cost models.

Trains LR on Higgs with S3 storage, measures simulated execution (with
noise, cold starts, barrier effects — the reproduction's CloudWatch ground
truth) and compares against the analytical estimates:

* Fig. 19: memory fixed at 1769 MB, function count swept
  (paper: time error 0.56-4.9%, cost error 0.2-3.72%).
* Fig. 20: 10 functions, memory swept
  (paper: time error 2.1-4.3%, cost error 1.5-7.6%).
"""

from __future__ import annotations

import numpy as np

from repro.common.types import Allocation, StorageKind
from repro.analytical.costmodel import epoch_cost, storage_cost
from repro.analytical.timemodel import epoch_time
from repro.config import DEFAULT_PLATFORM
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.ml.models import workload
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig19_20"
TITLE = "Analytical model vs simulated measurement (LR-Higgs, S3)"

FUNCTION_SWEEP = (10, 20, 30, 40, 50)
MEMORY_SWEEP = (512, 1024, 1769, 3072, 6144)
EPOCHS = 10


def _measure(w, alloc: Allocation, seeds: list[int]) -> tuple[float, float]:
    """Mean measured per-epoch (time, cost) over seeds, warm executions."""
    times, costs = [], []
    for s in seeds:
        platform = FaaSPlatform(platform=DEFAULT_PLATFORM, seed=s)
        base = epoch_time(w, alloc)
        # Warm-up epoch absorbs the cold start (the paper measures steady
        # state through CloudWatch over full runs).
        platform.execute_epoch(
            EpochExecution(
                group="v", n_functions=alloc.n_functions,
                memory_mb=alloc.memory_mb, load_s=base.load_s,
                compute_s=base.compute_s, sync_s=base.sync_s,
            )
        )
        for _ in range(EPOCHS):
            res = platform.execute_epoch(
                EpochExecution(
                    group="v", n_functions=alloc.n_functions,
                    memory_mb=alloc.memory_mb, load_s=base.load_s,
                    compute_s=base.compute_s, sync_s=base.sync_s,
                )
            )
            times.append(res.wall_time_s)
            costs.append(res.billed_usd + storage_cost(w, alloc, res.wall_time_s))
    return float(np.mean(times)), float(np.mean(costs))


def _sweep(w, allocs: list[Allocation], seeds: list[int], label: str
           ) -> tuple[ComparisonTable, dict]:
    table = ComparisonTable(
        title=label,
        columns=["allocation", "est_time_s", "meas_time_s", "time_err_%",
                 "est_cost", "meas_cost", "cost_err_%"],
    )
    errs = {"time": [], "cost": []}
    for alloc in allocs:
        est_t = epoch_time(w, alloc).total_s
        est_c = epoch_cost(w, alloc).total_usd
        meas_t, meas_c = _measure(w, alloc, seeds)
        terr = abs(est_t - meas_t) / meas_t * 100
        cerr = abs(est_c - meas_c) / meas_c * 100
        errs["time"].append(terr)
        errs["cost"].append(cerr)
        table.add_row(alloc.describe(), est_t, meas_t, terr, est_c, meas_c, cerr)
    return table, errs


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    seeds = sc.seeds(seed)
    w = workload("lr-higgs")
    fn_allocs = [Allocation(n, 1769, StorageKind.S3) for n in FUNCTION_SWEEP]
    mem_allocs = [Allocation(10, m, StorageKind.S3) for m in MEMORY_SWEEP]
    t1, e1 = _sweep(w, fn_allocs, seeds, "Fig. 19 — varying function count (m=1769)")
    t2, e2 = _sweep(w, mem_allocs, seeds, "Fig. 20 — varying memory (n=10)")
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[t1, t2],
        series={"fig19": e1, "fig20": e2},
        notes=(
            "paper error bands: time 0.56-4.9% / cost 0.2-3.72% (fn sweep); "
            "time 2.1-4.3% / cost 1.5-7.6% (memory sweep)"
        ),
    )


if __name__ == "__main__":
    print(run().render())
