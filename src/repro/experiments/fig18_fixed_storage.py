"""Fig. 18 — CE-scaling restricted to one external storage at a time.

Trains LR-Higgs and MobileNet-Cifar10 with CE-scaling pinned to DynamoDB,
S3, ElastiCache, or VM-PS. Paper observations reproduced here: JCT/cost
vary across services; the best service depends on the model (DynamoDB best
trade-off for LR, ElastiCache/VM-PS for MobileNet); DynamoDB is N/A for
models above its 400 KB item cap; and low-latency storage alone does not
guarantee the best JCT or cost.
"""

from __future__ import annotations

from repro.common.errors import ConstraintError, InfeasibleAllocationError
from repro.common.types import StorageKind
from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload
from repro.experiments.common import training_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig18"
TITLE = "CE-scaling under fixed external storage (training)"

WORKLOADS = ("lr-higgs", "mobilenet-cifar10")


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    seeds = sc.seeds(seed)
    table = ComparisonTable(
        title="JCT/cost per pinned storage (D/S/E/V)",
        columns=["workload", "storage", "jct_s", "cost_usd", "comm_s", "storage_usd"],
    )
    series: dict = {}
    for name in WORKLOADS:
        series[name] = {}
        for storage in StorageKind:
            try:
                profile = profile_workload(name, storage_pin=storage)
            except (InfeasibleAllocationError, ConstraintError):
                table.add_row(name, storage.short, "N/A", "N/A", "N/A", "N/A")
                series[name][storage.value] = None
                continue
            comp = training_comparison(
                name, Objective.MIN_JCT_GIVEN_BUDGET, seeds,
                budget_multiple=2.0, methods=("ce-scaling",), profile=profile,
                storage_pin=storage,
            )
            row = comp["ce-scaling"]
            table.add_row(
                name, storage.short, row["jct_s"], row["cost_usd"],
                row["comm_s"], row["storage_usd"],
            )
            series[name][storage.value] = row
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series=series,
        notes=(
            "paper: best storage depends on the model; DynamoDB N/A above "
            "400 KB; expensive low-latency storage is not always best"
        ),
    )


if __name__ == "__main__":
    print(run().render())
