"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

import importlib
from typing import Callable

from repro.common.errors import ValidationError
from repro.experiments.harness import ExperimentResult

_MODULES: dict[str, str] = {
    "fig03": "repro.experiments.fig03_motivation",
    "fig04": "repro.experiments.fig04_prediction_error",
    "table1": "repro.experiments.table1_storage_catalog",
    "table2": "repro.experiments.table2_storage",
    "fig07": "repro.experiments.fig07_pareto",
    "fig09": "repro.experiments.fig09_tuning_jct",
    "fig10": "repro.experiments.fig10_tuning_cost",
    "fig11": "repro.experiments.fig11_stage_allocation",
    "fig12": "repro.experiments.fig12_training_jct",
    "fig13": "repro.experiments.fig13_training_cost",
    "fig14_15": "repro.experiments.fig14_15_constraints",
    "fig16_17": "repro.experiments.fig16_17_same_storage",
    "fig18": "repro.experiments.fig18_fixed_storage",
    "fig19_20": "repro.experiments.fig19_20_model_validation",
    "fig21": "repro.experiments.fig21_overhead",
    # Extensions beyond the paper (DESIGN.md §6 / README "Beyond the paper").
    "ext_bohb": "repro.experiments.ext_bohb",
    "ext_sensitivity": "repro.experiments.ext_sensitivity",
}


class _LazyRegistry(dict):
    """Maps experiment id -> run callable, importing modules on demand."""

    def __missing__(self, key: str) -> Callable[..., ExperimentResult]:
        if key not in _MODULES:
            raise ValidationError(
                f"unknown experiment {key!r}; available: {sorted(_MODULES)}"
            )
        module = importlib.import_module(_MODULES[key])
        self[key] = module.run
        return self[key]

    def available(self) -> list[str]:
        return sorted(_MODULES)


REGISTRY = _LazyRegistry()


def run_experiment(
    experiment: str, scale: str = "small", seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig09"``)."""
    return REGISTRY[experiment](scale=scale, seed=seed)
