"""Table I — qualitative comparison of external storage services."""

from __future__ import annotations

from repro.storage.catalog import table1_rows
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult

EXPERIMENT = "table1"
TITLE = "External storage service characteristics"


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = table1_rows()
    table = ComparisonTable(
        title="Table I",
        columns=["service", "elastic_scaling", "latency", "pricing_pattern", "cost"],
    )
    for r in rows:
        table.add_row(
            r["service"], r["elastic_scaling"], r["latency"],
            r["pricing_pattern"], r["cost_tier"],
        )
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table],
        series={"rows": rows},
    )


if __name__ == "__main__":
    print(run().render())
