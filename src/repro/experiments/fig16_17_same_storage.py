"""Fig. 16/17 — CE-scaling vs Siren/Cirrus when everyone uses the *same*
external storage (S3 or VM-PS), MobileNet on Cifar10.

Isolates CE-scaling's non-storage advantages: exact per-stage partitioning
(tuning) and adaptive n/memory adjustment + delayed restart (training).
Paper: CE-scaling still wins both JCT and cost under either storage.
"""

from __future__ import annotations

from repro.common.types import StorageKind
from repro.tuning.plan import Objective
from repro.workflow.metrics import ComparisonTable
from repro.workflow.runner import profile_workload
from repro.experiments.common import training_comparison, tuning_comparison
from repro.experiments.harness import ExperimentResult, get_scale

EXPERIMENT = "fig16_17"
TITLE = "All methods pinned to the same storage (MobileNet-Cifar10)"

WORKLOAD = "mobilenet-cifar10"
STORAGES = (StorageKind.S3, StorageKind.VMPS)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sc = get_scale(scale)
    spec = sc.sha_spec()
    seeds = sc.seeds(seed)

    tuning_table = ComparisonTable(
        title="Fig. 16 — tuning under pinned storage",
        columns=["storage", "method", "jct_s", "cost_usd"],
    )
    training_table = ComparisonTable(
        title="Fig. 17 — training under pinned storage",
        columns=["storage", "method", "jct_s", "cost_usd", "comm_s", "storage_usd"],
    )
    series: dict = {"tuning": {}, "training": {}}
    for storage in STORAGES:
        profile = profile_workload(WORKLOAD, storage_pin=storage)
        tcomp = tuning_comparison(
            WORKLOAD, spec, Objective.MIN_JCT_GIVEN_BUDGET, seeds,
            budget_multiple=1.3,
            methods=("ce-scaling", "lambdaml"),
            profile=profile,
        )
        for method, row in tcomp.items():
            tuning_table.add_row(storage.value, method, row["jct_s"], row["cost_usd"])
        series["tuning"][storage.value] = tcomp

        methods = ("ce-scaling", "siren") if storage is StorageKind.S3 else (
            "ce-scaling", "cirrus"
        )
        rcomp = training_comparison(
            WORKLOAD, Objective.MIN_JCT_GIVEN_BUDGET, seeds,
            budget_multiple=2.0, methods=methods, profile=profile,
            storage_pin=storage,
        )
        for method, row in rcomp.items():
            training_table.add_row(
                storage.value, method, row["jct_s"], row["cost_usd"],
                row["comm_s"], row["storage_usd"],
            )
        series["training"][storage.value] = rcomp

    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[tuning_table, training_table],
        series=series,
        notes=(
            "under a pinned storage, the remaining CE advantages are exact "
            "partitioning, adaptive adjustment, and delayed restart"
        ),
    )


if __name__ == "__main__":
    print(run().render())
