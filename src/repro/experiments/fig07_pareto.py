"""Fig. 7 — the Pareto boundary of the cost-JCT allocation space.

Samples 50 random allocations for LR-Higgs, plots (as rows) their per-epoch
execution time and cost, and extracts the Pareto boundary that CE-scaling
plans over.
"""

from __future__ import annotations

from repro.common.rng import stream_for
from repro.common.types import Allocation, StorageKind
from repro.analytical.costmodel import epoch_cost
from repro.analytical.pareto import ProfiledAllocation, is_dominated, pareto_front
from repro.analytical.timemodel import epoch_time, is_feasible
from repro.ml.models import workload
from repro.workflow.metrics import ComparisonTable
from repro.experiments.harness import ExperimentResult

EXPERIMENT = "fig07"
TITLE = "Pareto boundary of the cost-JCT space (LR-Higgs, 50 allocations)"


def sample_allocations(w, n: int, seed: int) -> list[ProfiledAllocation]:
    """``n`` random feasible allocations with their (time, cost)."""
    rng = stream_for(seed, "fig07")
    memories = [512, 1024, 1769, 2048, 3072, 4096, 6144, 8192, 10240]
    points: list[ProfiledAllocation] = []
    while len(points) < n:
        alloc = Allocation(
            n_functions=int(rng.integers(1, 200)),
            memory_mb=int(rng.choice(memories)),
            storage=StorageKind(rng.choice([s.value for s in StorageKind])),
        )
        if not is_feasible(w, alloc):
            continue
        t = epoch_time(w, alloc)
        points.append(
            ProfiledAllocation(allocation=alloc, time=t, cost=epoch_cost(w, alloc, t))
        )
    return points


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    w = workload("lr-higgs")
    points = sample_allocations(w, 50, seed)
    front = pareto_front(points)
    table = ComparisonTable(
        title="Pareto boundary (fastest to cheapest)",
        columns=["allocation", "epoch_time_s", "epoch_cost_usd"],
    )
    for p in front:
        table.add_row(p.allocation.describe(), p.time_s, p.cost_usd)
    scatter = ComparisonTable(
        title="All sampled allocations",
        columns=["allocation", "epoch_time_s", "epoch_cost_usd", "on_boundary"],
    )
    for p in sorted(points, key=lambda q: q.time_s):
        scatter.add_row(
            p.allocation.describe(), p.time_s, p.cost_usd, p in front
        )
    dominated = [p for p in points if is_dominated(p, points)]
    return ExperimentResult(
        experiment=EXPERIMENT,
        title=TITLE,
        tables=[table, scatter],
        series={
            "n_points": len(points),
            "n_front": len(front),
            "n_dominated": len(dominated),
        },
        notes="every off-boundary point must be dominated by some boundary point",
    )


if __name__ == "__main__":
    print(run().render())
