"""The provenance stamp: who/what/how of one run, in every capture's meta.

A :class:`ProvenanceStamp` identifies a run well enough to reproduce it:
the CLI command and argv, the workload/method/seed triple, the package
version, a short hash of the platform configuration, and the schema
versions of whichever captures the run enabled. It is threaded — via the
duck-typed ``to_meta()`` contract in :func:`repro.common.meta.coerce_meta`
— through every capture writer's ``meta`` block, so a telemetry JSON, an
event log, a profile and a timeseries capture written by the same run all
carry the same provenance core and can be re-associated later.

The stamp's :meth:`identity` is deliberately narrower than its
:meth:`to_meta`: output paths and store locations (argv) never influence
the run id, so saving the same run into two different stores yields the
same ``r<hash>`` identifier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, is_dataclass

from repro._version import __version__


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _normalize(obj: object) -> object:
    """JSON-safe view of a config tree: enum keys and leaves become strings."""
    if isinstance(obj, dict):
        return {str(k): _normalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def hash_config(config: object) -> str:
    """A short stable digest of a (possibly nested) config dataclass."""
    if is_dataclass(config) and not isinstance(config, type):
        payload = asdict(config)
    elif isinstance(config, dict):
        payload = dict(config)
    else:
        payload = {"repr": repr(config)}
    # Normalization covers enum-keyed maps (StorageKind -> bandwidth) and
    # enum leaves; the digest only needs stability, not round-tripping.
    return _sha256_text(json.dumps(_normalize(payload), sort_keys=True))[:12]


@dataclass(frozen=True)
class ProvenanceStamp:
    """Identifies one run: command, workload, seed, config and versions.

    Attributes:
        command: the CLI subcommand (or an embedding library's label).
        workload: workload name, "" when the command has none.
        method: training/tuning method, "" when not applicable.
        seed: the run's seed.
        package_version: ``repro.__version__`` at capture time.
        config_hash: short sha256 of the platform configuration.
        argv: the CLI argument vector (informational; never hashed).
        schema_versions: (capture kind, schema id) pairs for the captures
            this run enabled, sorted by kind.
    """

    command: str = ""
    workload: str = ""
    method: str = ""
    seed: int = 0
    package_version: str = __version__
    config_hash: str = ""
    argv: tuple[str, ...] = ()
    schema_versions: tuple[tuple[str, str], ...] = ()

    @classmethod
    def collect(
        cls,
        command: str,
        workload: str = "",
        method: str = "",
        seed: int = 0,
        argv: tuple[str, ...] | list[str] | None = None,
        config: object | None = None,
        schema_versions: dict[str, str] | None = None,
    ) -> "ProvenanceStamp":
        """Build a stamp from run context, hashing the platform config.

        ``config`` defaults to :data:`repro.config.DEFAULT_PLATFORM` (it is
        imported lazily so this module stays a near-leaf).
        """
        if config is None:
            from repro.config import DEFAULT_PLATFORM

            config = DEFAULT_PLATFORM
        return cls(
            command=command,
            workload=workload,
            method=method,
            seed=int(seed),
            config_hash=hash_config(config),
            argv=tuple(str(a) for a in (argv or ())),
            schema_versions=tuple(sorted((schema_versions or {}).items())),
        )

    def with_schemas(self, schema_versions: dict[str, str]) -> "ProvenanceStamp":
        """A copy of this stamp carrying the given capture schema map."""
        return ProvenanceStamp(
            command=self.command,
            workload=self.workload,
            method=self.method,
            seed=self.seed,
            package_version=self.package_version,
            config_hash=self.config_hash,
            argv=self.argv,
            schema_versions=tuple(sorted(schema_versions.items())),
        )

    def to_meta(self) -> dict:
        """The capture-writer meta block (the ``coerce_meta`` contract).

        The four legacy keys keep their historical names and positions so
        every existing consumer (``repro report``, diagnose, tests) reads
        stamped captures exactly as it read dict-meta ones; provenance
        proper nests under one new key.
        """
        return {
            "command": self.command,
            "workload": self.workload,
            "method": self.method,
            "seed": self.seed,
            "provenance": {
                "package_version": self.package_version,
                "config_hash": self.config_hash,
                "argv": list(self.argv),
                "schema_versions": {
                    kind: schema for kind, schema in self.schema_versions
                },
            },
        }

    def identity(self) -> dict:
        """The run-id ingredients: everything except argv and schemas.

        argv carries output paths (``--telemetry out.json``) that must not
        change a run's identity; the schema map is derived from which
        artifacts exist, which the run id already hashes directly.
        """
        return {
            "command": self.command,
            "workload": self.workload,
            "method": self.method,
            "seed": self.seed,
            "package_version": self.package_version,
            "config_hash": self.config_hash,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "ProvenanceStamp":
        """Rebuild a stamp from a capture's meta block (best effort)."""
        prov = dict(meta.get("provenance") or {})
        return cls(
            command=str(meta.get("command", "")),
            workload=str(meta.get("workload", "")),
            method=str(meta.get("method", "")),
            seed=int(meta.get("seed", 0) or 0),
            package_version=str(prov.get("package_version", "")),
            config_hash=str(prov.get("config_hash", "")),
            argv=tuple(str(a) for a in prov.get("argv", [])),
            schema_versions=tuple(
                sorted(
                    (str(k), str(v))
                    for k, v in dict(prov.get("schema_versions") or {}).items()
                )
            ),
        )
