"""The ``--save-run`` ride-along: snapshot live sessions into a bundle.

``save_run`` runs *after* a command's session context managers exit
cleanly: each session still holds its collector (registry, tracer, event
log, sampler, profiler), so the saver serializes exactly the documents
the sessions would have written to ``--telemetry``/``--events``/... paths
— same writers, same bytes — and stores them as one content-addressed
:class:`~repro.runs.bundle.RunBundle`.
"""

from __future__ import annotations

from repro.runs.bundle import RunBundle
from repro.runs.provenance import ProvenanceStamp
from repro.runs.store import RunStore


def collect_artifacts(
    stamp: ProvenanceStamp,
    telemetry=None,
    slo=None,
    profile=None,
    timeseries=None,
    fault_ledger=None,
    fault_plan=None,
) -> tuple[dict[str, str], dict]:
    """(artifact texts by kind, run summary) from live session objects.

    Each argument is the session (or ledger/plan) a command already holds;
    sessions that never installed a collector contribute nothing, so the
    bundle carries exactly the captures the run enabled.
    """
    artifacts: dict[str, str] = {}
    summary: dict = {}
    if telemetry is not None and telemetry.registry is not None:
        artifacts["telemetry"] = telemetry.metrics_json()
        summary = dict(telemetry.run_summary)
    if telemetry is not None and telemetry.tracer is not None:
        artifacts["trace"] = telemetry.tracer.to_chrome_trace()
    if slo is not None and slo.log is not None:
        artifacts["events"] = slo.log.to_jsonl()
    if slo is not None and slo.guard is not None:
        from repro.slo import evaluate_guard

        artifacts["slo"] = evaluate_guard(slo.guard, meta=slo.meta).to_json()
    if profile is not None and profile.profiler is not None:
        from repro.profiling.capture import to_json as profile_to_json
        from repro.profiling.flamegraph import to_collapsed

        payload = profile.payload()
        artifacts["profile"] = profile_to_json(payload)
        artifacts["flamegraph"] = to_collapsed(payload)
    if timeseries is not None and timeseries.sampler is not None:
        from repro.timeseries.capture import to_json as timeseries_to_json

        artifacts["timeseries"] = timeseries_to_json(timeseries.payload())
    if fault_ledger is not None:
        artifacts["faults"] = fault_ledger.to_json(
            fault_plan.to_payload() if fault_plan is not None else None,
            meta=stamp,
        )
    return artifacts, summary


def save_run(
    store: RunStore,
    stamp: ProvenanceStamp,
    telemetry=None,
    slo=None,
    profile=None,
    timeseries=None,
    fault_ledger=None,
    fault_plan=None,
) -> RunBundle:
    """Bundle every live capture and persist it; returns the bundle."""
    artifacts, summary = collect_artifacts(
        stamp,
        telemetry=telemetry,
        slo=slo,
        profile=profile,
        timeseries=timeseries,
        fault_ledger=fault_ledger,
        fault_plan=fault_plan,
    )
    bundle = RunBundle(stamp, artifacts, summary=summary)
    store.save(bundle)
    return bundle
