"""The ``repro-bundle/v1`` manifest: one artifact that identifies a run.

A :class:`RunBundle` ties together whichever captures a run enabled —
telemetry, Chrome trace, event log, SLO report, profile, timeseries,
fault ledger — as content-addressed (sha256) artifacts behind one
byte-stable manifest. The manifest's ``run_id`` is derived from the
provenance identity plus the digests of the *deterministic* artifacts, so
two identical runs produce the same id and byte-identical manifests,
while host-timed captures (the hot-path profile and its flamegraph,
whose frame timings are wall-clock) ride along without perturbing
identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.meta import coerce_meta
from repro.runs.provenance import ProvenanceStamp

BUNDLE_SCHEMA = "repro-bundle/v1"

#: Canonical artifact kinds → (bundle filename, schema id or None).
#: ``None`` marks unversioned formats (Chrome trace JSON, collapsed
#: stacks); everything else is a REP006-registered document.
ARTIFACT_KINDS: dict[str, tuple[str, str | None]] = {
    "telemetry": ("telemetry.json", "repro-telemetry/v1"),
    "trace": ("trace.json", None),
    "events": ("events.jsonl", "repro-events/v1"),
    "slo": ("slo-report.json", "repro-slo-report/v1"),
    "profile": ("profile.json", "repro-profile/v1"),
    "flamegraph": ("flamegraph.txt", None),
    "timeseries": ("timeseries.json", "repro-timeseries/v1"),
    "faults": ("fault-report.json", "repro-faults-report/v1"),
}

#: Kinds whose bytes depend on the host clock: they are bundled and
#: digested, but excluded from run-id derivation so a re-run of the same
#: (workload, seed, config) keeps the same identity.
HOST_TIMED_KINDS = frozenset({"profile", "flamegraph"})

_TOP_KEYS = frozenset({"schema", "meta", "run_id", "artifacts", "summary"})

_ARTIFACT_KEYS = frozenset(
    {"kind", "filename", "sha256", "n_bytes", "artifact_schema", "deterministic"}
)


def sha256_text(text: str) -> str:
    """The hex digest content address of one artifact's bytes."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Artifact:
    """One content-addressed capture inside a bundle."""

    kind: str
    text: str

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise ValidationError(
                f"unknown artifact kind {self.kind!r}; known: "
                f"{', '.join(sorted(ARTIFACT_KINDS))}"
            )

    @property
    def filename(self) -> str:
        return ARTIFACT_KINDS[self.kind][0]

    @property
    def schema(self) -> str | None:
        return ARTIFACT_KINDS[self.kind][1]

    @property
    def sha256(self) -> str:
        return sha256_text(self.text)

    @property
    def deterministic(self) -> bool:
        return self.kind not in HOST_TIMED_KINDS

    def to_entry(self) -> dict:
        """The manifest row for this artifact."""
        return {
            "kind": self.kind,
            "filename": self.filename,
            "sha256": self.sha256,
            "n_bytes": len(self.text.encode("utf-8")),
            "artifact_schema": self.schema,
            "deterministic": self.deterministic,
        }


def derive_run_id(stamp: ProvenanceStamp, artifacts: list[Artifact]) -> str:
    """Deterministic run id: provenance identity + deterministic digests."""
    ingredients = {
        "provenance": stamp.identity(),
        "artifacts": [
            [a.kind, a.sha256]
            for a in sorted(artifacts, key=lambda a: a.kind)
            if a.deterministic
        ],
    }
    digest = hashlib.sha256(
        json.dumps(ingredients, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return "r" + digest[:12]


class RunBundle:
    """A provenance stamp, its artifacts, and the derived manifest."""

    def __init__(
        self,
        stamp: ProvenanceStamp,
        artifacts: dict[str, str],
        summary: dict | None = None,
    ) -> None:
        self.artifacts = [
            Artifact(kind, text) for kind, text in sorted(artifacts.items())
        ]
        self.stamp = stamp.with_schemas(
            {a.kind: a.schema for a in self.artifacts if a.schema is not None}
        )
        self.summary = dict(summary or {})
        self.run_id = derive_run_id(self.stamp, self.artifacts)

    def manifest(self) -> dict:
        """The ``repro-bundle/v1`` document for this bundle."""
        return {
            "schema": BUNDLE_SCHEMA,
            "meta": coerce_meta(self.stamp),
            "run_id": self.run_id,
            "artifacts": [a.to_entry() for a in self.artifacts],
            "summary": self.summary,
        }

    def artifact(self, kind: str) -> Artifact | None:
        for a in self.artifacts:
            if a.kind == kind:
                return a
        return None


def manifest_to_json(manifest: dict) -> str:
    """Byte-stable serialization (sorted keys, trailing newline)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def load_manifest(text: str) -> dict:
    """Parse and validate a ``repro-bundle/v1`` manifest document."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"manifest is not valid JSON: {exc}") from exc
    validate_manifest(payload)
    return payload


def validate_manifest(payload: dict) -> None:
    """Raise :class:`ValidationError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ValidationError("manifest must be a JSON object")
    schema = payload.get("schema")
    if schema != BUNDLE_SCHEMA:
        raise ValidationError(
            f"expected schema {BUNDLE_SCHEMA!r}, got {schema!r}"
        )
    if set(payload) != _TOP_KEYS:
        raise ValidationError(
            f"manifest top-level keys {sorted(payload)} do not match the "
            f"{BUNDLE_SCHEMA} contract {sorted(_TOP_KEYS)}"
        )
    if not isinstance(payload["artifacts"], list):
        raise ValidationError("manifest 'artifacts' must be a list")
    for entry in payload["artifacts"]:
        missing = _ARTIFACT_KEYS - set(entry)
        if missing:
            raise ValidationError(
                f"manifest artifact {entry.get('kind')!r} lacks keys "
                f"{sorted(missing)}"
            )
        if entry["kind"] not in ARTIFACT_KINDS:
            raise ValidationError(
                f"manifest names unknown artifact kind {entry['kind']!r}"
            )
    run_id = payload.get("run_id", "")
    if not (isinstance(run_id, str) and run_id.startswith("r") and len(run_id) == 13):
        raise ValidationError(f"malformed run id {run_id!r}")


def render_manifest(manifest: dict) -> str:
    """Human-readable ``repro runs show`` view of one manifest."""
    meta = manifest.get("meta", {})
    prov = dict(meta.get("provenance") or {})
    lines = [
        f"run {manifest['run_id']}",
        f"  command : {meta.get('command', '-') or '-'}"
        + (f"  workload={meta['workload']}" if meta.get("workload") else "")
        + (f"  method={meta['method']}" if meta.get("method") else "")
        + f"  seed={meta.get('seed', 0)}",
        f"  version : {prov.get('package_version', '-') or '-'}"
        f"  config={prov.get('config_hash', '-') or '-'}",
    ]
    if prov.get("argv"):
        lines.append(f"  argv    : {' '.join(prov['argv'])}")
    lines.append("  artifacts:")
    for entry in manifest["artifacts"]:
        schema = entry["artifact_schema"] or "-"
        det = "" if entry["deterministic"] else "  (host-timed)"
        lines.append(
            f"    {entry['kind']:>10s}  {entry['filename']:<18s} "
            f"{entry['n_bytes']:>9d} B  sha256={entry['sha256'][:12]}  "
            f"{schema}{det}"
        )
    summary = manifest.get("summary") or {}
    if summary:
        parts = []
        for key in sorted(summary):
            value = summary[key]
            parts.append(
                f"{key}={value:.4f}" if isinstance(value, float) else f"{key}={value}"
            )
        lines.append("  summary : " + "  ".join(parts))
    return "\n".join(lines)
