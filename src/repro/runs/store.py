"""The local run registry: content-addressed bundles under ``.repro/runs``.

Layout::

    .repro/runs/
        manifests/<run_id>.json     # repro-bundle/v1, byte-stable
        objects/<aa>/<sha256>       # artifact bytes, content-addressed

Saving the same run twice is a no-op at the byte level: artifact objects
are keyed by their sha256, the manifest by the deterministic run id, and
both serializations are byte-stable — so the registry itself never
injects nondeterminism (no timestamps, no counters; ordering is the
lexicographic run-id order).
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import ValidationError
from repro.runs.bundle import (
    RunBundle,
    load_manifest,
    manifest_to_json,
    sha256_text,
)

DEFAULT_STORE_ROOT = ".repro/runs"


class RunStore:
    """A directory of content-addressed run bundles."""

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)

    @property
    def manifest_dir(self) -> Path:
        return self.root / "manifests"

    @property
    def object_dir(self) -> Path:
        return self.root / "objects"

    def _object_path(self, sha256: str) -> Path:
        return self.object_dir / sha256[:2] / sha256

    # -- writing -----------------------------------------------------------

    def save(self, bundle: RunBundle) -> str:
        """Persist a bundle; returns its run id. Idempotent."""
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        for artifact in bundle.artifacts:
            path = self._object_path(artifact.sha256)
            if not path.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(artifact.text, encoding="utf-8")
        manifest_path = self.manifest_dir / f"{bundle.run_id}.json"
        manifest_path.write_text(
            manifest_to_json(bundle.manifest()), encoding="utf-8"
        )
        return bundle.run_id

    # -- reading -----------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All stored run ids, lexicographically sorted."""
        if not self.manifest_dir.is_dir():
            return []
        return sorted(
            p.stem for p in self.manifest_dir.glob("r*.json") if p.is_file()
        )

    def resolve(self, ref: str) -> str:
        """Resolve a full run id or unique prefix to a stored run id."""
        ids = self.run_ids()
        if ref in ids:
            return ref
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValidationError(
                f"no run matching {ref!r} in {self.root} "
                f"({len(ids)} runs stored)"
            )
        raise ValidationError(
            f"ambiguous run prefix {ref!r}: matches {', '.join(matches)}"
        )

    def load(self, ref: str) -> dict:
        """Load and validate the manifest for a run id (or unique prefix)."""
        run_id = self.resolve(ref)
        text = (self.manifest_dir / f"{run_id}.json").read_text(encoding="utf-8")
        return load_manifest(text)

    def list(self) -> list[dict]:
        """All manifests, sorted by run id."""
        return [self.load(run_id) for run_id in self.run_ids()]

    def read_artifact(self, manifest: dict, kind: str) -> str:
        """The text of one artifact referenced by a loaded manifest."""
        for entry in manifest["artifacts"]:
            if entry["kind"] == kind:
                path = self._object_path(entry["sha256"])
                if not path.is_file():
                    raise ValidationError(
                        f"run {manifest['run_id']} artifact {kind!r} object "
                        f"{entry['sha256'][:12]} is missing from the store"
                    )
                text = path.read_text(encoding="utf-8")
                if sha256_text(text) != entry["sha256"]:
                    raise ValidationError(
                        f"run {manifest['run_id']} artifact {kind!r} is "
                        f"corrupt: stored bytes do not match sha256 "
                        f"{entry['sha256'][:12]}"
                    )
                return text
        raise ValidationError(
            f"run {manifest['run_id']} has no {kind!r} artifact; present: "
            f"{', '.join(e['kind'] for e in manifest['artifacts']) or 'none'}"
        )

    # -- maintenance -------------------------------------------------------

    def export(self, ref: str, dest: str | Path) -> list[Path]:
        """Materialize a run's manifest and artifacts into ``dest``."""
        manifest = self.load(ref)
        dest_dir = Path(dest)
        dest_dir.mkdir(parents=True, exist_ok=True)
        written = []
        manifest_path = dest_dir / "manifest.json"
        manifest_path.write_text(manifest_to_json(manifest), encoding="utf-8")
        written.append(manifest_path)
        for entry in manifest["artifacts"]:
            text = self.read_artifact(manifest, entry["kind"])
            path = dest_dir / entry["filename"]
            path.write_text(text, encoding="utf-8")
            written.append(path)
        return written

    def remove(self, ref: str) -> str:
        """Delete one run's manifest (objects are reclaimed by :meth:`gc`)."""
        run_id = self.resolve(ref)
        (self.manifest_dir / f"{run_id}.json").unlink()
        return run_id

    def gc(self) -> dict:
        """Delete objects no manifest references; returns removal counts."""
        live = set()
        for run_id in self.run_ids():
            manifest = self.load(run_id)
            live.update(entry["sha256"] for entry in manifest["artifacts"])
        n_removed = 0
        n_kept = 0
        if self.object_dir.is_dir():
            for shard in sorted(self.object_dir.iterdir()):
                if not shard.is_dir():
                    continue
                for obj in sorted(shard.iterdir()):
                    if obj.name in live:
                        n_kept += 1
                    else:
                        obj.unlink()
                        n_removed += 1
                if not any(shard.iterdir()):
                    shard.rmdir()
        return {"n_removed": n_removed, "n_kept": n_kept, "n_runs": len(self.run_ids())}
