"""The cross-run observatory: two bundles → one ``repro-compare/v1`` verdict.

``compare_runs`` composes every comparison surface the repo already has —
run-summary deltas (JCT, cost, convergence, restarts), SLO verdict flips,
fault-ledger deltas, the timeseries drift classifier and the hot-path
profile diff — into a single report with a ``regressed`` / ``improved`` /
``identical`` / ``indeterminate`` verdict. Summary, SLO and fault deltas
*decide* the verdict; timeseries drift and the (host-timed, noisy)
profile diff *attribute* it. ``repro runs compare`` exits 1 exactly when
the verdict is ``regressed``.
"""

from __future__ import annotations

import json

from repro.common.meta import coerce_meta
from repro.profiling import capture as profile_capture
from repro.profiling import diff as profile_diff
from repro.runs.store import RunStore
from repro.timeseries import capture as timeseries_capture
from repro.timeseries import diff as timeseries_diff

COMPARE_SCHEMA = "repro-compare/v1"

#: Relative change below which a numeric summary delta is noise.
DEFAULT_THRESHOLD = 0.01

#: Summary keys where an increase is a regression (and a decrease an
#: improvement). Everything else in the summary is reported but neutral.
_BAD_IF_UP = (
    "jct_s",
    "cost_usd",
    "storage_cost_usd",
    "comm_overhead_s",
    "scheduling_overhead_s",
)

#: Integer counters where *any* increase regresses (no noise floor).
_COUNT_BAD_IF_UP = ("n_restarts",)


def _endpoint(manifest: dict) -> dict:
    """The per-run block of the compare report."""
    meta = manifest.get("meta", {})
    return {
        "run_id": manifest["run_id"],
        "command": meta.get("command", ""),
        "workload": meta.get("workload", ""),
        "method": meta.get("method", ""),
        "seed": meta.get("seed", 0),
        "artifacts": sorted(e["kind"] for e in manifest["artifacts"]),
        "summary": dict(manifest.get("summary") or {}),
    }


def _summary_deltas(
    base: dict, target: dict, threshold: float
) -> tuple[list[dict], list[dict], list[dict]]:
    """(rows, regressions, improvements) over the two run summaries."""
    rows: list[dict] = []
    regressions: list[dict] = []
    improvements: list[dict] = []
    for key in sorted(set(base) | set(target)):
        b, t = base.get(key), target.get(key)
        row: dict = {"key": key, "base": b, "target": t}
        if isinstance(b, bool) or isinstance(t, bool):
            if key == "converged" and b is True and t is False:
                row["direction"] = "regressed"
            elif key == "converged" and b is False and t is True:
                row["direction"] = "improved"
            else:
                row["direction"] = "identical" if b == t else "changed"
        elif isinstance(b, (int, float)) and isinstance(t, (int, float)):
            delta = t - b
            row["delta"] = round(delta, 9)
            row["ratio"] = round(t / b, 6) if b else None
            if key in _COUNT_BAD_IF_UP:
                row["direction"] = (
                    "regressed" if delta > 0
                    else "improved" if delta < 0
                    else "identical"
                )
            elif key in _BAD_IF_UP:
                floor = threshold * abs(b) if b else 0.0
                row["direction"] = (
                    "regressed" if delta > floor
                    else "improved" if delta < -floor
                    else "identical" if delta == 0
                    else "noise"
                )
            else:
                row["direction"] = "identical" if delta == 0 else "changed"
        else:
            row["direction"] = "identical" if b == t else "changed"
        rows.append(row)
        if row["direction"] == "regressed":
            regressions.append(
                {
                    "kind": "summary",
                    "what": key,
                    "detail": f"{key}: {b} -> {t}",
                }
            )
        elif row["direction"] == "improved":
            improvements.append(
                {
                    "kind": "summary",
                    "what": key,
                    "detail": f"{key}: {b} -> {t}",
                }
            )
    return rows, regressions, improvements


def _slo_delta(base: dict | None, target: dict | None) -> dict | None:
    """Verdict flip between two ``repro-slo-report/v1`` payloads."""
    if base is None and target is None:
        return None
    b = bool((base or {}).get("verdict", {}).get("violated"))
    t = bool((target or {}).get("verdict", {}).get("violated"))
    return {
        "base_violated": b,
        "target_violated": t,
        "base_violations": sorted((base or {}).get("verdict", {}).get("violations", [])),
        "target_violations": sorted((target or {}).get("verdict", {}).get("violations", [])),
    }


def _faults_delta(base: dict | None, target: dict | None) -> dict | None:
    """Summary deltas between two ``repro-faults-report/v1`` payloads."""
    if base is None and target is None:
        return None
    b = dict((base or {}).get("summary") or {})
    t = dict((target or {}).get("summary") or {})
    out: dict = {}
    for key in ("n_faults", "n_recoveries", "fault_time_s", "recovery_time_s"):
        bv, tv = b.get(key, 0) or 0, t.get(key, 0) or 0
        out[key] = {"base": bv, "target": tv, "delta": round(tv - bv, 9)}
    by_kind: dict[str, dict] = {}
    b_kinds = dict(b.get("by_kind") or {})
    t_kinds = dict(t.get("by_kind") or {})
    for kind in sorted(set(b_kinds) | set(t_kinds)):
        bv, tv = b_kinds.get(kind, 0), t_kinds.get(kind, 0)
        by_kind[kind] = {"base": bv, "target": tv, "delta": tv - bv}
    out["by_kind"] = by_kind
    return out


def _events_delta(base: str | None, target: str | None) -> dict | None:
    """Per-kind event-count deltas between two ``repro-events/v1`` logs."""
    if base is None and target is None:
        return None

    def counts(text: str | None) -> dict[str, int]:
        out: dict[str, int] = {}
        for line in (text or "").splitlines():
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if "schema" in doc:  # header line
                continue
            kind = str(doc.get("kind", ""))
            out[kind] = out.get(kind, 0) + 1
        return out

    b, t = counts(base), counts(target)
    return {
        kind: {"base": b.get(kind, 0), "target": t.get(kind, 0),
               "delta": t.get(kind, 0) - b.get(kind, 0)}
        for kind in sorted(set(b) | set(t))
    }


def _maybe_artifact(store: RunStore, manifest: dict, kind: str) -> str | None:
    kinds = {e["kind"] for e in manifest["artifacts"]}
    if kind not in kinds:
        return None
    return store.read_artifact(manifest, kind)


def compare_runs(
    store: RunStore,
    base_ref: str,
    target_ref: str,
    threshold: float = DEFAULT_THRESHOLD,
    meta: dict | None = None,
) -> dict:
    """The ``repro-compare/v1`` report for two stored runs."""
    base = store.load(base_ref)
    target = store.load(target_ref)

    summary_rows, regressions, improvements = _summary_deltas(
        dict(base.get("summary") or {}),
        dict(target.get("summary") or {}),
        threshold,
    )

    slo = _slo_delta(
        _load_json(_maybe_artifact(store, base, "slo")),
        _load_json(_maybe_artifact(store, target, "slo")),
    )
    if slo is not None:
        if not slo["base_violated"] and slo["target_violated"]:
            regressions.append(
                {
                    "kind": "slo",
                    "what": "verdict",
                    "detail": (
                        "SLO met -> violated "
                        f"({', '.join(slo['target_violations']) or 'unknown'})"
                    ),
                }
            )
        elif slo["base_violated"] and not slo["target_violated"]:
            improvements.append(
                {"kind": "slo", "what": "verdict", "detail": "SLO violated -> met"}
            )

    faults = _faults_delta(
        _load_json(_maybe_artifact(store, base, "faults")),
        _load_json(_maybe_artifact(store, target, "faults")),
    )
    if faults is not None and faults["n_faults"]["delta"] > 0:
        kinds = sorted(
            kind for kind, row in faults["by_kind"].items() if row["delta"] > 0
        )
        regressions.append(
            {
                "kind": "faults",
                "what": "n_faults",
                "detail": (
                    f"fault count {faults['n_faults']['base']} -> "
                    f"{faults['n_faults']['target']}"
                    + (f" ({', '.join(kinds)})" if kinds else "")
                ),
            }
        )
    elif faults is not None and faults["n_faults"]["delta"] < 0:
        improvements.append(
            {
                "kind": "faults",
                "what": "n_faults",
                "detail": (
                    f"fault count {faults['n_faults']['base']} -> "
                    f"{faults['n_faults']['target']}"
                ),
            }
        )

    events = _events_delta(
        _maybe_artifact(store, base, "events"),
        _maybe_artifact(store, target, "events"),
    )

    # Attribution surfaces: where did the regression come from?
    ts_report = None
    b_ts = _maybe_artifact(store, base, "timeseries")
    t_ts = _maybe_artifact(store, target, "timeseries")
    if b_ts is not None and t_ts is not None:
        ts_report = timeseries_diff.diff_captures(
            timeseries_capture.load_capture(b_ts),
            timeseries_capture.load_capture(t_ts),
        )

    prof_report = None
    b_prof = _maybe_artifact(store, base, "profile")
    t_prof = _maybe_artifact(store, target, "profile")
    if b_prof is not None and t_prof is not None:
        prof_report = profile_diff.diff_captures(
            profile_capture.load_capture(b_prof),
            profile_capture.load_capture(t_prof),
        )

    verdict = _verdict(base, target, regressions, improvements, summary_rows)
    return {
        "schema": COMPARE_SCHEMA,
        "meta": coerce_meta(meta),
        "base": _endpoint(base),
        "target": _endpoint(target),
        "deltas": {
            "threshold": threshold,
            "summary": summary_rows,
            "slo": slo,
            "faults": faults,
            "events": events,
        },
        "attribution": {
            "timeseries": None if ts_report is None else {
                "classes": ts_report["summary"]["classes"],
                "drifted": ts_report["summary"]["drifted"],
            },
            # Host-timed: frame timings vary run to run, so the profile
            # diff attributes but never decides the verdict.
            "profile": None if prof_report is None else {
                "n_regressed": prof_report["summary"]["n_regressed"],
                "n_improved": prof_report["summary"]["n_improved"],
                "delta_wall_s": prof_report["summary"]["delta_wall_s"],
            },
        },
        "verdict": {
            "verdict": verdict,
            "regressions": regressions,
            "improvements": improvements,
        },
    }


def _load_json(text: str | None) -> dict | None:
    return None if text is None else json.loads(text)


def _verdict(
    base: dict,
    target: dict,
    regressions: list[dict],
    improvements: list[dict],
    summary_rows: list[dict],
) -> str:
    if regressions:
        return "regressed"
    if improvements:
        return "improved"
    if base["run_id"] == target["run_id"]:
        return "identical"
    base_digests = {
        (e["kind"], e["sha256"])
        for e in base["artifacts"]
        if e["deterministic"]
    }
    target_digests = {
        (e["kind"], e["sha256"])
        for e in target["artifacts"]
        if e["deterministic"]
    }
    changed = [r for r in summary_rows if r["direction"] not in ("identical",)]
    if base_digests == target_digests and not changed:
        return "identical"
    return "indeterminate"


def has_regression(report: dict) -> bool:
    """True exactly when the verdict is ``regressed`` (CLI exit 1)."""
    return report["verdict"]["verdict"] == "regressed"


def compare_to_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_compare(report: dict) -> str:
    """Human-readable ``repro runs compare`` view."""
    base, target = report["base"], report["target"]
    lines = [
        f"compare {base['run_id']} -> {target['run_id']}",
        f"  base   : {base['command'] or '-'} {base['workload']} "
        f"{base['method']} seed={base['seed']}".rstrip(),
        f"  target : {target['command'] or '-'} {target['workload']} "
        f"{target['method']} seed={target['seed']}".rstrip(),
        "",
    ]
    rows = report["deltas"]["summary"]
    if rows:
        lines.append(
            f"  {'metric'.ljust(22)}  {'base'.rjust(14)}  "
            f"{'target'.rjust(14)}  {'delta'.rjust(12)}  direction"
        )
        for row in rows:
            b, t = row["base"], row["target"]

            def fmt(v) -> str:
                if v is None:
                    return "-"
                if isinstance(v, float):
                    return f"{v:.4f}"
                text = str(v)
                # Structured values (the peaks dict) would blow the column.
                return text if len(text) <= 14 else text[:11] + "..."

            delta = row.get("delta")
            lines.append(
                f"  {row['key'].ljust(22)}  {fmt(b).rjust(14)}  "
                f"{fmt(t).rjust(14)}  {fmt(delta).rjust(12)}  "
                f"{row['direction']}"
            )
        lines.append("")
    faults = report["deltas"]["faults"]
    if faults is not None and faults["n_faults"]["delta"] != 0:
        lines.append(
            f"  faults : {faults['n_faults']['base']} -> "
            f"{faults['n_faults']['target']} "
            f"(fault time {faults['fault_time_s']['base']} -> "
            f"{faults['fault_time_s']['target']} s)"
        )
    slo = report["deltas"]["slo"]
    if slo is not None:
        lines.append(
            f"  slo    : violated={slo['base_violated']} -> "
            f"violated={slo['target_violated']}"
        )
    ts = report["attribution"]["timeseries"]
    if ts is not None and ts["drifted"]:
        lines.append(f"  drift  : {', '.join(ts['drifted'])}")
    prof = report["attribution"]["profile"]
    if prof is not None:
        lines.append(
            f"  profile: {prof['n_regressed']} regressed / "
            f"{prof['n_improved']} improved frames (host-timed, advisory)"
        )
    lines.append("")
    verdict = report["verdict"]
    lines.append(f"  verdict: {verdict['verdict'].upper()}")
    for entry in verdict["regressions"]:
        lines.append(f"    - regression [{entry['kind']}] {entry['detail']}")
    for entry in verdict["improvements"]:
        lines.append(f"    + improvement [{entry['kind']}] {entry['detail']}")
    return "\n".join(lines)
