"""Run bundles: provenance-stamped, content-addressed run artifacts.

The observability capstone over the capture layers. One run — whatever
mix of telemetry, traces, event logs, SLO reports, profiles, timeseries
and fault ledgers it enabled — becomes one :class:`RunBundle` behind a
byte-stable ``repro-bundle/v1`` manifest with a deterministic run id,
stored content-addressed in a local :class:`RunStore` (``.repro/runs/``).
:func:`compare_runs` is the cross-run observatory: it composes the
existing diff surfaces into a single ``repro-compare/v1`` verdict.

* :mod:`repro.runs.provenance` — the :class:`ProvenanceStamp` threaded
  through every capture writer's ``meta`` block;
* :mod:`repro.runs.bundle` — manifests, artifacts, run-id derivation;
* :mod:`repro.runs.store` — the content-addressed local registry;
* :mod:`repro.runs.compare` — the cross-run regression observatory;
* :mod:`repro.runs.saver` — the ``--save-run`` session snapshotter.
"""

from repro.runs.bundle import (
    ARTIFACT_KINDS,
    BUNDLE_SCHEMA,
    HOST_TIMED_KINDS,
    Artifact,
    RunBundle,
    derive_run_id,
    load_manifest,
    manifest_to_json,
    render_manifest,
    validate_manifest,
)
from repro.runs.compare import (
    COMPARE_SCHEMA,
    compare_runs,
    compare_to_json,
    has_regression,
    render_compare,
)
from repro.runs.provenance import ProvenanceStamp, hash_config
from repro.runs.saver import collect_artifacts, save_run
from repro.runs.store import DEFAULT_STORE_ROOT, RunStore

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "BUNDLE_SCHEMA",
    "COMPARE_SCHEMA",
    "DEFAULT_STORE_ROOT",
    "HOST_TIMED_KINDS",
    "ProvenanceStamp",
    "RunBundle",
    "RunStore",
    "collect_artifacts",
    "compare_runs",
    "compare_to_json",
    "derive_run_id",
    "has_regression",
    "hash_config",
    "load_manifest",
    "manifest_to_json",
    "render_manifest",
    "save_run",
    "validate_manifest",
]
