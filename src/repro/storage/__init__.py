"""External-storage substrate: simulated S3/DynamoDB/ElastiCache/VM-PS."""

from repro.storage.base import ExternalStorageService, StorageMetrics
from repro.storage.catalog import (
    StorageCatalog,
    make_service,
    table1_rows,
)
from repro.storage.faults import (
    FaultInjector,
    FaultyStorageService,
    RetryPolicy,
    StorageRequestError,
)
from repro.storage.kvplane import KVPlane
from repro.storage.sync import BSPSynchronizer, SyncRoundReport

__all__ = [
    "BSPSynchronizer",
    "ExternalStorageService",
    "FaultInjector",
    "FaultyStorageService",
    "KVPlane",
    "RetryPolicy",
    "StorageCatalog",
    "StorageMetrics",
    "StorageRequestError",
    "SyncRoundReport",
    "make_service",
    "table1_rows",
]
