"""In-memory key/value data plane shared by all simulated storage services.

This is the functional layer: parameter synchronization during simulated
training actually moves numpy buffers through here, so aggregation
correctness (gradient averaging) is testable end to end, and request/byte
metering has ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import StorageCapacityError, ValidationError
from repro.common.units import mb_from_bytes


@dataclass
class KVPlane:
    """A metered in-memory object store.

    Attributes:
        object_limit_mb: maximum object size (DynamoDB: 400 KB); ``inf``
            means unlimited.
    """

    object_limit_mb: float = float("inf")
    _objects: dict[str, np.ndarray] = field(default_factory=dict)
    put_count: int = 0
    get_count: int = 0
    delete_count: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def put(self, key: str, value: np.ndarray) -> None:
        """Store a copy of ``value`` under ``key``."""
        if not isinstance(key, str) or not key:
            raise ValidationError(f"key must be a non-empty string, got {key!r}")
        arr = np.asarray(value)
        size_mb = mb_from_bytes(arr.nbytes)
        if size_mb > self.object_limit_mb:
            raise StorageCapacityError(
                f"object {key!r} is {size_mb:.3f} MB, exceeds limit "
                f"{self.object_limit_mb:.3f} MB"
            )
        self._objects[key] = arr.copy()
        self.put_count += 1
        self.bytes_in += arr.nbytes

    def get(self, key: str) -> np.ndarray:
        """Fetch a copy of the object stored under ``key``."""
        try:
            arr = self._objects[key]
        except KeyError:
            raise ValidationError(f"no object stored under key {key!r}") from None
        self.get_count += 1
        self.bytes_out += arr.nbytes
        return arr.copy()

    def delete(self, key: str) -> None:
        """Remove ``key`` if present (idempotent)."""
        if self._objects.pop(key, None) is not None:
            self.delete_count += 1

    def exists(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def clear(self) -> None:
        """Drop all objects; metering counters are preserved."""
        self._objects.clear()

    @property
    def request_count(self) -> int:
        """Total billable requests issued so far."""
        return self.put_count + self.get_count + self.delete_count
