"""BSP parameter-synchronization patterns over external storage (Fig. 5).

One synchronization round aggregates the per-function gradients into a mean
and makes it visible to every function:

* **Passive storage** (S3/DynamoDB/ElastiCache): one function acts as the
  aggregator and keeps its own gradient in memory. The other n-1 functions
  PUT their gradients; the aggregator GETs those n-1 objects, merges
  in-function, and PUTs the merged model; the n-1 non-aggregators GET it.
  Total: (n-1) + (n-1) + 1 + (n-1) = **3n - 2** object transfers — Eq. (3).
* **VM-PS**: the parameter server is co-located with the driver worker, so
  its gradient needs no transfer. The other n-1 functions PUT gradients,
  the server aggregates locally (no network transfer), and the n-1
  functions GET the result. Total: **2n - 2** — Eq. (3).

The data actually flows through the service's K/V plane, so the aggregated
result is numerically checked against the true mean in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.profiling import profile_phase
from repro.storage.base import ExternalStorageService
from repro.timeseries import get_sampler


@dataclass
class SyncRoundReport:
    """Outcome of one BSP synchronization round."""

    wall_time_s: float
    transfers: int
    merged_key: str


class BSPSynchronizer:
    """Synchronizes n workers' gradients through one storage service.

    ``kernel`` (optional, a :class:`repro.kernel.EventKernel`) puts each
    round on the unified simulated timeline: the round's wall time is
    dispatched as a STORAGE-priority event, so storage sync shares the
    clock that platform execution and fault injection already run on
    instead of keeping a private elapsed-time accumulator.
    """

    def __init__(
        self,
        service: ExternalStorageService,
        n_workers: int,
        kernel: object | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self.service = service
        self.n_workers = n_workers
        self.kernel = kernel
        self.round_index = 0

    def expected_transfers(self) -> int:
        """Object transfers per round under Eq. (3)'s accounting."""
        n = self.n_workers
        if self.service.supports_server_aggregation:
            return max(0, 2 * n - 2)
        return max(1, 3 * n - 2)

    def run_round(self, gradients: list[np.ndarray]) -> tuple[np.ndarray, SyncRoundReport]:
        """Aggregate one round of gradients; returns (mean, report).

        Worker 0 is the aggregator (passive storage) / PS-co-located driver
        (VM-PS); its gradient never crosses the network.
        """
        if len(gradients) != self.n_workers:
            raise ValidationError(
                f"expected {self.n_workers} gradients, got {len(gradients)}"
            )
        with profile_phase("storage/sync_round") as ph:
            merged, report = self._run_round(gradients)
            ph.add("transfers", report.transfers)
        if self.kernel is not None:
            from repro.kernel import Priority

            self.kernel.schedule(
                report.wall_time_s, lambda: None, priority=Priority.STORAGE
            )
            self.kernel.run()
        ts = get_sampler()
        if ts.enabled:
            busy = self.service.metrics.busy_time_s
            # Queue depth: transfers the aggregator still has in flight
            # behind each worker's own (n-1 peers' gradients per round).
            ts.sample(
                "storage.sync_queue_depth", busy, float(self.n_workers - 1)
            )
            ts.sample(
                "storage.sync_transfers", busy, float(report.transfers)
            )
        return merged, report

    def _run_round(
        self, gradients: list[np.ndarray]
    ) -> tuple[np.ndarray, SyncRoundReport]:
        r = self.round_index
        self.round_index += 1
        merged_key = f"round/{r}/merged"
        elapsed = 0.0
        transfers = 0
        remote_keys = []
        for rank in range(1, self.n_workers):
            key = f"round/{r}/grad/{rank}"
            elapsed += self.service.put(key, gradients[rank])
            transfers += 1
            remote_keys.append(key)

        if self.service.supports_server_aggregation:
            # VM-PS: driver gradient handed over locally, server-side mean.
            local_key = f"round/{r}/grad/0"
            self.service.plane.put(local_key, gradients[0])
            self.service.plane.put_count -= 1  # local handoff, not billable
            self.service.plane.bytes_in -= np.asarray(gradients[0]).nbytes
            elapsed += self.service.server_aggregate(
                [local_key] + remote_keys, merged_key
            )
            merged = self.service.plane.get(merged_key)
            self.service.plane.get_count -= 1  # driver reads locally
            self.service.plane.bytes_out -= merged.nbytes
            for _ in range(self.n_workers - 1):
                _, dt = self.service.get(merged_key)
                elapsed += dt
                transfers += 1
            self.service.plane.delete(local_key)
        else:
            # Passive: aggregator keeps its own gradient in memory, pulls
            # the other n-1, pushes the merged model, others pull it.
            parts = [np.asarray(gradients[0], dtype=float)]
            for key in remote_keys:
                arr, dt = self.service.get(key)
                elapsed += dt
                transfers += 1
                parts.append(arr)
            merged = np.stack(parts).mean(axis=0)
            elapsed += self.service.put(merged_key, merged)
            transfers += 1
            for _ in range(self.n_workers - 1):
                _, dt = self.service.get(merged_key)
                elapsed += dt
                transfers += 1

        for key in remote_keys:
            self.service.plane.delete(key)
        report = SyncRoundReport(
            wall_time_s=elapsed, transfers=transfers, merged_key=merged_key
        )
        return merged, report
