"""Fault injection for the storage substrate.

Real external storage fails: requests time out, connections reset,
throttling kicks in under burst load. This module wraps a simulated
service with a deterministic fault process and a bounded-retry policy, so
tests can verify that synchronization survives transient faults (with the
correct latency/cost penalty) and surfaces persistent ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import RetryExhaustedError, ValidationError
from repro.common.rng import stream_for
from repro.storage.base import ExternalStorageService


class StorageRequestError(RetryExhaustedError):
    """A request failed after exhausting its retries."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff."""

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0:
            raise ValidationError("base_backoff_s must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based; attempt 0 never sleeps)."""
        if attempt <= 0:
            return 0.0
        return self.base_backoff_s * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultInjector:
    """Deterministic per-request fault process.

    Attributes:
        failure_prob: probability an individual request attempt fails.
        burst_prob: probability a failure opens a "burst" during which the
            next ``burst_length`` attempts also fail (correlated faults —
            the hard case for retry logic).
    """

    failure_prob: float = 0.0
    burst_prob: float = 0.0
    burst_length: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValidationError(
                f"failure_prob must be in [0, 1), got {self.failure_prob}"
            )
        self._rng = stream_for(self.seed, "faults")
        self._burst_remaining = 0
        self.injected_faults = 0

    def should_fail(self) -> bool:
        """Whether the next request attempt fails."""
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            self.injected_faults += 1
            return True
        if self._rng.random() < self.failure_prob:
            self.injected_faults += 1
            if self._rng.random() < self.burst_prob:
                self._burst_remaining = self.burst_length - 1
            return True
        return False


@dataclass
class FaultyStorageService:
    """A storage service whose requests can fail and are retried.

    Wraps any :class:`ExternalStorageService`. Failed attempts still cost a
    request charge and a timeout's worth of latency (as on the real
    platform); exhausted retries raise :class:`StorageRequestError`.
    """

    inner: ExternalStorageService
    injector: FaultInjector
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_s: float = 0.5
    retried_requests: int = 0
    # Optional repro.faults.FaultLedger: when set, every injected request
    # failure appends a "storage-transient" record.
    ledger: object | None = None

    @property
    def kind(self):
        return self.inner.kind

    @property
    def plane(self):
        return self.inner.plane

    @property
    def metrics(self):
        return self.inner.metrics

    @property
    def supports_server_aggregation(self) -> bool:
        return self.inner.supports_server_aggregation

    def _with_retries(self, op, *args):
        elapsed = 0.0
        for attempt in range(self.retry.max_attempts):
            elapsed += self.retry.backoff_s(attempt)
            if self.injector.should_fail():
                # A failed attempt burns a timeout and is still billed.
                self.inner.metrics.requests += 1
                elapsed += self.timeout_s
                self.retried_requests += 1
                if self.ledger is not None:
                    self.ledger.record(
                        "storage-transient", elapsed, attempt=attempt,
                        lost_s=self.timeout_s, detail=self.inner.kind.value,
                    )
                continue
            result = op(*args)
            if isinstance(result, tuple):  # get: (value, time)
                value, dt = result
                return value, elapsed + dt
            return elapsed + result  # put: time
        raise StorageRequestError(
            f"request failed after {self.retry.max_attempts} attempts "
            f"on {self.inner.kind.value}",
            t_s=elapsed,
        )

    def put(self, key: str, value) -> float:
        return self._with_retries(self.inner.put, key, value)

    def get(self, key: str):
        return self._with_retries(self.inner.get, key)

    def accrue_provisioned(self, seconds: float) -> None:
        self.inner.accrue_provisioned(seconds)

    def cost_usd(self) -> float:
        return self.inner.cost_usd()

    def server_aggregate(self, keys, out_key):
        return self.inner.server_aggregate(keys, out_key)

    def transfer_time_s(self, object_mb: float) -> float:
        return self.inner.transfer_time_s(object_mb)
