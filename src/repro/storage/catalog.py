"""Factory and registry for simulated storage services; Table I reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import PricingPattern, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.storage.base import ExternalStorageService
from repro.storage.services import (
    DynamoDBService,
    ElastiCacheService,
    S3Service,
    VMPSService,
)

_SERVICE_CLASSES = {
    StorageKind.S3: S3Service,
    StorageKind.DYNAMODB: DynamoDBService,
    StorageKind.ELASTICACHE: ElastiCacheService,
    StorageKind.VMPS: VMPSService,
}


def make_service(
    kind: StorageKind, platform: PlatformConfig = DEFAULT_PLATFORM
) -> ExternalStorageService:
    """Instantiate a fresh simulated service of the given kind."""
    return _SERVICE_CLASSES[kind](config=platform.storage_config(kind))


@dataclass
class StorageCatalog:
    """Lazy per-kind service instances sharing one platform config."""

    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    _services: dict[StorageKind, ExternalStorageService] = field(default_factory=dict)

    def get(self, kind: StorageKind) -> ExternalStorageService:
        if kind not in self._services:
            self._services[kind] = make_service(kind, self.platform)
        return self._services[kind]

    def reset(self) -> None:
        self._services.clear()


def table1_rows(platform: PlatformConfig = DEFAULT_PLATFORM) -> list[dict]:
    """Reproduce paper Table I: qualitative comparison of the services.

    Latency buckets: <= 2 ms low, <= 15 ms medium, else high. The cost tier
    counts dollar signs the way the paper does (request-priced cheap,.
    provisioned expensive).
    """
    rows = []
    for kind in StorageKind:
        cfg = platform.storage_config(kind)
        if cfg.latency_s <= 0.002:
            latency = "Low"
        elif cfg.latency_s <= 0.008:
            latency = "Medium"
        else:
            latency = "High"
        if cfg.pricing is PricingPattern.REQUEST:
            tier = "$" if cfg.usd_per_request_per_mb == 0 else "$$"
        else:
            tier = "$$$"
        rows.append(
            {
                "service": kind.value,
                "elastic_scaling": "Auto" if cfg.elastic else "Manual",
                "latency": latency,
                "pricing_pattern": (
                    "Data request"
                    if cfg.pricing is PricingPattern.REQUEST
                    else "Execution time"
                ),
                "cost_tier": tier,
            }
        )
    return rows
