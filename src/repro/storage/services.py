"""Concrete simulated storage services (Table I).

S3, DynamoDB and ElastiCache share the passive behaviour of
:class:`ExternalStorageService`; they differ only in their config profile
(latency/bandwidth/pricing/object limit). VM-PS additionally supports
server-side aggregation, which shortens the BSP synchronization pattern from
(3n-2) to (2n-2) transfers (paper Fig. 5 / Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.storage.base import ExternalStorageService


@dataclass
class S3Service(ExternalStorageService):
    """Amazon S3: elastic, high-latency, request-priced object store."""


@dataclass
class DynamoDBService(ExternalStorageService):
    """DynamoDB: elastic, medium-latency K/V store with a 400 KB item cap."""


@dataclass
class ElastiCacheService(ExternalStorageService):
    """ElastiCache (Redis): provisioned low-latency cache, billed per minute."""


@dataclass
class VMPSService(ExternalStorageService):
    """EC2-based parameter server: low latency, billed per minute, and able
    to aggregate gradients locally (no function round-trip)."""

    # Server-side mean over F float64 elements; c5-class throughput.
    aggregate_mb_per_s: float = 2000.0

    def server_aggregate(self, keys: list[str], out_key: str) -> float:
        if not keys:
            raise ValidationError("server_aggregate requires at least one key")
        arrays = [self.plane.get(k) for k in keys]
        # Internal reads are local to the PS: not billable requests.
        self.plane.get_count -= len(keys)
        self.plane.bytes_out -= sum(a.nbytes for a in arrays)
        stacked = np.stack(arrays)
        mean = stacked.mean(axis=0)
        self.plane.put(out_key, mean)
        self.plane.put_count -= 1
        self.plane.bytes_in -= mean.nbytes
        total_mb = sum(a.nbytes for a in arrays) / 2**20
        t = total_mb / self.aggregate_mb_per_s
        self._m_requests.labels(kind=self.kind.value, op="aggregate").inc()
        self._m_latency.labels(kind=self.kind.value).observe(t)
        return t
