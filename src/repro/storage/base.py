"""Abstract external-storage service: data plane + performance/price model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.types import PricingPattern, StorageKind
from repro.common.units import mb_from_bytes
from repro.config import StorageServiceConfig
from repro.storage.kvplane import KVPlane
from repro.telemetry import get_registry
from repro.timeseries import get_sampler


@dataclass
class StorageMetrics:
    """Accumulated simulated time and money spent on one service."""

    requests: int = 0
    transferred_mb: float = 0.0
    busy_time_s: float = 0.0
    request_cost_usd: float = 0.0
    provisioned_seconds: float = 0.0

    def merge(self, other: "StorageMetrics") -> None:
        self.requests += other.requests
        self.transferred_mb += other.transferred_mb
        self.busy_time_s += other.busy_time_s
        self.request_cost_usd += other.request_cost_usd
        self.provisioned_seconds += other.provisioned_seconds


@dataclass
class ExternalStorageService:
    """A simulated external storage service.

    Combines the performance/price profile from :mod:`repro.config` with a
    functional :class:`KVPlane`. ``transfer_time_mb`` is the simulated wall
    time for moving one object; subclasses override behaviour where the
    service differs (VM-PS aggregates server-side).
    """

    config: StorageServiceConfig
    plane: KVPlane = field(default_factory=KVPlane)
    metrics: StorageMetrics = field(default_factory=StorageMetrics)

    def __post_init__(self) -> None:
        self.plane.object_limit_mb = self.config.object_limit_mb
        registry = get_registry()
        self._m_requests = registry.counter(
            "repro_storage_requests_total",
            "Data-plane requests, by service and operation",
            labelnames=("kind", "op"),
        )
        self._m_bytes = registry.counter(
            "repro_storage_transferred_mb_total",
            "Megabytes moved through each service",
            labelnames=("kind",),
        )
        self._m_latency = registry.histogram(
            "repro_storage_op_latency_seconds",
            "Simulated per-operation transfer time, by service",
            labelnames=("kind",),
        )

    @property
    def kind(self) -> StorageKind:
        return self.config.kind

    @property
    def supports_server_aggregation(self) -> bool:
        """True when gradients can be merged without a function round-trip."""
        return not self.kind.is_passive

    def transfer_time_s(self, object_mb: float) -> float:
        """Simulated time to move one object: latency + size / bandwidth."""
        return self.config.latency_s + object_mb / self.config.bandwidth_mb_s

    def _account_request(self, object_mb: float, op: str = "other") -> float:
        self.metrics.requests += 1
        self.metrics.transferred_mb += object_mb
        t = self.transfer_time_s(object_mb)
        self.metrics.busy_time_s += t
        if self.config.pricing is PricingPattern.REQUEST:
            self.metrics.request_cost_usd += self.config.request_price_usd(object_mb)
        kind = self.kind.value
        self._m_requests.labels(kind=kind, op=op).inc()
        self._m_bytes.labels(kind=kind).inc(object_mb)
        self._m_latency.labels(kind=kind).observe(t)
        ts = get_sampler()
        if ts.enabled:
            # Effective bandwidth of this transfer on the service's own
            # cumulative busy-time clock; the gap to config.bandwidth_mb_s
            # is the per-request latency tax.
            ts.sample(
                f"storage.{kind}.bandwidth_mb_s",
                self.metrics.busy_time_s,
                object_mb / t if t > 0 else 0.0,
            )
        return t

    def put(self, key: str, value: np.ndarray) -> float:
        """Store an object; returns the simulated transfer time (seconds)."""
        self.plane.put(key, value)
        return self._account_request(mb_from_bytes(np.asarray(value).nbytes), op="put")

    def get(self, key: str) -> tuple[np.ndarray, float]:
        """Fetch an object; returns (value, simulated transfer time)."""
        arr = self.plane.get(key)
        return arr, self._account_request(mb_from_bytes(arr.nbytes), op="get")

    def accrue_provisioned(self, seconds: float) -> None:
        """Record provisioned time for runtime-charged services."""
        self.metrics.provisioned_seconds += max(0.0, seconds)

    def cost_usd(self) -> float:
        """Total storage cost so far under this service's pricing pattern."""
        if self.config.pricing is PricingPattern.REQUEST:
            return self.metrics.request_cost_usd
        minutes = self.metrics.provisioned_seconds / 60.0
        if minutes <= 0.0:
            return 0.0
        return (minutes + 1.0) * self.config.usd_per_minute

    def server_aggregate(self, keys: list[str], out_key: str) -> float:
        """Aggregate (mean) objects server-side — only VM-PS can do this.

        Returns the simulated server compute time. Passive services raise.
        """
        raise NotImplementedError(
            f"{self.kind.value} has no compute capacity; aggregate in a function"
        )
