"""Core value types shared by every subsystem.

The central object is :class:`Allocation` — the paper's θ = (n, m, s): the
number of functions, the per-function memory size in MB, and the external
storage service used for parameter synchronization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ValidationError


class PricingPattern(enum.Enum):
    """How a storage service bills (paper Table I / Eq. 5)."""

    REQUEST = "request"  # charged per data request (S3, DynamoDB)
    RUNTIME = "runtime"  # charged per provisioned minute (ElastiCache, VM-PS)


class StorageKind(enum.Enum):
    """The external storage services considered by the paper (Table I)."""

    S3 = "s3"
    DYNAMODB = "dynamodb"
    ELASTICACHE = "elasticache"
    VMPS = "vmps"

    @property
    def is_passive(self) -> bool:
        """True for storages with no compute capacity (paper "stateless").

        Passive storages cannot aggregate gradients locally, so functions
        re-pull the whole model: the (3n-2) term in Eq. (3). VM-PS aggregates
        on the VM: the (2n-2) term.
        """
        return self is not StorageKind.VMPS

    @property
    def short(self) -> str:
        """One-letter label used in the paper's Fig. 18 (D, S, E, V)."""
        return {"s3": "S", "dynamodb": "D", "elasticache": "E", "vmps": "V"}[self.value]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A resource allocation θ = (n, m, s) for one epoch.

    Attributes:
        n_functions: number of concurrently provisioned functions (workers).
        memory_mb: memory size of each function in MB (Lambda grants CPU
            proportionally to memory).
        storage: external storage service used for parameter synchronization.
    """

    n_functions: int
    memory_mb: int
    storage: StorageKind

    def __post_init__(self) -> None:
        if self.n_functions < 1:
            raise ValidationError(f"n_functions must be >= 1, got {self.n_functions}")
        if self.memory_mb < 128:
            raise ValidationError(f"memory_mb must be >= 128, got {self.memory_mb}")
        if not isinstance(self.storage, StorageKind):
            raise ValidationError(f"storage must be a StorageKind, got {self.storage!r}")

    def with_storage(self, storage: StorageKind) -> "Allocation":
        """A copy of this allocation with a different storage service."""
        return Allocation(self.n_functions, self.memory_mb, storage)

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``10fn/1769MB/s3``."""
        return f"{self.n_functions}fn/{self.memory_mb}MB/{self.storage.value}"

    @classmethod
    def parse(cls, text: str) -> "Allocation":
        """Inverse of :meth:`describe` — used to recover θ from trace spans.

        Group labels carry a ``#g<generation>`` suffix; it is ignored.
        """
        body = text.split("#", 1)[0]
        parts = body.split("/")
        if len(parts) != 3 or not parts[0].endswith("fn") or not parts[1].endswith("MB"):
            raise ValidationError(f"cannot parse allocation from {text!r}")
        try:
            n = int(parts[0][:-2])
            memory = int(parts[1][:-2])
            storage = StorageKind(parts[2])
        except (KeyError, ValueError) as exc:
            raise ValidationError(f"cannot parse allocation from {text!r}") from exc
        return cls(n, memory, storage)


@dataclass(frozen=True, slots=True)
class EpochTimeBreakdown:
    """Per-epoch execution time decomposition t'(θ) (paper Eq. 2)."""

    load_s: float
    compute_s: float
    sync_s: float

    @property
    def total_s(self) -> float:
        return self.load_s + self.compute_s + self.sync_s

    def scaled(self, factor: float) -> "EpochTimeBreakdown":
        """All components multiplied by ``factor`` (e.g. partial epochs)."""
        return EpochTimeBreakdown(
            self.load_s * factor, self.compute_s * factor, self.sync_s * factor
        )


@dataclass(frozen=True, slots=True)
class EpochCostBreakdown:
    """Per-epoch monetary cost decomposition c'(θ) (paper Eq. 4-5)."""

    invocation_usd: float
    compute_usd: float
    storage_usd: float

    @property
    def total_usd(self) -> float:
        return self.invocation_usd + self.compute_usd + self.storage_usd


@dataclass(slots=True)
class EpochRecord:
    """One executed epoch as observed by the metering layer."""

    index: int
    allocation: Allocation
    time: EpochTimeBreakdown
    cost: EpochCostBreakdown
    loss: float
    scheduling_overhead_s: float = 0.0
    restarted: bool = False
    # Delayed-restart startup overlapped with this (running) epoch — the
    # part of the switch Fig. 8 hides off the critical path. Not included
    # in scheduling_overhead_s, which is the *visible* overhead only.
    hidden_restart_overlap_s: float = 0.0
    # Critical-path components outside t'(θ): the cold-start window paid by
    # this epoch's gang (zero when warm) and the wait for account-concurrency
    # slots. ``time.total_s`` deliberately excludes both so it stays
    # comparable to the analytical Eq. (2) estimate.
    cold_start_s: float = 0.0
    queue_wait_s: float = 0.0
    # Per-worker body durations (cold start + load + jittered compute), in
    # rank order — the straggler detector's input.
    worker_durations_s: tuple[float, ...] = ()

    @property
    def wall_s(self) -> float:
        """Critical-path wall time of this epoch (incl. cold start + queue)."""
        return self.queue_wait_s + self.cold_start_s + self.time.total_s


@dataclass(slots=True)
class JobResult:
    """Outcome of a full training or tuning job."""

    jct_s: float
    cost_usd: float
    epochs: list[EpochRecord] = field(default_factory=list)
    converged: bool = True
    final_loss: float = float("nan")
    scheduling_overhead_s: float = 0.0
    n_restarts: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def comm_overhead_s(self) -> float:
        """Total time spent in parameter synchronization (Fig. 12 hatch)."""
        return sum(e.time.sync_s for e in self.epochs)

    @property
    def storage_cost_usd(self) -> float:
        """Total storage cost (Fig. 13 hatch)."""
        return sum(e.cost.storage_usd for e in self.epochs)
