"""Shared primitives: types, units, RNG helpers, errors, validation."""

from repro.common.errors import (
    ConstraintError,
    InfeasibleAllocationError,
    ReproError,
    StorageCapacityError,
    ValidationError,
)
from repro.common.types import (
    Allocation,
    EpochCostBreakdown,
    EpochTimeBreakdown,
    JobResult,
    PricingPattern,
    StorageKind,
)

__all__ = [
    "Allocation",
    "ConstraintError",
    "EpochCostBreakdown",
    "EpochTimeBreakdown",
    "InfeasibleAllocationError",
    "JobResult",
    "PricingPattern",
    "ReproError",
    "StorageCapacityError",
    "StorageKind",
    "ValidationError",
]
