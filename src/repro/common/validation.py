"""Small argument-validation helpers used across the package."""

from __future__ import annotations

from typing import Iterable, TypeVar

from repro.common.errors import ValidationError

T = TypeVar("T")


def require_positive(value: float, name: str) -> float:
    """Raise :class:`ValidationError` unless ``value`` > 0."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValidationError` unless ``value`` >= 0."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Raise unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def require_non_empty(items: Iterable[T], name: str) -> list[T]:
    """Materialize ``items`` and raise if the collection is empty."""
    out = list(items)
    if not out:
        raise ValidationError(f"{name} must not be empty")
    return out


def require_one_of(value: T, options: Iterable[T], name: str) -> T:
    """Raise unless ``value`` is one of ``options``."""
    opts = list(options)
    if value not in opts:
        raise ValidationError(f"{name} must be one of {opts}, got {value!r}")
    return value
