"""Unit helpers.

Internally the library uses a single convention:

* time     — seconds (float)
* data     — megabytes (float); helpers convert from bytes/KB/GB
* memory   — megabytes (int, Lambda-style 1 MB granularity)
* money    — US dollars (float)
* bandwidth — megabytes per second
"""

from __future__ import annotations

KB = 1.0 / 1024.0
MB = 1.0
GB = 1024.0

MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def mb_from_bytes(n_bytes: float) -> float:
    """Convert a byte count to megabytes."""
    return n_bytes / (1024.0 * 1024.0)


def bytes_from_mb(mb: float) -> int:
    """Convert megabytes to a whole number of bytes."""
    return int(round(mb * 1024.0 * 1024.0))


def gb_seconds(memory_mb: float, seconds: float) -> float:
    """Lambda's billing unit: memory in GB multiplied by duration in seconds."""
    return (memory_mb / 1024.0) * seconds


def usd_per_million(count: float, price_per_million: float) -> float:
    """Cost of ``count`` events priced per million events."""
    return count * price_per_million / 1e6


def format_usd(x: float) -> str:
    """Human-readable dollar amount with sensible precision."""
    if x >= 1.0:
        return f"${x:,.2f}"
    return f"${x:.6f}"


def format_duration(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.2f} min"
    return f"{seconds / 3600.0:.2f} h"
