"""The shared meta-block normalizer for every capture writer.

Each versioned capture (telemetry, Chrome trace, events log, profile,
timeseries, fault report, run bundle) carries a free-form ``meta`` block.
Writers historically took a plain ``dict``; the provenance layer
(:class:`repro.runs.ProvenanceStamp`) now threads one richer object
through all of them. ``coerce_meta`` is the single conversion point:

* ``None`` → ``{}`` — exactly what ``dict(meta or {})`` produced before;
* a mapping → a shallow copy, byte-identical to the old behaviour;
* anything exposing ``to_meta()`` (duck-typed, so this bottom-layer
  module never imports ``repro.runs``) → that method's dict.

Keeping the stamp duck-typed means a library user passing plain dicts
sees bit-for-bit unchanged captures, while every CLI entry point gets a
uniform provenance block for free.
"""

from __future__ import annotations

from typing import Any


def coerce_meta(meta: Any) -> dict:
    """Normalize a capture writer's ``meta`` argument to a plain dict."""
    if meta is None:
        return {}
    to_meta = getattr(meta, "to_meta", None)
    if callable(to_meta):
        out = to_meta()
        if not isinstance(out, dict):
            raise TypeError(
                f"{type(meta).__name__}.to_meta() must return a dict, "
                f"got {type(out).__name__}"
            )
        return out
    return dict(meta)
