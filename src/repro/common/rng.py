"""Deterministic random-number utilities.

All stochastic components (SGD noise, network jitter, surrogate loss curves)
draw from generators created here, so that every experiment is reproducible
from a single integer seed. Child streams are derived with
:func:`numpy.random.SeedSequence.spawn`, which guarantees independence.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

DEFAULT_SEED = 20230515  # IPDPS 2023 conference date, used as the global default


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from an integer seed (library default if None)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover - defensive
        seq = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def stream_for(seed: int, *labels: object) -> np.random.Generator:
    """A named independent stream: same (seed, labels) -> same stream.

    Hashing the labels into the seed entropy gives stable per-component
    streams without threading generator objects through every call site.
    CRC32 is used (not ``hash``) so streams are identical across processes
    — Python randomizes string hashes per interpreter.
    """
    entropy = [seed] + [
        zlib.crc32(str(lbl).encode("utf-8")) & 0xFFFFFFFF for lbl in labels
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def lognormal_factor(rng: np.random.Generator, sigma: float) -> float:
    """A multiplicative noise factor with median 1.0 and log-std ``sigma``."""
    if sigma <= 0.0:
        return 1.0
    return float(rng.lognormal(mean=0.0, sigma=sigma))


def iter_seeds(base_seed: int, n: int) -> Iterator[int]:
    """Yield ``n`` distinct derived seeds for repeated runs of an experiment."""
    ss = np.random.SeedSequence(base_seed)
    for child in ss.spawn(n):
        yield int(child.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1))
