"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong type, etc.)."""


class InfeasibleAllocationError(ReproError):
    """A resource allocation violates a hard platform or storage limit.

    Examples: model too large for DynamoDB's 400 KB object limit, memory
    below the model's working-set requirement, or concurrency above the
    account limit.
    """


class ConstraintError(ReproError):
    """No plan satisfies the user's budget/QoS constraint."""


class StorageCapacityError(ReproError):
    """An object pushed to a storage service exceeds its object-size limit."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class PredictionError(ReproError):
    """The online/offline predictor cannot produce an estimate yet."""


class SLOError(ReproError):
    """An SLO spec is invalid, or an SLO evaluation cannot proceed."""


class AnalysisError(ReproError):
    """The static-analysis subsystem could not complete a lint pass."""


class BaselineError(AnalysisError):
    """A lint baseline file is missing, unreadable, or malformed."""


class FaultError(ReproError):
    """An injected fault surfaced past the resilience layer.

    Carries where (``scope``: "train"/"tune"/"workflow") and when
    (``t_s``: the emitter's simulated-time clock) the fault escaped, so
    handlers can account the lost time without re-deriving context.
    """

    def __init__(
        self, message: str, *, scope: str = "", t_s: float | None = None
    ) -> None:
        super().__init__(message)
        self.scope = scope
        self.t_s = t_s

    def __str__(self) -> str:
        base = super().__str__()
        ctx = []
        if self.scope:
            ctx.append(f"scope={self.scope}")
        if self.t_s is not None:
            ctx.append(f"t={self.t_s:.3f}s")
        return f"{base} [{', '.join(ctx)}]" if ctx else base


class RetryExhaustedError(FaultError):
    """A bounded retry loop ran out of attempts without succeeding."""


class CheckpointError(FaultError):
    """Checkpoint save/restore failed, or the restore budget is exhausted."""
