"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong type, etc.)."""


class InfeasibleAllocationError(ReproError):
    """A resource allocation violates a hard platform or storage limit.

    Examples: model too large for DynamoDB's 400 KB object limit, memory
    below the model's working-set requirement, or concurrency above the
    account limit.
    """


class ConstraintError(ReproError):
    """No plan satisfies the user's budget/QoS constraint."""


class StorageCapacityError(ReproError):
    """An object pushed to a storage service exceeds its object-size limit."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class PredictionError(ReproError):
    """The online/offline predictor cannot produce an estimate yet."""


class SLOError(ReproError):
    """An SLO spec is invalid, or an SLO evaluation cannot proceed."""


class AnalysisError(ReproError):
    """The static-analysis subsystem could not complete a lint pass."""


class BaselineError(AnalysisError):
    """A lint baseline file is missing, unreadable, or malformed."""
