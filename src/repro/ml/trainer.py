"""The integrated fine-grained trainer: every layer wired together.

Where :mod:`repro.training.executor` drives epochs with analytical phase
durations (fast, used by the experiments), this trainer runs the whole
substrate stack at iteration granularity for the linear models:

* gradients come from genuine numpy SGD (:class:`DistributedSGD`);
* every BSP round's aggregation is routed through a *real* simulated
  storage service's K/V plane (:class:`BSPSynchronizer`) — the bytes the
  optimizer consumes actually crossed the simulated network, so storage
  faults (via :class:`FaultyStorageService`) genuinely perturb training;
* compute time follows the platform's memory-proportional CPU model and
  the billing meter charges functions and storage like CloudWatch would.

Intended for validation, debugging and demonstration — it is orders of
magnitude slower than the epoch-level executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.common.types import Allocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.timemodel import check_feasible, compute_speedup
from repro.faas.billing import BillingMeter
from repro.ml.models import Workload
from repro.ml.sgd import DistributedSGD, SGDConfig
from repro.storage.base import ExternalStorageService
from repro.storage.catalog import make_service
from repro.storage.sync import BSPSynchronizer


@dataclass(slots=True)
class IntegratedEpochReport:
    """Measured outcome of one fine-grained epoch."""

    epoch: int
    loss: float
    wall_time_s: float
    compute_time_s: float
    sync_time_s: float
    storage_requests: int
    billed_usd: float


@dataclass
class IntegratedTrainer:
    """Trains a linear workload through the full simulated stack.

    Attributes:
        workload: must be LR or SVM (real SGD).
        allocation: θ = (n, memory, storage) to run under.
        iterations_per_epoch: BSP rounds per epoch (defaults to the
            workload's k, capped for tractability).
        service: storage service override (e.g. a FaultyStorageService);
            defaults to a fresh service of the allocation's kind.
    """

    workload: Workload
    allocation: Allocation
    platform: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    seed: int = 0
    iterations_per_epoch: int | None = None
    rows_per_worker: int = 400
    service: ExternalStorageService | None = None

    def __post_init__(self) -> None:
        if not self.workload.profile.family.is_linear:
            raise ValidationError(
                "IntegratedTrainer needs a linear model (LR/SVM); surrogate "
                "models have no real gradients to route through storage"
            )
        check_feasible(self.workload, self.allocation, self.platform)
        if self.service is None:
            self.service = make_service(self.allocation.storage, self.platform)
        self.synchronizer = BSPSynchronizer(
            self.service, self.allocation.n_functions
        )
        self.meter = BillingMeter(platform=self.platform)
        self._sync_time_epoch = 0.0

        def reducer(grads: list[np.ndarray]) -> np.ndarray:
            merged, report = self.synchronizer.run_round(grads)
            self._sync_time_epoch += report.wall_time_s
            return merged

        self.sgd = DistributedSGD(
            self.workload,
            self.allocation.n_functions,
            SGDConfig(
                batch_size=self.workload.batch_size,
                learning_rate=self.workload.learning_rate,
                rows_per_worker=self.rows_per_worker,
            ),
            seed=self.seed,
            reducer=reducer,
        )
        self.reports: list[IntegratedEpochReport] = []

    def _iterations(self) -> int:
        if self.iterations_per_epoch is not None:
            return self.iterations_per_epoch
        return min(
            50, self.workload.iterations_per_epoch(self.allocation.n_functions)
        )

    def run_epoch(self) -> IntegratedEpochReport:
        """One epoch: k BSP rounds of real SGD through real (simulated) storage."""
        k = self._iterations()
        self._sync_time_epoch = 0.0
        loss = self.sgd.run_epoch(iterations=k)
        # Compute time from the platform CPU model: per-iteration batch MB
        # at the memory-scaled rate, per worker (workers run in parallel).
        batch_mb = (
            self.sgd.local_batch
            * self.workload.dataset.n_features
            * 8.0
            / 2**20
        )
        speed = compute_speedup(self.workload, self.allocation.memory_mb, self.platform)
        compute_s = k * batch_mb * self.workload.profile.compute_s_per_mb / speed
        sync_s = self._sync_time_epoch
        wall = compute_s + sync_s
        billed = 0.0
        for _ in range(self.allocation.n_functions):
            billed += self.meter.bill_invocation(
                self.allocation.memory_mb, wall
            ).total_usd
        self.service.accrue_provisioned(wall)
        report = IntegratedEpochReport(
            epoch=self.sgd.epoch,
            loss=loss,
            wall_time_s=wall,
            compute_time_s=compute_s,
            sync_time_s=sync_s,
            storage_requests=self.service.metrics.requests,
            billed_usd=billed,
        )
        self.reports.append(report)
        return report

    def run_to_target(self, max_epochs: int = 100) -> list[IntegratedEpochReport]:
        """Epochs until the workload's target loss (or the cap)."""
        for _ in range(max_epochs):
            report = self.run_epoch()
            if report.loss <= self.workload.target_loss:
                break
        return self.reports

    @property
    def total_cost_usd(self) -> float:
        """Functions + storage, CloudWatch-style."""
        return self.meter.total_usd + self.service.cost_usd()
