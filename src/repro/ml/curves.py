"""Convergence-curve families and stochastic samplers.

SGD training loss is well described by an inverse power law
``l(e) = l_inf + A * (e + 1) ** (-alpha)`` (the family used by online
predictors in Optimus [16] and SLAQ [17], which the paper's loss-curve
fitter follows). This module provides:

* the deterministic curve families (also used by the online predictor);
* :class:`LossCurveSampler` — a *generative* model for the surrogate NN
  workloads (MobileNet/ResNet50/BERT): a per-run perturbed curve plus AR(1)
  noise, so that run-to-run epochs-to-target vary the way real SGD does.
  This stochasticity is precisely what makes offline prediction err by ~40%
  (paper Fig. 4a) while online fitting converges to ~5% error (Fig. 4b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import stream_for


def inverse_power_law(e: np.ndarray | float, l_inf: float, a: float, alpha: float):
    """``l(e) = l_inf + a * (e + 1) ** (-alpha)`` (epoch index from 0)."""
    return l_inf + a * np.power(np.asarray(e, dtype=float) + 1.0, -alpha)


def exponential_decay(e: np.ndarray | float, l_inf: float, a: float, beta: float):
    """``l(e) = l_inf + a * exp(-beta * e)``."""
    return l_inf + a * np.exp(-beta * np.asarray(e, dtype=float))


def hyperbolic(e: np.ndarray | float, a: float, b: float, l_inf: float):
    """Optimus-style ``l(e) = 1 / (a * e + b) + l_inf``."""
    return 1.0 / (a * np.asarray(e, dtype=float) + b) + l_inf


@dataclass(frozen=True, slots=True)
class CurveParams:
    """Parameters of an inverse-power-law convergence curve.

    Attributes:
        init_loss: loss before training, l(0) ~= l_inf + amplitude.
        floor_loss: asymptotic loss l_inf.
        alpha: decay exponent (larger = faster convergence).
    """

    init_loss: float
    floor_loss: float
    alpha: float

    def __post_init__(self) -> None:
        if self.init_loss <= self.floor_loss:
            raise ValidationError(
                f"init_loss ({self.init_loss}) must exceed floor_loss ({self.floor_loss})"
            )
        if self.alpha <= 0:
            raise ValidationError(f"alpha must be positive, got {self.alpha}")

    @property
    def amplitude(self) -> float:
        return self.init_loss - self.floor_loss

    def loss_at(self, epoch: float) -> float:
        """Deterministic loss after ``epoch`` completed epochs."""
        return float(inverse_power_law(epoch, self.floor_loss, self.amplitude, self.alpha))

    def epochs_to(self, target_loss: float) -> float:
        """Epochs needed to reach ``target_loss`` on the deterministic curve."""
        if target_loss <= self.floor_loss:
            raise ValidationError(
                f"target_loss {target_loss} is at/below the curve floor {self.floor_loss}"
            )
        if target_loss >= self.init_loss:
            return 0.0
        ratio = self.amplitude / (target_loss - self.floor_loss)
        return ratio ** (1.0 / self.alpha) - 1.0

    @staticmethod
    def solve_alpha(
        init_loss: float, floor_loss: float, target_loss: float, nominal_epochs: float
    ) -> "CurveParams":
        """Build params whose deterministic curve hits ``target_loss`` after
        ``nominal_epochs`` epochs — the calibration used by the workload zoo."""
        if not floor_loss < target_loss < init_loss:
            raise ValidationError(
                "need floor_loss < target_loss < init_loss, got "
                f"{floor_loss} / {target_loss} / {init_loss}"
            )
        if nominal_epochs <= 0:
            raise ValidationError(f"nominal_epochs must be positive, got {nominal_epochs}")
        ratio = (init_loss - floor_loss) / (target_loss - floor_loss)
        alpha = math.log(ratio) / math.log(nominal_epochs + 1.0)
        return CurveParams(init_loss=init_loss, floor_loss=floor_loss, alpha=alpha)


class LossCurveSampler:
    """Stochastic per-run loss trajectory generator for surrogate models.

    Each run perturbs the effective convergence speed (run-level SGD
    variability, controlled by ``run_sigma``), then emits per-epoch losses
    with gap-relative AR(1) observation noise (``noise_sigma``,
    autocorrelation ``rho``). Real SGD losses fluctuate upward too, so the
    trajectory is not monotone.
    """

    def __init__(
        self,
        params: CurveParams,
        seed: int,
        run_label: object = 0,
        run_sigma: float = 0.15,
        noise_sigma: float = 0.02,
        rho: float = 0.6,
        anchor_target: float | None = None,
    ) -> None:
        self.params = params
        rng = stream_for(seed, "loss-curve", run_label)
        self._rng = rng
        self.amplitude = params.amplitude
        self.floor = params.floor_loss
        # Run-level perturbation, expressed directly in the epochs-to-target
        # domain: this run reaches ``anchor_target`` after
        # ``epochs_to(anchor_target) * lognormal(0, run_sigma)`` epochs.
        # Shallow curves (LR's 0.69 -> 0.63 span) are hypersensitive to raw
        # alpha/floor jitter, so anchoring in epochs keeps run variability
        # comparable (~±run_sigma) across all workloads. Without an anchor,
        # alpha itself is jittered.
        factor = float(rng.lognormal(0.0, run_sigma))
        if anchor_target is not None:
            e_run = max(1.0, params.epochs_to(anchor_target) * factor)
            ratio = self.amplitude / (anchor_target - self.floor)
            self.alpha = math.log(ratio) / math.log(e_run + 1.0)
        else:
            self.alpha = params.alpha * factor
        self.noise_sigma = noise_sigma
        self.rho = rho
        self._ar_state = 0.0
        self._epoch = 0

    def next_loss(self) -> float:
        """Loss observed at the end of the next epoch.

        Observation noise multiplies the *remaining gap* above the floor,
        not the raw loss — SGD's loss fluctuations shrink as the model
        converges, and a gap-relative formulation keeps shallow curves
        (LR's 0.69 -> 0.63 span) from fake-crossing their target.
        """
        gap = self.amplitude * (self._epoch + 2.0) ** (-self.alpha)
        self._ar_state = self.rho * self._ar_state + math.sqrt(
            1.0 - self.rho**2
        ) * float(self._rng.normal(0.0, self.noise_sigma))
        self._epoch += 1
        return float(self.floor + gap * math.exp(self._ar_state))

    def trajectory(self, n_epochs: int) -> np.ndarray:
        """Losses for the next ``n_epochs`` epochs."""
        return np.array([self.next_loss() for _ in range(n_epochs)])

    def epochs_to_target(self, target_loss: float, max_epochs: int = 100_000) -> int:
        """Simulate until the loss first reaches ``target_loss``.

        Does not advance this sampler's shared state beyond the epochs
        consumed; intended for fresh samplers.
        """
        for e in range(1, max_epochs + 1):
            if self.next_loss() <= target_loss:
                return e
        return max_epochs
