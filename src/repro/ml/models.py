"""Model zoo and workload registry (paper §IV-A, Table IV).

A :class:`ModelProfile` captures the resource-facing characteristics of a
model family (parameter size, compute intensity, intra-function parallel
scalability). A :class:`Workload` binds a model to a dataset plus the
training hyperparameters of the paper's Table IV, and carries the calibrated
convergence-curve parameters used by the surrogate loss sampler.

LR and SVM additionally have a *real* numpy SGD implementation
(:mod:`repro.ml.sgd`); the large NN models are surrogate-only, as argued in
DESIGN.md §2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.ml.curves import CurveParams
from repro.ml.datasets import CIFAR10, HIGGS, IMDB, YFCC, DatasetSpec


class ModelFamily(enum.Enum):
    """The five model families evaluated in the paper."""

    LR = "lr"
    SVM = "svm"
    MOBILENET = "mobilenet"
    RESNET50 = "resnet50"
    BERT = "bert"

    @property
    def is_linear(self) -> bool:
        """True for models with a real SGD implementation (LR, SVM)."""
        return self in (ModelFamily.LR, ModelFamily.SVM)


@dataclass(frozen=True, slots=True)
class ModelProfile:
    """Resource-facing characteristics of a model family.

    Attributes:
        family: which family this profiles.
        fixed_model_mb: parameter size M in MB, or None for linear models
            whose size is 8 bytes per input feature (paper §IV-A).
        compute_s_per_mb: seconds to process 1 MB of training data
            (forward+backward) on one full vCPU — the calibration constant
            behind u(m) in Eq. (2).
        max_speedup: cap on intra-function parallel speedup from extra
            vCPUs (Lambda grants ~m/1769 vCPUs).
        base_memory_mb: runtime + framework memory floor.
    """

    family: ModelFamily
    fixed_model_mb: float | None
    compute_s_per_mb: float
    max_speedup: float
    base_memory_mb: int

    def model_mb(self, dataset: DatasetSpec) -> float:
        """Parameter size M for this model on ``dataset`` (MB)."""
        if self.fixed_model_mb is not None:
            return self.fixed_model_mb
        return dataset.n_features * 8.0 / 2**20


MODELS: dict[ModelFamily, ModelProfile] = {
    ModelFamily.LR: ModelProfile(
        family=ModelFamily.LR,
        fixed_model_mb=None,
        compute_s_per_mb=0.32,
        max_speedup=2.0,
        base_memory_mb=256,
    ),
    ModelFamily.SVM: ModelProfile(
        family=ModelFamily.SVM,
        fixed_model_mb=None,
        compute_s_per_mb=0.30,
        max_speedup=2.0,
        base_memory_mb=256,
    ),
    ModelFamily.MOBILENET: ModelProfile(
        family=ModelFamily.MOBILENET,
        fixed_model_mb=12.0,
        compute_s_per_mb=4.5,
        max_speedup=4.0,
        base_memory_mb=1024,
    ),
    ModelFamily.RESNET50: ModelProfile(
        family=ModelFamily.RESNET50,
        fixed_model_mb=89.0,
        compute_s_per_mb=26.0,
        max_speedup=5.5,
        base_memory_mb=2048,
    ),
    ModelFamily.BERT: ModelProfile(
        family=ModelFamily.BERT,
        fixed_model_mb=340.0,
        compute_s_per_mb=400.0,
        max_speedup=5.5,
        base_memory_mb=3072,
    ),
}


@dataclass(frozen=True, slots=True)
class Workload:
    """A (model, dataset, hyperparameters) triple — one row of Table IV.

    Attributes:
        profile: the model profile.
        dataset: the dataset spec.
        batch_size: SGD mini-batch size b_z.
        learning_rate: SGD step size.
        target_loss: training stops when the loss reaches this value.
        nominal_epochs: calibrated epochs-to-target on the noise-free
            convergence curve (anchors the surrogate sampler).
        init_loss / floor_loss: endpoints of the convergence curve.
    """

    profile: ModelProfile
    dataset: DatasetSpec
    batch_size: int
    learning_rate: float
    target_loss: float
    nominal_epochs: float
    init_loss: float
    floor_loss: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValidationError(f"learning_rate must be > 0, got {self.learning_rate}")

    @property
    def name(self) -> str:
        return f"{self.profile.family.value}-{self.dataset.name}"

    @property
    def model_mb(self) -> float:
        """Parameter size M (MB)."""
        return self.profile.model_mb(self.dataset)

    @property
    def dataset_mb(self) -> float:
        """Dataset size D (MB)."""
        return self.dataset.size_mb

    def iterations_per_epoch(self, n_functions: int) -> int:
        """k = D / (n * b_z) in samples (paper §III-B.1), at least 1."""
        return max(1, round(self.dataset.n_samples / (n_functions * self.batch_size)))

    def min_memory_mb(self, n_functions: int) -> int:
        """Memory floor: runtime + model working set (params, grads,
        optimizer state ~4x) + one mini-batch of features."""
        batch_mb = self.batch_size * self.dataset.n_features * 8.0 / 2**20
        return int(
            self.profile.base_memory_mb + 4.0 * self.model_mb + batch_mb
        )

    def curve_params(self) -> CurveParams:
        """Convergence-curve parameters calibrated to ``nominal_epochs``."""
        return CurveParams.solve_alpha(
            init_loss=self.init_loss,
            floor_loss=self.floor_loss,
            target_loss=self.target_loss,
            nominal_epochs=self.nominal_epochs,
        )

    def scaled(self, scale: float) -> "Workload":
        """Workload over a row-subsampled dataset (same convergence curve)."""
        return Workload(
            profile=self.profile,
            dataset=self.dataset.scaled(scale),
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            target_loss=self.target_loss,
            nominal_epochs=self.nominal_epochs,
            init_loss=self.init_loss,
            floor_loss=self.floor_loss,
        )


def _w(
    family: ModelFamily,
    dataset: DatasetSpec,
    batch_size: int,
    learning_rate: float,
    target_loss: float,
    nominal_epochs: float,
    init_loss: float,
    floor_loss: float,
) -> Workload:
    return Workload(
        profile=MODELS[family],
        dataset=dataset,
        batch_size=batch_size,
        learning_rate=learning_rate,
        target_loss=target_loss,
        nominal_epochs=nominal_epochs,
        init_loss=init_loss,
        floor_loss=floor_loss,
    )


# Paper Table IV, with curve endpoints calibrated per model family.
WORKLOADS: dict[str, Workload] = {
    "lr-higgs": _w(ModelFamily.LR, HIGGS, 10_000, 0.01, 0.66, 40.0, 0.6931, 0.630),
    "svm-higgs": _w(ModelFamily.SVM, HIGGS, 10_000, 0.01, 0.48, 36.0, 1.0, 0.44),
    "lr-yfcc": _w(ModelFamily.LR, YFCC, 800, 0.01, 50.0, 50.0, 400.0, 30.0),
    "svm-yfcc": _w(ModelFamily.SVM, YFCC, 800, 0.01, 50.0, 45.0, 400.0, 30.0),
    "mobilenet-cifar10": _w(
        ModelFamily.MOBILENET, CIFAR10, 128, 0.01, 0.2, 60.0, 2.303, 0.12
    ),
    "resnet50-cifar10": _w(
        ModelFamily.RESNET50, CIFAR10, 32, 0.01, 0.4, 50.0, 2.303, 0.25
    ),
    "bert-imdb": _w(ModelFamily.BERT, IMDB, 32, 5e-5, 0.6, 12.0, 0.6931, 0.45),
}


def workload(name: str) -> Workload:
    """Look up a Table IV workload by name (e.g. ``"lr-higgs"``)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValidationError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
