"""ML substrate: synthetic datasets, model zoo, convergence curves, SGD."""

from repro.ml.curves import CurveParams, LossCurveSampler, inverse_power_law
from repro.ml.datasets import CIFAR10, DATASETS, HIGGS, IMDB, YFCC, DatasetSpec
from repro.ml.models import (
    MODELS,
    WORKLOADS,
    ModelFamily,
    ModelProfile,
    Workload,
    workload,
)
from repro.ml.sgd import DistributedSGD, SGDConfig

# NOTE: repro.ml.trainer (IntegratedTrainer) is intentionally not imported
# here — it sits above the analytical layer, which itself builds on
# repro.ml.models; import it as `from repro.ml.trainer import ...`.

__all__ = [
    "CIFAR10",
    "CurveParams",
    "DATASETS",
    "DistributedSGD",
    "HIGGS",
    "IMDB",
    "LossCurveSampler",
    "MODELS",
    "ModelFamily",
    "ModelProfile",
    "SGDConfig",
    "WORKLOADS",
    "Workload",
    "YFCC",
    "DatasetSpec",
    "inverse_power_law",
    "workload",
]
