"""Real distributed mini-batch SGD for the linear models (LR, SVM).

This is the functional training substrate: actual numpy gradient math on
synthetic data, partitioned across n logical workers that synchronize under
BSP — each iteration every worker computes a gradient on its own mini-batch,
gradients are averaged through the (simulated) external storage, and all
workers apply the same update. The loss trajectory is therefore genuinely
stochastic, which is what the online loss-curve fitter consumes.

The big NN models use the surrogate sampler in :mod:`repro.ml.curves`
instead (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import stream_for
from repro.ml.models import ModelFamily, Workload


class SyncHook(Protocol):
    """Callback invoked once per BSP synchronization round.

    Receives the number of workers and the model size in MB; used by the
    trainer to drive the storage data plane (moving real bytes, charging
    simulated time/cost).
    """

    def __call__(self, n_workers: int, model_mb: float) -> None: ...


@dataclass(frozen=True, slots=True)
class SGDConfig:
    """Hyperparameters of a distributed SGD run.

    Attributes:
        batch_size: global mini-batch size, split evenly across workers.
        learning_rate: step size.
        l2: L2 regularization strength.
        rows_per_worker: synthetic rows materialized per worker (the full
            datasets are millions of rows; experiments subsample).
    """

    batch_size: int
    learning_rate: float
    l2: float = 1e-4
    rows_per_worker: int = 2000


def _logistic_loss_grad(
    w: np.ndarray, x: np.ndarray, y: np.ndarray, l2: float
) -> tuple[float, np.ndarray]:
    """Mean logistic loss and gradient for labels y in {-1, +1}."""
    margin = y * (x @ w)
    # log(1 + exp(-margin)) computed stably.
    loss = float(np.mean(np.logaddexp(0.0, -margin))) + 0.5 * l2 * float(w @ w)
    sigma = 1.0 / (1.0 + np.exp(np.clip(margin, -500, 500)))
    grad = -(x.T @ (y * sigma)) / len(y) + l2 * w
    return loss, grad


def _hinge_loss_grad(
    w: np.ndarray, x: np.ndarray, y: np.ndarray, l2: float
) -> tuple[float, np.ndarray]:
    """Mean hinge loss and (sub)gradient for a linear SVM."""
    margin = y * (x @ w)
    active = margin < 1.0
    loss = float(np.mean(np.maximum(0.0, 1.0 - margin))) + 0.5 * l2 * float(w @ w)
    if active.any():
        grad = -(x[active].T @ y[active]) / len(y) + l2 * w
    else:
        grad = l2 * w
    return loss, grad


_LOSSES: dict[ModelFamily, Callable] = {
    ModelFamily.LR: _logistic_loss_grad,
    ModelFamily.SVM: _hinge_loss_grad,
}


class DistributedSGD:
    """BSP distributed SGD over ``n_workers`` logical workers.

    Each worker owns a private partition of synthetic data drawn from the
    workload's dataset generator. :meth:`run_epoch` performs
    ``iterations_per_epoch`` BSP rounds and returns the mean training loss
    observed during the epoch.
    """

    def __init__(
        self,
        workload: Workload,
        n_workers: int,
        config: SGDConfig | None = None,
        seed: int = 0,
        sync_hook: SyncHook | None = None,
        reducer: "Callable[[list[np.ndarray]], np.ndarray] | None" = None,
    ) -> None:
        """``reducer`` replaces the in-memory gradient mean — the integrated
        trainer routes it through a storage service's data plane, so the
        bytes the optimizer consumes really crossed the simulated network."""
        if not workload.profile.family.is_linear:
            raise ValidationError(
                f"DistributedSGD only supports linear models, got {workload.name}"
            )
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self.workload = workload
        self.n_workers = n_workers
        self.config = config or SGDConfig(
            batch_size=workload.batch_size, learning_rate=workload.learning_rate
        )
        self.sync_hook = sync_hook
        self.reducer = reducer
        self._loss_grad = _LOSSES[workload.profile.family]
        self._rng = stream_for(seed, "sgd", workload.name, n_workers)
        d = workload.dataset
        self._partitions = []
        for rank in range(n_workers):
            x, y = d.materialize(self.config.rows_per_worker, seed=seed * 1000 + rank)
            self._partitions.append((x, y))
        self.weights = np.zeros(d.n_features, dtype=np.float64)
        self.epoch = 0
        self.losses: list[float] = []

    @property
    def local_batch(self) -> int:
        """Per-worker mini-batch size (global batch split across workers)."""
        return max(1, self.config.batch_size // self.n_workers)

    def _one_iteration(self) -> float:
        """One BSP round: local gradients -> average -> shared update."""
        per_worker: list[np.ndarray] = []
        loss_sum = 0.0
        for x, y in self._partitions:
            idx = self._rng.integers(0, len(y), size=min(self.local_batch, len(y)))
            loss, grad = self._loss_grad(self.weights, x[idx], y[idx], self.config.l2)
            per_worker.append(grad)
            loss_sum += loss
        if self.reducer is not None:
            mean_grad = self.reducer(per_worker)
        else:
            mean_grad = np.mean(per_worker, axis=0)
        self.weights -= self.config.learning_rate * mean_grad
        if self.sync_hook is not None:
            self.sync_hook(self.n_workers, self.workload.model_mb)
        return loss_sum / self.n_workers

    def run_epoch(self, iterations: int | None = None) -> float:
        """Run one epoch (``iterations`` BSP rounds) and return its mean loss.

        Defaults to the workload's k = D / (n * b_z), capped at 200 rounds to
        keep simulation tractable (the loss value, not the round count,
        feeds the predictor).
        """
        k = iterations or min(200, self.workload.iterations_per_epoch(self.n_workers))
        losses = [self._one_iteration() for _ in range(k)]
        self.epoch += 1
        mean_loss = float(np.mean(losses))
        self.losses.append(mean_loss)
        return mean_loss

    def full_loss(self) -> float:
        """Exact loss over every worker's full partition (for evaluation)."""
        total = 0.0
        for x, y in self._partitions:
            loss, _ = self._loss_grad(self.weights, x, y, self.config.l2)
            total += loss
        return total / self.n_workers

    def reshard(self, n_workers: int, seed: int = 0) -> "DistributedSGD":
        """Continue training with a different worker count (resource switch).

        Weights carry over; data is re-partitioned. Mirrors what happens on
        the real platform when the adaptive scheduler changes n.
        """
        clone = DistributedSGD(
            self.workload, n_workers, self.config, seed=seed, sync_hook=self.sync_hook
        )
        clone.weights = self.weights.copy()
        clone.epoch = self.epoch
        clone.losses = list(self.losses)
        return clone
