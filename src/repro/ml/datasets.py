"""Synthetic stand-ins for the paper's datasets (§IV-A).

The paper evaluates on Higgs (11M x 28), YFCC100M feature vectors
(4096-dim), Cifar10 (60k 32x32x3 images) and IMDb (25k sentences). We cannot
ship those datasets, so each is represented by a :class:`DatasetSpec` with
the same cardinality/dimensionality, plus a generator that synthesizes a
binary-classification problem with matching shape for the linear models.

The generator produces a *learnable* problem: samples from two Gaussian
clusters whose separation controls the achievable loss, with label noise so
SGD exhibits realistic stochastic convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import stream_for


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Shape and storage footprint of a training dataset.

    Attributes:
        name: dataset identifier.
        n_samples: number of training rows.
        n_features: feature dimensionality (flattened for images).
        bytes_per_value: storage width of one feature value.
        separation: cluster separation used by the synthetic generator;
            larger values make the problem easier (lower achievable loss).
        label_noise: fraction of flipped labels in the synthetic problem.
    """

    name: str
    n_samples: int
    n_features: int
    bytes_per_value: int = 4
    separation: float = 1.2
    label_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.n_samples < 1 or self.n_features < 1:
            raise ValidationError(
                f"dataset {self.name!r} must have positive shape, got "
                f"({self.n_samples}, {self.n_features})"
            )

    @property
    def size_mb(self) -> float:
        """On-storage dataset size D in MB (features + 1 label column)."""
        return self.n_samples * (self.n_features + 1) * self.bytes_per_value / 2**20

    def scaled(self, scale: float) -> "DatasetSpec":
        """A row-subsampled copy (``scale`` in (0, 1]) for fast experiments."""
        if not 0.0 < scale <= 1.0:
            raise ValidationError(f"scale must be in (0, 1], got {scale}")
        return replace(self, n_samples=max(1, int(self.n_samples * scale)))

    def materialize(
        self, n_rows: int | None = None, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``n_rows`` synthetic rows (X, y) with y in {-1, +1}.

        The problem is two Gaussian clusters at ±separation/2 along a random
        direction, with ``label_noise`` flipped labels. Deterministic in
        (dataset name, seed).
        """
        n = self.n_samples if n_rows is None else int(n_rows)
        if n < 1:
            raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
        rng = stream_for(seed, "dataset", self.name)
        direction = rng.standard_normal(self.n_features)
        direction /= np.linalg.norm(direction)
        y = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        x = rng.standard_normal((n, self.n_features))
        x += np.outer(y * self.separation / 2.0, direction)
        flip = rng.random(n) < self.label_noise
        y[flip] = -y[flip]
        return x.astype(np.float64), y.astype(np.float64)


HIGGS = DatasetSpec(name="higgs", n_samples=11_000_000, n_features=28, separation=1.0)
YFCC = DatasetSpec(name="yfcc", n_samples=200_000, n_features=4096, separation=1.5)
CIFAR10 = DatasetSpec(name="cifar10", n_samples=60_000, n_features=3072, bytes_per_value=1)
IMDB = DatasetSpec(name="imdb", n_samples=25_000, n_features=292 * 2, bytes_per_value=4)

DATASETS: dict[str, DatasetSpec] = {
    d.name: d for d in (HIGGS, YFCC, CIFAR10, IMDB)
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
