"""Sampling-based offline epoch prediction (LambdaML's method, §II-C2).

LambdaML pre-trains the model on a small subsample of the training data and
extrapolates the epochs needed to reach the target loss. Subsampled
convergence differs systematically from full-data convergence (different
gradient noise, different effective curve), which is why the paper measures
~40% average error for this method (Fig. 4a).

The reproduction runs a genuine pilot: it draws a short, subsample-distorted
loss trajectory for the workload, fits the same curve families the online
predictor uses, and extrapolates. The distortion (random per pilot seed) is
the honest mechanism behind the large error — nothing is hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import PredictionError
from repro.common.rng import stream_for
from repro.ml.curves import LossCurveSampler
from repro.ml.models import Workload
from repro.training.online_predictor import OnlinePredictor


@dataclass
class OfflinePredictor:
    """Predicts total epochs-to-target from a small pre-training pilot.

    Attributes:
        workload: what will be trained.
        pilot_epochs: epochs of pre-training on the subsample.
        sample_fraction: fraction of data used for the pilot (distortion
            strength scales with how small this is).
        seed: pilot randomness.
    """

    workload: Workload
    pilot_epochs: int = 10
    sample_fraction: float = 0.05
    seed: int = 0
    # Lognormal sigma of the subsample's epochs-to-target relative to the
    # full dataset's at sample_fraction -> 0. Calibrated so the offline
    # method's mean error lands in the paper's ~40% band (Fig. 4a).
    distortion_sigma: float = 0.38

    def _pilot_sampler(self) -> LossCurveSampler:
        """The subsample's loss trajectory.

        The subsample converges along a *distorted* curve: with less data
        the gradient noise and the reachable optimum both change, so the
        pilot's epochs-to-target is the full run's multiplied by a
        systematic lognormal factor (deterministic per seed). This honest
        mismatch — the pilot measures the wrong curve — is the mechanism
        behind LambdaML-style offline prediction error.
        """
        if not 0.0 < self.sample_fraction <= 1.0:
            raise PredictionError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        rng = stream_for(self.seed, "offline-pilot", self.workload.name)
        distortion = self.distortion_sigma * (1.0 - self.sample_fraction)
        params = self.workload.curve_params()
        subsample_factor = float(rng.lognormal(0.0, distortion))
        pilot_target = self.workload.target_loss
        sampler = LossCurveSampler(
            params,
            seed=self.seed,
            run_label=("pilot", self.workload.name),
            run_sigma=0.0,
            noise_sigma=0.02 / max(self.sample_fraction**0.25, 0.3),
            anchor_target=pilot_target,
        )
        # Re-anchor: the pilot's curve reaches the target after
        # nominal * subsample_factor epochs.
        e_pilot = max(1.0, params.epochs_to(pilot_target) * subsample_factor)
        ratio = params.amplitude / (pilot_target - params.floor_loss)
        sampler.alpha = math.log(ratio) / math.log(e_pilot + 1.0)
        return sampler

    def run_pilot(self) -> list[float]:
        """The first ``pilot_epochs`` losses of the subsample pilot."""
        sampler = self._pilot_sampler()
        return [sampler.next_loss() for _ in range(self.pilot_epochs)]

    def predict_total_epochs(self, max_epochs: int = 5000) -> float:
        """LambdaML's estimate: train the subsample to the target and count.

        The subsample is cheap, so the pilot runs until the target loss is
        reached; the epoch count is reported as the prediction for the full
        run. The error is exactly the subsample-vs-full-data curve mismatch
        (plus pilot noise) — the paper's ~40% (Fig. 4a).
        """
        sampler = self._pilot_sampler()
        for e in range(1, max_epochs + 1):
            if sampler.next_loss() <= self.workload.target_loss:
                return float(e)
        return float(max_epochs)

    def extrapolate_from_pilot(self) -> float:
        """Alternative estimate: fit the short pilot trajectory and
        extrapolate (the curve-fitting variant of the offline method;
        strictly less stable than running the pilot to the target)."""
        losses = self.run_pilot()
        predictor = OnlinePredictor(
            target_loss=self.workload.target_loss,
            min_points=3,
            families=("inverse_power_law",),
        )
        for loss in losses:
            predictor.observe(loss)
        try:
            return predictor.predict_total_epochs()
        except PredictionError:
            first, last = losses[0], losses[-1]
            slope = (first - last) / max(len(losses) - 1, 1)
            if slope <= 0:
                return float(self.pilot_epochs * 10)
            return float(
                max(
                    self.pilot_epochs,
                    (first - self.workload.target_loss) / slope,
                )
            )
