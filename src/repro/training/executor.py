"""Runs a model-training job end to end on the simulated platform.

The executor glues together:

* a **scheduler** (CE-scaling's :class:`AdaptiveScheduler` or a baseline)
  that decides the allocation before each epoch;
* a **loss provider** — real distributed SGD for the linear models, or the
  stochastic convergence-curve sampler for the NN surrogates;
* the **FaaS platform simulator**, which executes each epoch (cold starts,
  jittered phases, barrier) and bills it;
* the **delayed-restart planner**, which hides allocation-switch overhead.

Training stops when the loss reaches the workload's target, the epoch cap
is hit, or the budget is exhausted beyond tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol

from repro.common.errors import FaultError, RetryExhaustedError, ValidationError
from repro.common.types import EpochCostBreakdown, EpochRecord, JobResult
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.costmodel import function_price_per_second, storage_cost
from repro.analytical.pareto import ProfiledAllocation
from repro.analytical.timemodel import epoch_time
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.ml.curves import LossCurveSampler
from repro.ml.models import Workload
from repro.ml.sgd import DistributedSGD, SGDConfig
from repro.tuning.plan import Objective
from repro.training.delayed_restart import DelayedRestartPlanner
from repro.profiling import profile_phase
from repro.telemetry import get_registry, get_tracer
from repro.timeseries import get_sampler
from repro.slo.events import get_event_bus


class LossProvider(Protocol):
    """Produces the end-of-epoch training loss."""

    def epoch_loss(self, n_workers: int) -> float: ...


class SurrogateLossProvider:
    """Loss from the workload's stochastic convergence curve.

    The statistical trajectory is allocation-independent (BSP keeps the
    effective global batch fixed), matching the paper's model where θ only
    changes *how fast* epochs run, not how many are needed.
    """

    def __init__(self, workload: Workload, seed: int = 0) -> None:
        self._sampler = LossCurveSampler(
            workload.curve_params(),
            seed=seed,
            run_label=("train", workload.name),
            anchor_target=workload.target_loss,
        )

    def epoch_loss(self, n_workers: int) -> float:
        return self._sampler.next_loss()


class SGDLossProvider:
    """Loss from genuine distributed numpy SGD (linear models only)."""

    def __init__(
        self,
        workload: Workload,
        seed: int = 0,
        rows_per_worker: int = 500,
        max_iterations: int = 40,
    ) -> None:
        self.workload = workload
        self.seed = seed
        self.max_iterations = max_iterations
        self._config = SGDConfig(
            batch_size=workload.batch_size,
            learning_rate=workload.learning_rate,
            rows_per_worker=rows_per_worker,
        )
        self._sgd: DistributedSGD | None = None

    def epoch_loss(self, n_workers: int) -> float:
        if self._sgd is None:
            self._sgd = DistributedSGD(
                self.workload, n_workers, self._config, seed=self.seed
            )
        elif self._sgd.n_workers != n_workers:
            self._sgd = self._sgd.reshard(n_workers, seed=self.seed)
        k = min(
            self.max_iterations,
            self.workload.iterations_per_epoch(n_workers),
        )
        return self._sgd.run_epoch(iterations=k)


@dataclass(frozen=True)
class TrainingJobSpec:
    """A model-training job (one bar of Fig. 12/13).

    Attributes:
        workload: the (model, dataset) pair with Table IV hyperparameters.
        objective: JCT-min given budget, or cost-min given QoS.
        budget_usd / qos_s: the constraint.
        max_epochs: hard stop.
        use_real_sgd: run actual numpy SGD for linear models instead of the
            surrogate curve (slower; experiments default to surrogates so
            convergence horizons stay controlled across schedulers).
        seed: randomness root for noise and loss trajectories.
    """

    workload: Workload
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    max_epochs: int = 400
    use_real_sgd: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.objective is Objective.MIN_JCT_GIVEN_BUDGET and self.budget_usd is None:
            raise ValidationError("JCT minimization needs budget_usd")
        if self.objective is Objective.MIN_COST_GIVEN_QOS and self.qos_s is None:
            raise ValidationError("cost minimization needs qos_s")

    def make_loss_provider(self) -> LossProvider:
        if self.use_real_sgd and self.workload.profile.family.is_linear:
            return SGDLossProvider(self.workload, seed=self.seed)
        return SurrogateLossProvider(self.workload, seed=self.seed)


def _gang_slowdown(worker_durations_s: tuple[float, ...] | list[float]) -> float:
    """Slowest worker over the gang median (1.0 for degenerate gangs)."""
    durations = sorted(worker_durations_s)
    if not durations:
        return 1.0
    mid = len(durations) // 2
    if len(durations) % 2:
        median = durations[mid]
    else:
        median = (durations[mid - 1] + durations[mid]) / 2.0
    return max(durations) / median if median > 0 else 1.0


class TrainingScheduler(Protocol):
    """The protocol CE-scaling's scheduler and all baselines implement."""

    def initial_decision(self): ...

    def on_epoch_end(self, loss: float, epoch_cost_usd: float, epoch_time_s: float): ...


@dataclass
class TrainingExecutor:
    """Executes one training job under one scheduler."""

    spec: TrainingJobSpec
    scheduler: TrainingScheduler
    platform_config: PlatformConfig = field(default_factory=lambda: DEFAULT_PLATFORM)
    restart_planner: DelayedRestartPlanner | None = None
    budget_overrun_tolerance: float = 1.5
    # Fault seeding forwarded to the platform: rank -> compute slowdown.
    straggler_factors: dict[int, float] = field(default_factory=dict)
    # A repro.faults.FaultInjector, or None for the exact pre-fault path.
    fault_injector: object | None = None
    # A repro.kernel.RunJournal, or None. When set, every epoch boundary
    # is journaled (fresh mode) or validated against the journaled prefix
    # (resume mode) — see docs/kernel.md.
    journal: object | None = None

    def __post_init__(self) -> None:
        if self.restart_planner is None:
            self.restart_planner = DelayedRestartPlanner(platform=self.platform_config)

    def run(self) -> JobResult:
        """Run to convergence (or cap/budget exhaustion); returns the result."""
        with profile_phase("train/run"):
            return self._run()

    def _run(self) -> JobResult:
        spec = self.spec
        w = spec.workload
        platform = FaaSPlatform(
            platform=self.platform_config,
            seed=spec.seed,
            straggler_factors=self.straggler_factors,
            fault_injector=self.fault_injector,
        )
        injector = self.fault_injector
        # The kernel owns the run's job clock (JCT); the executor credits
        # every overhead in occurrence order instead of keeping a private
        # accumulator, so the job clock is bit-reproducible.
        kernel = platform.sim
        journal = self.journal
        checkpoints = None
        if injector is not None:
            from repro.faults.resilience import CheckpointStore

            checkpoints = CheckpointStore()
        excluded_allocations: set = set()
        provider = spec.make_loss_provider()
        registry = get_registry()
        tracer = get_tracer()
        bus = get_event_bus()
        ts = get_sampler()
        m_hidden = registry.counter(
            "repro_scheduler_restart_hidden_seconds_total",
            "Restart lead time overlapped with running epochs (Fig. 8)",
        )
        m_visible = registry.counter(
            "repro_scheduler_restart_visible_seconds_total",
            "Restart lead time left on the critical path",
        )
        decision = self.scheduler.initial_decision()
        point: ProfiledAllocation = decision.point
        generation = 0
        jct = kernel.credit_job_time(decision.search_overhead_s)
        sched_overhead = decision.search_overhead_s
        if decision.search_overhead_s:
            tracer.span(
                "initial-search", "scheduling", platform.sim.now,
                decision.search_overhead_s, "scheduler",
            )
            tracer.advance(decision.search_overhead_s)
        if bus.enabled:
            bus.emit(
                "plan_chosen", jct, scope="train",
                allocation=point.allocation.describe(),
                predicted_total_epochs=getattr(
                    decision, "predicted_total_epochs", None
                ),
                search_overhead_s=decision.search_overhead_s,
            )
        cost = 0.0
        records: list[EpochRecord] = []
        n_restarts = 0
        converged = False
        loss = float("inf")
        prewarmed_group: str | None = None

        for epoch_idx in range(1, spec.max_epochs + 1):
            epoch_attempt = 0
            while True:
                alloc = point.allocation
                group = f"{alloc.describe()}#g{generation}"
                base = epoch_time(w, alloc, self.platform_config)
                epoch_start = platform.sim.now
                try:
                    with profile_phase("train/execute_epoch") as ph:
                        ph.add("functions", alloc.n_functions)
                        result = platform.execute_epoch(
                            EpochExecution(
                                group=group,
                                n_functions=alloc.n_functions,
                                memory_mb=alloc.memory_mb,
                                load_s=base.load_s,
                                compute_s=base.compute_s,
                                sync_s=base.sync_s,
                                prewarmed=(group == prewarmed_group),
                                epoch_index=epoch_idx,
                                storage=alloc.storage.value,
                                incarnation=epoch_attempt,
                            )
                        )
                    break
                except RetryExhaustedError:
                    # The gang (or its storage sync) burned through the
                    # retry budget: restore the epoch-boundary checkpoint
                    # and re-run only this epoch on a fresh generation.
                    epoch_attempt += 1
                    lost_s = platform.sim.now - epoch_start
                    jct = kernel.credit_job_time(lost_s)
                    # Restore = one model transfer from the allocation's
                    # storage; CheckpointError ends the job when the
                    # restore budget itself is exhausted.
                    from repro.faults.resilience import restore_overhead_s

                    restore_s = checkpoints.restore(
                        epoch_idx,
                        restore_overhead_s(
                            w.model_mb, alloc.storage, self.platform_config
                        ),
                        scope="train", t_s=jct,
                    )
                    jct = kernel.credit_job_time(restore_s)
                    tracer.span(
                        "checkpoint-restore", "fault",
                        platform.sim.now, restore_s, "scheduler",
                        epoch=epoch_idx,
                    )
                    tracer.advance(restore_s)
                    platform.retire(group)
                    generation += 1
                    prewarmed_group = None
                    injector.record(
                        "checkpoint-restore", jct, epoch=epoch_idx,
                        lost_s=restore_s,
                        detail=f"re-running epoch {epoch_idx} "
                               f"(attempt {epoch_attempt + 1})",
                    )
                    if bus.enabled:
                        bus.emit(
                            "retry_exhausted", jct, scope="train",
                            epoch=epoch_idx, lost_s=lost_s,
                            allocation=alloc.describe(),
                        )
                        bus.emit(
                            "checkpoint_restore", jct, scope="train",
                            epoch=epoch_idx, restore_s=restore_s,
                            attempt=epoch_attempt,
                        )
                except FaultError as exc:
                    # Permanent function loss: this allocation can no
                    # longer field a full gang. Degrade gracefully —
                    # re-select from the surviving Pareto points.
                    epoch_attempt += 1
                    lost_s = platform.sim.now - epoch_start
                    jct = kernel.credit_job_time(lost_s)
                    excluded_allocations.add(alloc)
                    point = self._degrade_allocation(
                        exc, alloc, epoch_idx, jct, cost,
                        excluded_allocations, lost_s, bus,
                    )
                    platform.retire(group)
                    generation += 1
                    prewarmed_group = None
                    n_restarts += 1
            epoch_wall = result.wall_time_s
            stor_usd = storage_cost(w, alloc, epoch_wall, self.platform_config)
            platform.meter.bill_storage(stor_usd)
            epoch_cost = result.billed_usd + stor_usd
            loss = provider.epoch_loss(alloc.n_functions)
            jct = kernel.credit_job_time(epoch_wall)
            cost += epoch_cost
            if journal is not None:
                # Crash-consistency boundary: the epoch's outcome plus
                # every RNG cursor is fsynced before the run moves on, so
                # a host SIGKILL loses at most the epoch in flight.
                journal.record_epoch(
                    epoch=epoch_idx,
                    attempt=epoch_attempt,
                    job_clock_s=jct,
                    event_clock_s=platform.sim.now,
                    events_processed=platform.sim.events_processed,
                    noise_draws=platform.noise_draws,
                    fault_records=len(injector.ledger) if injector else 0,
                    loss=loss,
                    cost_usd=cost,
                    allocation=alloc.describe(),
                )
            if checkpoints is not None:
                # Epoch-boundary checkpoint: the model state this epoch
                # produced is durable in storage; a later failure re-runs
                # only its own epoch, never this one.
                checkpoints.save(epoch_idx)
                if bus.enabled and result.n_faults:
                    bus.emit(
                        "fault_injected", jct, scope="train",
                        epoch=epoch_idx, n_faults=result.n_faults,
                        overhead_s=result.fault_overhead_s,
                        allocation=alloc.describe(),
                    )
            tracer.span(
                "epoch", "epoch", epoch_start, epoch_wall, "epochs",
                epoch=epoch_idx, allocation=alloc.describe(), loss=loss,
                cost_usd=epoch_cost,
            )
            records.append(
                EpochRecord(
                    index=epoch_idx,
                    allocation=alloc,
                    time=result.time,
                    cost=EpochCostBreakdown(
                        invocation_usd=alloc.n_functions
                        * self.platform_config.pricing.usd_per_invocation,
                        compute_usd=result.billed_usd
                        - alloc.n_functions
                        * self.platform_config.pricing.usd_per_invocation,
                        storage_usd=stor_usd,
                    ),
                    loss=loss,
                    cold_start_s=result.cold_start_s,
                    queue_wait_s=result.queue_wait_s,
                    worker_durations_s=result.worker_durations_s,
                )
            )
            if bus.enabled:
                bus.emit(
                    "epoch_done", jct, scope="train",
                    epoch=epoch_idx, wall_s=epoch_wall, cost_usd=epoch_cost,
                    loss=loss, allocation=alloc.describe(),
                    straggler_slowdown=_gang_slowdown(result.worker_durations_s),
                )
            if ts.enabled:
                # Epoch-boundary samples on the scheduler's job-time clock:
                # the active allocation (m workers x s MB), what each
                # barrier sync cost, and the cumulative bill.
                ts.sample("train.allocation.m", jct, float(alloc.n_functions))
                ts.sample("train.allocation.s_mb", jct, float(alloc.memory_mb))
                ts.sample("train.sync_s", jct, result.time.sync_s)
                ts.sample("train.cost_usd", jct, cost)
            if loss <= w.target_loss:
                converged = True
                break
            if (
                spec.budget_usd is not None
                and cost > spec.budget_usd * self.budget_overrun_tolerance
            ):
                break

            decision = self.scheduler.on_epoch_end(loss, epoch_cost, epoch_wall)
            if (
                excluded_allocations
                and decision.point.allocation in excluded_allocations
            ):
                # A scheduler without exclusion support re-selected an
                # allocation with permanently lost instances; hold the
                # degraded allocation instead.
                decision = replace(decision, point=point, restart=False)
            jct = kernel.credit_job_time(decision.search_overhead_s)
            sched_overhead += decision.search_overhead_s
            if decision.search_overhead_s:
                tracer.span(
                    "search", "scheduling", platform.sim.now,
                    decision.search_overhead_s, "scheduler", epoch=epoch_idx,
                )
                tracer.advance(decision.search_overhead_s)
            if bus.enabled and decision.search_overhead_s:
                bus.emit(
                    "plan_chosen", jct, scope="train",
                    epoch=epoch_idx,
                    allocation=decision.point.allocation.describe(),
                    predicted_total_epochs=getattr(
                        decision, "predicted_total_epochs", None
                    ),
                    search_overhead_s=decision.search_overhead_s,
                )
            if decision.restart:
                n_restarts += 1
                new_alloc = decision.point.allocation
                if ts.enabled:
                    ts.mark("reallocation", jct, new_alloc.describe())
                plan = self.restart_planner.plan_restart(w, new_alloc, epoch_wall)
                jct = kernel.credit_job_time(plan.visible_overhead_s)
                sched_overhead += plan.visible_overhead_s
                m_hidden.inc(plan.hidden_overhead_s)
                m_visible.inc(plan.visible_overhead_s)
                if plan.hidden_overhead_s > 0:
                    # The new functions started during the epoch that just
                    # ran, timed to finish loading as it ended (Fig. 8); the
                    # offset already includes this epoch's search overhead,
                    # so subtract it to land the window inside the epoch.
                    overlap = min(plan.hidden_overhead_s, epoch_wall)
                    tracer.span(
                        "restart-overlap", "scheduling",
                        platform.sim.now - overlap - decision.search_overhead_s,
                        overlap, "scheduler",
                        epoch=epoch_idx, hidden=True,
                        target=new_alloc.describe(),
                    )
                if plan.visible_overhead_s > 0:
                    tracer.span(
                        "restart", "scheduling", platform.sim.now,
                        plan.visible_overhead_s, "scheduler",
                        epoch=epoch_idx, target=new_alloc.describe(),
                    )
                    tracer.advance(plan.visible_overhead_s)
                platform.retire(group)
                generation += 1
                new_group = f"{new_alloc.describe()}#g{generation}"
                if plan.hidden_overhead_s > 0:
                    platform.prewarm(new_group, new_alloc.n_functions)
                    prewarmed_group = new_group
                else:
                    prewarmed_group = None
                records[-1].restarted = True
                records[-1].scheduling_overhead_s = (
                    decision.search_overhead_s + plan.visible_overhead_s
                )
                records[-1].hidden_restart_overlap_s = plan.hidden_overhead_s
                if bus.enabled:
                    bus.emit(
                        "restart_begun", jct, scope="train",
                        epoch=epoch_idx, visible_s=plan.visible_overhead_s,
                        hidden_s=plan.hidden_overhead_s,
                        target=new_alloc.describe(),
                    )
                    if plan.hidden_overhead_s > 0:
                        bus.emit(
                            "restart_hidden", jct, scope="train",
                            epoch=epoch_idx, hidden_s=plan.hidden_overhead_s,
                            target=new_alloc.describe(),
                        )
            point = decision.point

        extra: dict = {}
        if injector is not None:
            summary = injector.ledger.summary()
            summary["checkpoint_restores"] = checkpoints.n_restores
            summary["restore_overhead_s"] = checkpoints.restore_overhead_total_s
            summary["degraded_allocations"] = len(excluded_allocations)
            extra["faults"] = summary
        return JobResult(
            jct_s=jct,
            cost_usd=cost,
            epochs=records,
            converged=converged,
            final_loss=loss,
            scheduling_overhead_s=sched_overhead,
            n_restarts=n_restarts,
            extra=extra,
        )

    def _degrade_allocation(
        self, exc, alloc, epoch_idx: int, jct: float, cost: float,
        excluded, lost_s: float, bus,
    ):
        """Pick a surviving Pareto point after permanent function loss.

        Mirrors Algorithm 2's ``select_best_allocation`` over the
        candidate set minus every allocation that has lost instances;
        re-raises the original fault when no scheduler candidates exist
        or nothing survives.
        """
        from repro.common.errors import ConstraintError
        from repro.faults.resilience import select_degraded_allocation

        scheduler = self.scheduler
        exclude = getattr(scheduler, "exclude_allocation", None)
        if exclude is not None:
            exclude(alloc)
        candidates = getattr(scheduler, "candidates", None)
        if not candidates:
            raise exc
        horizon = float(
            getattr(scheduler, "predicted_total_epochs", 0.0) or (epoch_idx + 1)
        )
        remaining = max(1.0, horizon - (epoch_idx - 1))
        spec = self.spec
        budget = (
            None if spec.budget_usd is None else max(0.0, spec.budget_usd - cost)
        )
        qos = None if spec.qos_s is None else max(0.0, spec.qos_s - jct)
        try:
            new_point = select_degraded_allocation(
                candidates, excluded, spec.objective, remaining,
                budget_usd=budget, qos_s=qos,
            )
        except ConstraintError:
            raise exc from None
        if hasattr(scheduler, "current"):
            scheduler.current = new_point
        self.fault_injector.record(
            "degraded-allocation", jct, epoch=epoch_idx, lost_s=lost_s,
            detail=f"{alloc.describe()} -> {new_point.allocation.describe()}",
        )
        ts = get_sampler()
        if ts.enabled:
            ts.mark(
                "reallocation", jct,
                f"degraded:{new_point.allocation.describe()}",
            )
        if bus.enabled:
            bus.emit(
                "degraded_allocation", jct, scope="train", epoch=epoch_idx,
                lost=alloc.describe(),
                replacement=new_point.allocation.describe(),
                lost_s=lost_s,
            )
        return new_point
