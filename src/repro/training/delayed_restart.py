"""Delayed function restart (paper Fig. 8, §III-D).

When the adaptive scheduler decides at the end of epoch k-1 to switch the
allocation, naively tearing down and restarting functions puts the cold
start and dataset load on the critical path. Delayed restart instead starts
the new functions *during* epoch k, timed so they finish loading exactly
when epoch k's gradient upload (Send_G) completes; the new functions pull
the merged model directly and take over at epoch k+1.

The visible overhead is therefore ``max(0, lead_time - epoch_k_duration)``
— zero whenever the running epoch is longer than the new functions' startup
plus load (the common case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import Allocation
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.timemodel import epoch_time
from repro.ml.models import Workload


@dataclass(frozen=True, slots=True)
class RestartPlan:
    """When to launch the new functions and what overhead remains visible."""

    lead_time_s: float
    launch_offset_s: float  # from the start of the overlap epoch
    hidden_overhead_s: float
    visible_overhead_s: float


@dataclass
class DelayedRestartPlanner:
    """Computes optimal launch times for allocation switches."""

    platform: PlatformConfig = DEFAULT_PLATFORM
    enabled: bool = True

    def lead_time_s(self, workload: Workload, new_alloc: Allocation) -> float:
        """Startup + dataset-load time the new functions need before they
        can take over (cold start + Load_D of Fig. 8)."""
        t_new = epoch_time(workload, new_alloc, self.platform)
        return self.platform.limits.cold_start_s + t_new.load_s

    def plan_restart(
        self,
        workload: Workload,
        new_alloc: Allocation,
        overlap_epoch_duration_s: float,
    ) -> RestartPlan:
        """Plan the switch given the duration of the epoch being overlapped.

        With delayed restart disabled (the WO-dr ablation), the whole lead
        time lands on the critical path.
        """
        lead = self.lead_time_s(workload, new_alloc)
        if not self.enabled:
            return RestartPlan(
                lead_time_s=lead,
                launch_offset_s=overlap_epoch_duration_s,
                hidden_overhead_s=0.0,
                visible_overhead_s=lead,
            )
        hidden = min(lead, overlap_epoch_duration_s)
        return RestartPlan(
            lead_time_s=lead,
            launch_offset_s=max(0.0, overlap_epoch_duration_s - lead),
            hidden_overhead_s=hidden,
            visible_overhead_s=lead - hidden,
        )
