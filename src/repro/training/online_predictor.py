"""Online epoch prediction by loss-curve fitting (paper §II-C2, Fig. 4b).

After every epoch the predictor refits a family of convergence curves to
the observed (epoch, loss) points and solves for the epoch at which the
best-fitting curve reaches the target loss. The paper reports this error
decaying to ~5% as state accumulates; the fit families follow Optimus [16]:

* inverse power law  l(e) = l_inf + a * (e+1)^(-alpha)
* exponential decay  l(e) = l_inf + a * exp(-beta * e)
* hyperbolic         l(e) = 1 / (a*e + b) + l_inf
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy.optimize import OptimizeWarning, curve_fit

from repro.common.errors import PredictionError
from repro.ml.curves import exponential_decay, hyperbolic, inverse_power_law


@dataclass(frozen=True, slots=True)
class CurveFit:
    """One fitted curve family."""

    family: str
    params: tuple[float, ...]
    sse: float

    def loss_at(self, epoch: np.ndarray | float) -> np.ndarray | float:
        fn = _FAMILIES[self.family][0]
        return fn(epoch, *self.params)


def _ipl_epochs_to(target: float, l_inf: float, a: float, alpha: float) -> float:
    if target <= l_inf or a <= 0 or alpha <= 0:
        raise PredictionError("target below fitted floor (inverse power law)")
    # Solve in log space; a flat fitted tail (tiny alpha) overflows the
    # direct power, which just means "unreachably far".
    log_e = np.log(a / (target - l_inf)) / alpha
    if log_e > 25.0:
        raise PredictionError("fitted curve reaches the target unreachably late")
    return float(np.exp(log_e) - 1.0)


def _exp_epochs_to(target: float, l_inf: float, a: float, beta: float) -> float:
    if target <= l_inf or a <= 0 or beta <= 0:
        raise PredictionError("target below fitted floor (exponential)")
    return float(np.log(a / (target - l_inf)) / beta)


def _hyp_epochs_to(target: float, a: float, b: float, l_inf: float) -> float:
    if target <= l_inf or a <= 0:
        raise PredictionError("target below fitted floor (hyperbolic)")
    return (1.0 / (target - l_inf) - b) / a


_FAMILIES = {
    "inverse_power_law": (inverse_power_law, _ipl_epochs_to),
    "exponential": (exponential_decay, _exp_epochs_to),
    "hyperbolic": (hyperbolic, _hyp_epochs_to),
    # Grid-floor IPL shares the inverse-power-law functional form and
    # solver; it differs only in how it is fitted (see _fit_ipl_grid).
    "ipl_grid": (inverse_power_law, _ipl_epochs_to),
}


def _fit_ipl_grid(
    e: np.ndarray,
    y: np.ndarray,
    prior: tuple[float, float, float] | None = None,
    prior_weight: float = 3.0,
) -> CurveFit | None:
    """Robust inverse-power-law fit by grid search over the floor.

    For each candidate floor l_inf the model becomes linear in log space:
    ``log(y - l_inf) = log(a) - alpha * log(e + 1)``, solved by least
    squares. The floor minimizing the (original-space) SSE wins. This
    avoids curve_fit's local minima, which matters when the scheduler acts
    on every mid-run fit.

    Early in training the (floor, alpha) pair is not identifiable from the
    observations — wildly different curves fit the first epochs equally
    well. An optional *prior* ``(floor0, a0, alpha0)`` (the workload's
    nominal convergence curve) regularizes the choice; its weight decays
    as 1/n so the data dominates once the run is long enough. This is what
    a production loss-curve fitter does: it is initialized from the model
    family's known convergence behaviour.
    """
    y_min = float(y.min())
    if y_min <= 0:
        return None
    best: CurveFit | None = None
    best_score = float("inf")
    log_e = np.log(e + 1.0)
    y_var = float(np.var(y)) + 1e-12
    n = len(y)
    for frac in np.linspace(0.0, 0.98, 25):
        floor = frac * y_min
        gap = y - floor
        if (gap <= 0).any():
            continue
        log_gap = np.log(gap)
        slope, intercept = np.polyfit(log_e, log_gap, 1)
        alpha = -slope
        if alpha <= 0:
            continue
        a = float(np.exp(intercept))
        resid = y - inverse_power_law(e, floor, a, alpha)
        sse = float(resid @ resid)
        score = sse / (n * y_var)
        if prior is not None:
            floor0, a0, alpha0 = prior
            amp0 = max(a0, 1e-12)
            penalty = (np.log(alpha / max(alpha0, 1e-12))) ** 2 + (
                (floor - floor0) / amp0
            ) ** 2
            score += (prior_weight / n) * float(penalty)
        if score < best_score:
            best_score = score
            best = CurveFit(family="ipl_grid", params=(floor, a, alpha), sse=sse)
    return best


class OnlinePredictor:
    """Fits the convergence curve online and predicts epochs-to-target.

    Usage: call :meth:`observe` after every epoch, then
    :meth:`predict_total_epochs`. Needs ``min_points`` observations before
    the first prediction (raises :class:`PredictionError` earlier).
    """

    def __init__(
        self,
        target_loss: float,
        min_points: int = 4,
        families: tuple[str, ...] = tuple(_FAMILIES),
        max_prediction: float = 100_000.0,
        prior: "object | None" = None,
        prior_weight: float = 3.0,
    ) -> None:
        """``prior`` may be a :class:`repro.ml.curves.CurveParams` with the
        workload's nominal convergence curve; it regularizes the grid-floor
        IPL fit early in training (weight decays as observations arrive)."""
        if target_loss <= 0:
            raise PredictionError(f"target_loss must be positive, got {target_loss}")
        unknown = set(families) - set(_FAMILIES)
        if unknown:
            raise PredictionError(f"unknown curve families: {sorted(unknown)}")
        self.target_loss = target_loss
        self.min_points = max(3, min_points)
        self.families = families
        self.max_prediction = max_prediction
        if prior is not None:
            self._prior = (
                float(prior.floor_loss),
                float(prior.amplitude),
                float(prior.alpha),
            )
        else:
            self._prior = None
        self.prior_weight = prior_weight
        self._epochs: list[float] = []
        self._losses: list[float] = []
        self.last_fit: CurveFit | None = None

    @property
    def n_observations(self) -> int:
        return len(self._losses)

    def observe(self, loss: float) -> None:
        """Record the loss at the end of the next epoch (1-based index)."""
        self._epochs.append(float(len(self._epochs) + 1))
        self._losses.append(float(loss))

    def _fit_family(self, family: str, e: np.ndarray, y: np.ndarray) -> CurveFit | None:
        if family == "ipl_grid":
            return _fit_ipl_grid(e, y, prior=self._prior, prior_weight=self.prior_weight)
        fn, _ = _FAMILIES[family]
        y_min, y_max = float(y.min()), float(y.max())
        span = max(y_max - y_min, 1e-9)
        if family == "inverse_power_law":
            p0 = [max(y_min * 0.8, 1e-9), span, 0.5]
            bounds = ([0.0, 1e-12, 1e-3], [y_min, np.inf, 10.0])
        elif family == "exponential":
            p0 = [max(y_min * 0.8, 1e-9), span, 0.1]
            bounds = ([0.0, 1e-12, 1e-6], [y_min, np.inf, 10.0])
        else:  # hyperbolic
            p0 = [0.1, 1.0 / max(y_max, 1e-9), max(y_min * 0.5, 0.0)]
            bounds = ([1e-9, 1e-9, 0.0], [np.inf, np.inf, y_min])
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", OptimizeWarning)
                warnings.simplefilter("ignore", RuntimeWarning)
                params, _ = curve_fit(
                    fn, e, y, p0=p0, bounds=bounds, maxfev=2000
                )
        except (RuntimeError, ValueError):
            return None
        resid = y - fn(e, *params)
        return CurveFit(family=family, params=tuple(params), sse=float(resid @ resid))

    def fit(self) -> CurveFit:
        """Fit all families to the observations; return the best by SSE."""
        if self.n_observations < self.min_points:
            raise PredictionError(
                f"need >= {self.min_points} observations, have {self.n_observations}"
            )
        e = np.asarray(self._epochs)
        y = np.asarray(self._losses)
        fits = [self._fit_family(f, e, y) for f in self.families]
        fits = [f for f in fits if f is not None]
        if not fits:
            raise PredictionError("no curve family converged on the observations")
        best = min(fits, key=lambda f: f.sse)
        self.last_fit = best
        return best

    def predict_total_epochs(self) -> float:
        """Predicted total epochs (from epoch 1) to reach the target loss.

        Robustness: every converged family contributes a prediction and the
        *median* is reported — a single family with a pathological tail
        (e.g. an exponential fitted to power-law data) cannot blow up the
        estimate the scheduler acts on.
        """
        if self._losses and min(self._losses) <= self.target_loss:
            # Already there: the answer is the first epoch that hit it.
            for i, loss in enumerate(self._losses, start=1):
                if loss <= self.target_loss:
                    return float(i)
        if self.n_observations < self.min_points:
            raise PredictionError(
                f"need >= {self.min_points} observations, have {self.n_observations}"
            )
        e = np.asarray(self._epochs)
        y = np.asarray(self._losses)
        predictions: dict[str, float] = {}
        fits: dict[str, CurveFit] = {}
        for family in self.families:
            fit = self._fit_family(family, e, y)
            if fit is None:
                continue
            _, solver = _FAMILIES[family]
            try:
                p = solver(self.target_loss, *fit.params)
            except PredictionError:
                continue
            if np.isfinite(p) and p >= 0:
                predictions[family] = float(p)
                fits[family] = fit
        if not predictions:
            raise PredictionError("no curve family produced a usable prediction")
        # The best-fitting family's prediction, clamped toward the family
        # median when it is a >3x outlier (one family with a pathological
        # tail must not blow up the value the scheduler acts on). With a
        # prior, the regularized grid fit is preferred outright — raw SSE
        # rewards overfit families whose extrapolation is unstable.
        if self._prior is not None and "ipl_grid" in fits:
            best_family = "ipl_grid"
        else:
            best_family = min(fits, key=lambda f: fits[f].sse)
        self.last_fit = fits[best_family]
        predicted = predictions[best_family]
        median = float(np.median(list(predictions.values())))
        if median > 0 and (predicted > 3.0 * median or predicted < median / 3.0):
            predicted = median
        return float(min(max(predicted, self.n_observations), self.max_prediction))

    def predict_remaining_epochs(self) -> float:
        """Predicted epochs still needed after the last observed one."""
        return max(0.0, self.predict_total_epochs() - self.n_observations)
