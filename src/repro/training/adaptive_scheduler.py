"""Algorithm 2 — the adaptive resource scheduler for model training.

The scheduler starts from an offline (sampling-based) estimate of the total
epochs, picks the best allocation from the Pareto set 𝒫 for that horizon,
then refits the loss curve online after every epoch. When the predicted
total-epoch count drifts by more than the threshold δ relative to the last
acted-on prediction, it re-selects the allocation for the *remaining*
epochs under the *remaining* budget (or deadline) — triggering a function
restart, whose overhead the delayed-restart mechanism hides.

Scheduling overhead is modelled per search as
``per_candidate_eval_s * |candidates|``: the real system's estimation and
scheduling cost scales with the number of allocations examined, which is
why the Pareto boundary (tens of points instead of the full grid's
hundreds) cuts the overhead ~64% (Fig. 21b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConstraintError, PredictionError
from repro.analytical.pareto import ProfiledAllocation
from repro.tuning.plan import Objective
from repro.ml.models import Workload
from repro.training.offline_predictor import OfflinePredictor
from repro.training.online_predictor import OnlinePredictor
from repro.profiling import profile_phase
from repro.telemetry import get_registry
from repro.slo.events import get_event_bus


@dataclass(frozen=True, slots=True)
class SchedulerDecision:
    """What to run the next epoch with."""

    point: ProfiledAllocation
    restart: bool
    predicted_total_epochs: float
    search_overhead_s: float


def _knee(candidates: list[ProfiledAllocation]) -> ProfiledAllocation:
    """The balanced knee of the boundary: minimizes the product of the
    relative time and relative cost (each normalized by the boundary's
    minimum). Used as the best-effort point when no allocation satisfies
    the projected constraint."""
    min_time = min(p.time_s for p in candidates)
    min_cost = min(p.cost_usd for p in candidates)
    return min(
        candidates,
        key=lambda p: (p.time_s / max(min_time, 1e-12))
        * (p.cost_usd / max(min_cost, 1e-12)),
    )


def select_best_allocation(
    candidates: list[ProfiledAllocation],
    objective: Objective,
    remaining_epochs: float,
    budget_usd: float | None = None,
    qos_s: float | None = None,
) -> ProfiledAllocation:
    """Greedy local selection over 𝒫 (Alg. 2's select_best_allocation).

    JCT-min: fastest point whose projected remaining cost fits the budget.
    Cost-min: cheapest point whose projected remaining time fits the
    deadline. When nothing is feasible the job keeps running best-effort on
    the fastest point within 25% of the minimum cost (resp. the cheapest
    within 25% of the minimum time).
    """
    if not candidates:
        raise ConstraintError("empty candidate set")
    horizon = max(remaining_epochs, 1.0)
    if objective is Objective.MIN_JCT_GIVEN_BUDGET:
        if budget_usd is None:
            raise ConstraintError("JCT minimization needs budget_usd")
        feasible = [p for p in candidates if horizon * p.cost_usd <= budget_usd]
        if feasible:
            return min(feasible, key=lambda p: p.time_s)
        # No point is affordable for the whole horizon. The JCT-optimal
        # spend under a budget is a *mix* of fast and cheap epochs, and
        # since this selection reruns every epoch, the mix emerges
        # dynamically: run the fastest point whose next epoch still leaves
        # enough budget to coast the remaining horizon at minimum cost.
        min_cost = min(p.cost_usd for p in candidates)
        mixable = [
            p
            for p in candidates
            if p.cost_usd + (horizon - 1.0) * min_cost <= budget_usd
        ]
        if mixable:
            return min(mixable, key=lambda p: p.time_s)
        # Even one epoch overruns the projection — which, this deep into
        # infeasibility, usually means the horizon estimate is inflated.
        # Coast at the knee of the boundary: the point minimizing
        # (time / min_time) * (cost / min_cost), balancing overrun against
        # a catastrophic slowdown.
        return _knee(candidates)
    if qos_s is None:
        raise ConstraintError("cost minimization needs qos_s")
    feasible = [p for p in candidates if horizon * p.time_s <= qos_s]
    if feasible:
        return min(feasible, key=lambda p: p.cost_usd)
    min_time = min(p.time_s for p in candidates)
    mixable = [
        p for p in candidates if p.time_s + (horizon - 1.0) * min_time <= qos_s
    ]
    if mixable:
        return min(mixable, key=lambda p: p.cost_usd)
    return _knee(candidates)


@dataclass
class AdaptiveScheduler:
    """CE-scaling's training-time scheduler (Algorithm 2).

    Attributes:
        workload: what is being trained.
        candidates: the Pareto set 𝒫 (or the full space for the WO-pa
            ablation).
        objective: JCT-min given budget, or cost-min given QoS.
        budget_usd / qos_s: the constraint.
        delta: relative prediction-drift threshold δ (paper default 0.1).
        per_candidate_eval_s: simulated scheduling cost per candidate
            examined (drives the Fig. 21 overhead accounting).
        adjust_every_epoch: when True, re-select every epoch regardless of
            δ (Siren's behaviour — used by that baseline).
    """

    workload: Workload
    candidates: list[ProfiledAllocation]
    objective: Objective
    budget_usd: float | None = None
    qos_s: float | None = None
    delta: float = 0.1
    per_candidate_eval_s: float = 0.02
    adjust_every_epoch: bool = False
    offline: OfflinePredictor | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.offline is None:
            self.offline = OfflinePredictor(self.workload, seed=self.seed)
        self.online = OnlinePredictor(
            target_loss=self.workload.target_loss,
            prior=self.workload.curve_params(),
        )
        self.predicted_total_epochs: float = 0.0
        self.epochs_done = 0
        self.spent_usd = 0.0
        self.elapsed_s = 0.0
        self.current: ProfiledAllocation | None = None
        self.n_searches = 0
        self.total_search_overhead_s = 0.0
        self._prediction_history: list[float] = []
        self._drift_streak = 0
        self._bus = get_event_bus()
        registry = get_registry()
        self._m_predictions = registry.counter(
            "repro_scheduler_prediction_updates_total",
            "Successful online prediction refits",
        )
        self._m_drift = registry.histogram(
            "repro_scheduler_prediction_drift",
            "Relative drift of each new prediction vs the acted-on one",
            buckets=(0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0),
        )
        self._m_predicted_epochs = registry.gauge(
            "repro_scheduler_predicted_total_epochs",
            "Latest predicted total-epoch horizon",
        )
        self._m_searches = registry.counter(
            "repro_scheduler_searches_total",
            "Allocation re-selections over the candidate set",
        )
        self._m_reallocations = registry.counter(
            "repro_scheduler_reallocations_total",
            "Decisions that switched the allocation (restarts)",
        )
        self._m_holds = registry.counter(
            "repro_scheduler_holds_total",
            "Epoch-end decisions that kept the current allocation",
        )

    # ------------------------------------------------------------------ internals
    def _search_overhead(self) -> float:
        self.n_searches += 1
        overhead = self.per_candidate_eval_s * len(self.candidates)
        self.total_search_overhead_s += overhead
        self._m_searches.inc()
        return overhead

    def _remaining_budget(self) -> float | None:
        if self.budget_usd is None:
            return None
        return max(0.0, self.budget_usd - self.spent_usd)

    def _remaining_qos(self) -> float | None:
        if self.qos_s is None:
            return None
        return max(0.0, self.qos_s - self.elapsed_s)

    def _select(self, remaining_epochs: float) -> ProfiledAllocation:
        return select_best_allocation(
            self.candidates,
            self.objective,
            remaining_epochs,
            budget_usd=self._remaining_budget(),
            qos_s=self._remaining_qos(),
        )

    def exclude_allocation(self, allocation) -> None:
        """Drop an allocation from 𝒫 (permanent function loss).

        The boundary shrinks but never empties: the last candidate is
        kept so the job can still finish best-effort, with the executor's
        own excluded-set guard preventing re-selection of lost points.
        """
        kept = [p for p in self.candidates if p.allocation != allocation]
        if kept:
            self.candidates = kept
        if self.current is not None and self.current.allocation == allocation:
            self.current = None

    # ------------------------------------------------------------------ protocol
    def initial_decision(self) -> SchedulerDecision:
        """Alg. 2 lines 2-7: offline prediction + first selection."""
        with profile_phase("scheduler/initial_decision") as ph:
            self.predicted_total_epochs = max(
                1.0, self.offline.predict_total_epochs()
            )
            overhead = self._search_overhead()
            self.current = self._select(self.predicted_total_epochs)
            ph.add("candidates_considered", len(self.candidates))
        return SchedulerDecision(
            point=self.current,
            restart=False,
            predicted_total_epochs=self.predicted_total_epochs,
            search_overhead_s=overhead,
        )

    def on_epoch_end(
        self, loss: float, epoch_cost_usd: float, epoch_time_s: float
    ) -> SchedulerDecision:
        """Alg. 2 lines 8-15: refit, re-predict, maybe re-select."""
        if self.current is None:
            raise ConstraintError("initial_decision() must be called first")
        self.epochs_done += 1
        self.spent_usd += epoch_cost_usd
        self.elapsed_s += epoch_time_s
        with profile_phase("scheduler/refit"):
            self.online.observe(loss)
            try:
                raw_prediction = self.online.predict_total_epochs()
                # Smooth over the last three fits: a single unstable fit
                # must not trigger a restart (the real system's fits are
                # equally jumpy early on; δ plus smoothing is what keeps
                # restarts rare).
                self._prediction_history.append(raw_prediction)
                recent = self._prediction_history[-3:]
                new_prediction = float(sorted(recent)[len(recent) // 2])
            except PredictionError:
                # Too few points / degenerate fit: keep the current plan.
                new_prediction = None
        if new_prediction is None:
            self._m_holds.inc()
            return SchedulerDecision(
                point=self.current,
                restart=False,
                predicted_total_epochs=self.predicted_total_epochs,
                search_overhead_s=0.0,
            )
        drift = abs(new_prediction - self.predicted_total_epochs) / max(
            self.predicted_total_epochs, 1e-9
        )
        self._m_predictions.inc()
        self._m_drift.observe(drift)
        self._m_predicted_epochs.set(new_prediction)
        if self._bus.enabled:
            self._bus.emit(
                "predictor_update", self.elapsed_s, scope="train",
                epoch=self.epochs_done,
                predicted_total_epochs=new_prediction, drift=drift,
            )
            if drift > self.delta:
                self._bus.emit(
                    "predictor_shift", self.elapsed_s, scope="train",
                    epoch=self.epochs_done,
                    predicted_total_epochs=new_prediction, drift=drift,
                    acted_on=self.predicted_total_epochs,
                )
        self._drift_streak = self._drift_streak + 1 if drift > self.delta else 0
        remaining_now = new_prediction - self.epochs_done
        # Act on drift only when (a) it persisted for two consecutive
        # epochs — a single unstable fit must not trigger a restart — and
        # (b) meaningful work remains; with <= 3 predicted epochs left,
        # riding out the current allocation beats any restart.
        hold = (
            self._drift_streak < 2 or remaining_now <= 3.0
        ) and not self.adjust_every_epoch
        if hold:
            self._m_holds.inc()
            return SchedulerDecision(
                point=self.current,
                restart=False,
                predicted_total_epochs=self.predicted_total_epochs,
                search_overhead_s=0.0,
            )
        self.predicted_total_epochs = new_prediction
        with profile_phase("scheduler/replan") as ph:
            overhead = self._search_overhead()
            remaining = max(1.0, new_prediction - self.epochs_done)
            new_point = self._select(remaining)
            ph.add("candidates_considered", len(self.candidates))
        restart = new_point.allocation != self.current.allocation
        if restart:
            self._m_reallocations.inc()
        else:
            self._m_holds.inc()
        self.current = new_point
        return SchedulerDecision(
            point=new_point,
            restart=restart,
            predicted_total_epochs=new_prediction,
            search_overhead_s=overhead,
        )
