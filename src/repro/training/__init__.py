"""Model training: online/offline epoch prediction and adaptive scheduling."""

from repro.training.adaptive_scheduler import (
    AdaptiveScheduler,
    SchedulerDecision,
    select_best_allocation,
)
from repro.training.delayed_restart import DelayedRestartPlanner, RestartPlan
from repro.training.executor import TrainingExecutor, TrainingJobSpec
from repro.training.offline_predictor import OfflinePredictor
from repro.training.online_predictor import CurveFit, OnlinePredictor

__all__ = [
    "AdaptiveScheduler",
    "CurveFit",
    "DelayedRestartPlanner",
    "OfflinePredictor",
    "OnlinePredictor",
    "RestartPlan",
    "SchedulerDecision",
    "TrainingExecutor",
    "TrainingJobSpec",
    "select_best_allocation",
]
