"""Project-wide symbol table for the interprocedural flow passes.

The per-file rules (REP001–REP008) see one module at a time; the flow
passes need to know *what a dotted name means anywhere in the project*:
which module defines ``run_training``, what ``from repro.profiling import
host_clock_s`` re-exports, which class a ``self.plan(...)`` call lands on.
:class:`ProjectIndex` builds that table once from the parsed
:class:`~repro.analysis.core.ModuleContext` list — functions and methods
by qualified name, module-level globals with their value expressions,
string constants, and each module's import-alias map — and resolves call
expressions against it.

Everything is built in sorted-module order from dict/list structures
only, so two builds over the same tree are identical and every document
derived from the index (call graph, shard report) is byte-stable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.core import ModuleContext
from repro.analysis.imports import ImportMap

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Value shapes a module-level global can take, as classified by
#: :func:`value_shape`. "mutable_literal" covers dict/list/set literals
#: and comprehensions; "instance" is a call to a (probable) class;
#: "alias" is a bare name reference to another module-level binding.
VALUE_SHAPES = (
    "constant", "tuple", "frozen", "mutable_literal", "instance",
    "call", "alias", "other",
)

#: Constructor names whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

#: Constructor names whose results are immutable.
_FROZEN_CONSTRUCTORS = frozenset({"frozenset", "tuple", "compile"})


def module_name_of(ctx: ModuleContext) -> str:
    """Dotted module name for a context (``repro/faas/events.py`` ->
    ``repro.faas.events``; package ``__init__`` files name the package)."""
    parts = ctx.parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def value_shape(node: ast.expr | None) -> str:
    """Coarse classification of a module-level assignment's value."""
    if node is None:
        return "other"
    if isinstance(node, ast.Constant):
        return "constant"
    if isinstance(node, ast.Tuple):
        return "tuple"
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return "mutable_literal"
    if isinstance(node, ast.Name):
        return "alias"
    if isinstance(node, ast.Call):
        root = node.func
        while isinstance(root, ast.Attribute):
            root = root.value  # type: ignore[assignment]
        name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            root.id if isinstance(root, ast.Name) else ""
        )
        if name in _FROZEN_CONSTRUCTORS:
            return "frozen"
        if name in _MUTABLE_CONSTRUCTORS:
            return "mutable_literal"
        if name[:1].isupper():
            return "instance"
        return "call"
    return "other"


@dataclass(slots=True)
class FunctionInfo:
    """One function or method, addressable project-wide."""

    qualname: str  # "repro.tuning.sha.SHARunner.run" / "repro.common.rng.make_rng"
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext


@dataclass(slots=True)
class GlobalVar:
    """One module-level assignment to a plain name."""

    qualname: str
    module: str
    name: str
    value: ast.expr | None
    shape: str  # one of VALUE_SHAPES
    lineno: int
    col: int
    ctx: ModuleContext
    node: ast.stmt


@dataclass(slots=True)
class ModuleInfo:
    """Everything the flow passes need to know about one module."""

    name: str
    ctx: ModuleContext
    imports: ImportMap
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    methods: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """The whole analyzed tree, resolvable by dotted name.

    ``modules`` maps dotted module names to :class:`ModuleInfo`;
    ``functions`` maps fully-qualified function/method names to
    :class:`FunctionInfo`; ``classes`` maps qualified class names to
    their defining module. All iteration orders are sorted.
    """

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts: list[ModuleContext] = sorted(
            contexts, key=lambda c: c.relpath
        )
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, str] = {}  # class qualname -> module name
        self.by_path: dict[str, ModuleContext] = {}
        for ctx in self.contexts:
            self._index_module(ctx)

    # ------------------------------------------------------------ building
    def _index_module(self, ctx: ModuleContext) -> None:
        name = module_name_of(ctx)
        info = ModuleInfo(name=name, ctx=ctx, imports=ImportMap(ctx.tree))
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                fn = FunctionInfo(
                    qualname=f"{name}.{stmt.name}", module=name,
                    name=stmt.name, class_name=None, node=stmt, ctx=ctx,
                )
                info.functions[stmt.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = stmt
                self.classes[f"{name}.{stmt.name}"] = name
                methods: dict[str, FunctionInfo] = {}
                for sub in stmt.body:
                    if isinstance(sub, _FUNCTION_NODES):
                        fn = FunctionInfo(
                            qualname=f"{name}.{stmt.name}.{sub.name}",
                            module=name, name=sub.name,
                            class_name=stmt.name, node=sub, ctx=ctx,
                        )
                        methods[sub.name] = fn
                        self.functions[fn.qualname] = fn
                info.methods[stmt.name] = methods
            else:
                self._index_assignment(info, stmt)
        self.modules[name] = info
        self.by_path[ctx.relpath] = ctx

    def _index_assignment(self, info: ModuleInfo, stmt: ast.stmt) -> None:
        targets: list[ast.Name] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
            value = stmt.value
        for target in targets:
            if target.id not in info.globals:  # first binding wins
                info.globals[target.id] = GlobalVar(
                    qualname=f"{info.name}.{target.id}",
                    module=info.name, name=target.id, value=value,
                    shape=value_shape(value), lineno=stmt.lineno,
                    col=stmt.col_offset, ctx=info.ctx, node=stmt,
                )
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                info.constants[target.id] = value.value

    # ---------------------------------------------------------- resolution
    def canonicalize(self, dotted: str) -> str:
        """Follow re-export chains to a defining module.

        ``repro.profiling.host_clock_s`` (imported into the package
        ``__init__`` from ``repro.profiling.clock``) canonicalizes to
        ``repro.profiling.clock.host_clock_s``. Names a module defines
        itself are left alone; cycles terminate via a visited set.
        """
        seen: set[str] = set()
        cur = dotted
        while cur not in seen:
            seen.add(cur)
            head, _, tail = cur.rpartition(".")
            mod = self.modules.get(head)
            if mod is None:
                break
            if tail in mod.functions or tail in mod.classes or tail in mod.globals:
                break
            target = mod.imports.objects.get(tail)
            if target is None or target == cur:
                break
            cur = target
        return cur

    def resolve_call(
        self,
        mod: ModuleInfo,
        call: ast.Call,
        class_name: str | None = None,
    ) -> tuple[str | None, bool]:
        """``(dotted target, is_internal)`` for one call expression.

        Internal targets are qualified names present in ``functions`` or
        ``classes``; external targets are fully-dotted library names
        (``time.perf_counter``). Unresolvable callees — attribute calls
        on arbitrary objects — return ``(None, False)``.
        """
        dotted = mod.imports.resolve(call.func)
        if dotted is not None:
            if "." not in dotted:
                local = mod.functions.get(dotted)
                if local is not None:
                    return local.qualname, True
                if dotted in mod.classes:
                    return f"{mod.name}.{dotted}", True
                return dotted, False  # builtin or unknown bare name
            canon = self.canonicalize(dotted)
            if canon in self.functions or canon in self.classes:
                return canon, True
            # Method on an imported class: "mod.Class.method".
            head, _, tail = canon.rpartition(".")
            if head in self.classes:
                owner = self.modules[self.classes[head]]
                cls = head.rsplit(".", 1)[1]
                if tail in owner.methods.get(cls, {}):
                    return f"{head}.{tail}", True
            return canon, False
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and class_name is not None
        ):
            method = mod.methods.get(class_name, {}).get(func.attr)
            if method is not None:
                return method.qualname, True
        return None, False

    def constant_string(self, mod: ModuleInfo, node: ast.expr) -> str | None:
        """A string literal, module constant, or imported constant value."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return None
        if name in mod.constants:
            return mod.constants[name]
        dotted = mod.imports.resolve(node)
        if dotted is None:
            return None
        canon = self.canonicalize(dotted)
        head, _, tail = canon.rpartition(".")
        owner = self.modules.get(head)
        if owner is not None:
            return owner.constants.get(tail)
        return None
