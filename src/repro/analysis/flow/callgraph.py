"""Project call graph: construction, ``repro-callgraph/v1``, and DOT.

Nodes are functions, methods, classes and module bodies (one pseudo-node
per module for top-level code); edges record every call site the
:class:`~repro.analysis.flow.symbols.ProjectIndex` can resolve, split
into ``internal`` (both ends in the analyzed tree) and ``external``
(dotted library calls like ``time.perf_counter``). The exported JSON
document is deterministic — sorted nodes, sorted de-duplicated edges,
sorted keys, no timestamps or absolute paths — so two runs over the same
tree are byte-identical and call-graph documents diff cleanly across
commits, the same contract every other versioned artifact in the
repository honours.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.flow.symbols import (
    _FUNCTION_NODES,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)

CALLGRAPH_SCHEMA = "repro-callgraph/v1"


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One resolved call site."""

    caller: str  # qualified name of the enclosing function / module body
    callee: str  # qualified internal name or dotted external name
    kind: str  # "internal" | "external"
    line: int

    def sort_key(self) -> tuple[str, str, int]:
        return (self.caller, self.callee, self.line)


@dataclass(slots=True)
class CallGraph:
    """The resolved call structure of one analyzed tree."""

    index: ProjectIndex
    edges: list[CallEdge] = field(default_factory=list)

    def callers_of(self, callee: str) -> list[str]:
        return sorted({e.caller for e in self.edges if e.callee == callee})

    def callees_of(self, caller: str) -> list[str]:
        return sorted({e.callee for e in self.edges if e.caller == caller})

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Forward closure over internal edges from ``roots``."""
        out: dict[str, list[str]] = {}
        for e in self.edges:
            if e.kind == "internal":
                out.setdefault(e.caller, []).append(e.callee)
        seen = set(roots)
        stack = sorted(roots)
        while stack:
            cur = stack.pop()
            for nxt in out.get(cur, ()):  # order irrelevant: closure is a set
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


def _walk_calls(
    body: list[ast.stmt],
) -> Iterator[ast.Call]:
    """Call expressions in ``body``, including inside nested functions
    (nested defs execute in the enclosing scope's dynamic extent, so their
    calls are attributed to the enclosing function)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


def _module_level_statements(mod: ModuleInfo) -> list[ast.stmt]:
    return [
        stmt
        for stmt in mod.ctx.tree.body
        if not isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef))
    ]


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Resolve every call site in the index into a :class:`CallGraph`."""
    edges: set[CallEdge] = set()
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for fn_name in sorted(mod.functions):
            _collect(index, mod, mod.functions[fn_name], edges)
        for cls_name in sorted(mod.methods):
            for meth_name in sorted(mod.methods[cls_name]):
                _collect(index, mod, mod.methods[cls_name][meth_name], edges)
        caller = f"{mod.name}.<module>"
        for call in _walk_calls(_module_level_statements(mod)):
            _add_edge(index, mod, caller, call, None, edges)
    graph = CallGraph(index=index)
    graph.edges = sorted(edges, key=CallEdge.sort_key)
    return graph


def _collect(
    index: ProjectIndex,
    mod: ModuleInfo,
    fn: FunctionInfo,
    edges: set[CallEdge],
) -> None:
    for call in _walk_calls(fn.node.body):
        _add_edge(index, mod, fn.qualname, call, fn.class_name, edges)


def _add_edge(
    index: ProjectIndex,
    mod: ModuleInfo,
    caller: str,
    call: ast.Call,
    class_name: str | None,
    edges: set[CallEdge],
) -> None:
    target, internal = index.resolve_call(mod, call, class_name)
    if target is None:
        return
    edges.add(
        CallEdge(
            caller=caller,
            callee=target,
            kind="internal" if internal else "external",
            line=call.lineno,
        )
    )


# ------------------------------------------------------------------ export
def _nodes_payload(index: ProjectIndex) -> list[dict[str, object]]:
    nodes: list[dict[str, object]] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        nodes.append(
            {
                "id": f"{mod.name}.<module>",
                "kind": "module",
                "module": mod.name,
                "path": mod.ctx.relpath,
                "line": 1,
            }
        )
        for cls_name in sorted(mod.classes):
            nodes.append(
                {
                    "id": f"{mod.name}.{cls_name}",
                    "kind": "class",
                    "module": mod.name,
                    "path": mod.ctx.relpath,
                    "line": mod.classes[cls_name].lineno,
                }
            )
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        nodes.append(
            {
                "id": qualname,
                "kind": "method" if fn.class_name else "function",
                "module": fn.module,
                "path": fn.ctx.relpath,
                "line": fn.node.lineno,
            }
        )
    nodes.sort(key=lambda n: str(n["id"]))
    return nodes


def callgraph_payload(graph: CallGraph) -> dict[str, object]:
    """The call graph as a versioned, JSON-serializable document."""
    index = graph.index
    roots = sorted({ctx.parts[0] for ctx in index.contexts})
    n_external = sum(1 for e in graph.edges if e.kind == "external")
    return {
        "schema": CALLGRAPH_SCHEMA,
        "meta": {
            "tool": "repro-flow",
            "roots": roots,
            "n_files": len(index.contexts),
        },
        "nodes": _nodes_payload(index),
        "edges": [
            {
                "caller": e.caller,
                "callee": e.callee,
                "kind": e.kind,
                "line": e.line,
            }
            for e in graph.edges
        ],
        "summary": {
            "n_nodes": len(_nodes_payload(index)),
            "n_edges": len(graph.edges),
            "n_internal": len(graph.edges) - n_external,
            "n_external": n_external,
        },
    }


def callgraph_to_json(graph: CallGraph) -> str:
    return (
        json.dumps(callgraph_payload(graph), indent=2, sort_keys=True) + "\n"
    )


def callgraph_to_dot(graph: CallGraph, internal_only: bool = True) -> str:
    """GraphViz rendering: one node per function, clustered by module."""
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
    by_module: dict[str, list[str]] = {}
    for qualname in sorted(graph.index.functions):
        fn = graph.index.functions[qualname]
        by_module.setdefault(fn.module, []).append(qualname)
    for i, mod_name in enumerate(sorted(by_module)):
        lines.append(f'  subgraph "cluster_{i}" {{')
        lines.append(f'    label="{mod_name}";')
        for qualname in by_module[mod_name]:
            short = qualname[len(mod_name) + 1:]
            lines.append(f'    "{qualname}" [label="{short}"];')
        lines.append("  }")
    for e in graph.edges:
        if internal_only and e.kind != "internal":
            continue
        style = "" if e.kind == "internal" else " [style=dashed]"
        lines.append(f'  "{e.caller}" -> "{e.callee}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"
