"""RNG stream hygiene: label collisions and escaping generators.

Every random stream in the project comes from
``repro.common.rng.stream_for(seed, *labels)``, which hashes the label
tuple into a ``SeedSequence`` spawn key. Two call sites with *identical
fully-constant* label tuples therefore draw the **same** stream — two
subsystems consuming one sequence, the classic silent determinism break
(rule REP010, which also flags label-less calls: a stream that cannot be
distinguished from the root seed). Label tuples containing variables are
exempt — they are distinguished dynamically and REP010 cannot judge
them.

Rule REP011 flags ``Generator`` objects escaping into module globals —
a module-level ``RNG = stream_for(...)`` binding or a ``global``
rebind inside a function. Module-global generators are shared mutable
state: any future shard boundary (ROADMAP item 3) would fork their
internal state, and two shards would replay identical draws. Streams
must be created where they are consumed and passed down explicitly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import ModuleContext
from repro.analysis.flow.symbols import (
    _FUNCTION_NODES,
    ModuleInfo,
    ProjectIndex,
)

Raw = tuple[ModuleContext, ast.AST, str]

#: Canonical names whose call results are RNG streams / generators.
_STREAM_FACTORY = "repro.common.rng.stream_for"
_GENERATOR_FACTORIES = frozenset(
    {
        _STREAM_FACTORY,
        "repro.common.rng.make_rng",
        "repro.common.rng.spawn",
        "numpy.random.default_rng",
    }
)


@dataclass(frozen=True, slots=True)
class StreamSite:
    """One ``stream_for`` call site and its static label signature."""

    ctx: ModuleContext
    node: ast.Call
    owner: str  # enclosing function qualname or "<module>" pseudo-name
    labels: tuple[str, ...]  # resolved constant labels, in order
    constant: bool  # True when every label resolved to a constant

    def sort_key(self) -> tuple[str, int, int]:
        return (self.ctx.relpath, self.node.lineno, self.node.col_offset)


def _is_factory(index: ProjectIndex, mod: ModuleInfo, call: ast.Call,
                class_name: str | None, wanted: str) -> bool:
    target, _ = index.resolve_call(mod, call, class_name)
    return target == wanted


def _label_signature(
    index: ProjectIndex, mod: ModuleInfo, call: ast.Call
) -> tuple[tuple[str, ...], bool]:
    labels: list[str] = []
    constant = True
    for arg in call.args[1:]:
        if isinstance(arg, ast.Starred):
            constant = False
            continue
        if isinstance(arg, ast.Constant) and isinstance(
            arg.value, (int, float)
        ):
            labels.append(repr(arg.value))
            continue
        resolved = index.constant_string(mod, arg)
        if resolved is None:
            constant = False
        else:
            labels.append(resolved)
    return tuple(labels), constant


def _function_scopes(
    mod: ModuleInfo,
) -> list[tuple[str, str | None, list[ast.stmt]]]:
    """(owner qualname, class name, body) for every scope in a module."""
    scopes: list[tuple[str, str | None, list[ast.stmt]]] = []
    for fn_name in sorted(mod.functions):
        fn = mod.functions[fn_name]
        scopes.append((fn.qualname, None, fn.node.body))
    for cls_name in sorted(mod.methods):
        for meth_name in sorted(mod.methods[cls_name]):
            fn = mod.methods[cls_name][meth_name]
            scopes.append((fn.qualname, cls_name, fn.node.body))
    module_body = [
        stmt
        for stmt in mod.ctx.tree.body
        if not isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef))
    ]
    scopes.append((f"{mod.name}.<module>", None, module_body))
    return scopes


def collect_stream_sites(index: ProjectIndex) -> list[StreamSite]:
    """Every ``stream_for`` call site in the project, sorted."""
    sites: list[StreamSite] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for owner, class_name, body in _function_scopes(mod):
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    if not _is_factory(
                        index, mod, node, class_name, _STREAM_FACTORY
                    ):
                        continue
                    labels, constant = _label_signature(index, mod, node)
                    sites.append(
                        StreamSite(
                            ctx=mod.ctx, node=node, owner=owner,
                            labels=labels, constant=constant,
                        )
                    )
    sites.sort(key=StreamSite.sort_key)
    return sites


def run_stream_hygiene(index: ProjectIndex) -> list[Raw]:
    """REP010: colliding constant label tuples and label-less streams."""
    findings: list[Raw] = []
    sites = collect_stream_sites(index)
    by_signature: dict[tuple[str, ...], list[StreamSite]] = {}
    for site in sites:
        if not site.node.args[1:]:
            findings.append(
                (
                    site.ctx,
                    site.node,
                    "stream_for() call without labels — the stream is "
                    "indistinguishable from the root seed; add a unique "
                    "label tuple naming the consumer",
                )
            )
            continue
        if site.constant:
            by_signature.setdefault(site.labels, []).append(site)
    for signature in sorted(by_signature):
        group = by_signature[signature]
        if len(group) < 2:
            continue
        where = ", ".join(
            f"{s.ctx.relpath}:{s.node.lineno}" for s in group
        )
        for site in group:
            findings.append(
                (
                    site.ctx,
                    site.node,
                    f"stream_for() label tuple {signature!r} is reused "
                    f"at {where} — identical constant labels draw the "
                    "same stream; make each call site's labels unique",
                )
            )
    findings.sort(key=lambda f: (f[0].relpath, f[1].lineno, f[1].col_offset))
    return findings


def run_generator_escape(index: ProjectIndex) -> list[Raw]:
    """REP011: RNG generators bound to module globals."""
    findings: list[Raw] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for var_name in sorted(mod.globals):
            var = mod.globals[var_name]
            if isinstance(var.value, ast.Call) and _is_factory(
                index, mod, var.value, None, _STREAM_FACTORY
            ):
                findings.append(
                    (
                        mod.ctx,
                        var.node,
                        f'module global "{var.name}" holds an RNG '
                        "stream — generators are stateful and shard-"
                        "unsafe; create the stream where it is consumed "
                        "and pass it down explicitly",
                    )
                )
            elif isinstance(var.value, ast.Call):
                target, _ = index.resolve_call(mod, var.value, None)
                if target in _GENERATOR_FACTORIES:
                    findings.append(
                        (
                            mod.ctx,
                            var.node,
                            f'module global "{var.name}" holds an RNG '
                            "generator — generators are stateful and "
                            "shard-unsafe; create the generator where it "
                            "is consumed and pass it down explicitly",
                        )
                    )
        for owner, class_name, body in _function_scopes(mod):
            if owner.endswith(".<module>"):
                continue
            declared_global: set[str] = set()
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Global):
                        declared_global.update(node.names)
            if not declared_global:
                continue
            for stmt in body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    names = {
                        t.id
                        for t in node.targets
                        if isinstance(t, ast.Name)
                    }
                    if not (names & declared_global):
                        continue
                    if isinstance(node.value, ast.Call):
                        target, _ = index.resolve_call(
                            mod, node.value, class_name
                        )
                        if target in _GENERATOR_FACTORIES:
                            findings.append(
                                (
                                    mod.ctx,
                                    node,
                                    "RNG generator rebound onto a module "
                                    f"global from {owner}() — module-"
                                    "global generators are shard-unsafe; "
                                    "thread the stream through call "
                                    "arguments instead",
                                )
                            )
    findings.sort(key=lambda f: (f[0].relpath, f[1].lineno, f[1].col_offset))
    return findings
