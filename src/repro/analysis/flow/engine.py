"""Flow rule catalogue (REP009–REP013) and the project-level analyzer.

Per-file rules run inside :class:`repro.analysis.walker.Analyzer`, one
module at a time. The flow rules are project-level: their ``check`` on a
single module is empty, and :func:`analyze_flow` instead parses the
whole tree into a :class:`ProjectIndex`, builds the call graph, runs the
dataflow passes, and converts their results into ordinary
:class:`Finding` objects — same IDs, pragmas, baseline and JSON document
machinery as REP001–REP008, so ``# lint: ignore[REP012]`` and baseline
entries work unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    build_context,
    should_skip_file,
)
from repro.analysis.flow import rngflow, schemaflow, shard, taint
from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.shard import GlobalReport
from repro.analysis.flow.symbols import ProjectIndex
from repro.analysis.walker import AnalysisResult, collect_files


class FlowRule(Rule):
    """A project-level rule: findings come from :func:`analyze_flow`."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


class ClockDomainTaint(FlowRule):
    rule_id = "REP009"
    name = "clock-domain-taint"
    severity = "error"
    rationale = (
        "host-clock values must never reach simulated-time arithmetic, "
        "schema'd documents, or the event bus — even through helpers"
    )


class RngStreamHygiene(FlowRule):
    rule_id = "REP010"
    name = "rng-stream-hygiene"
    severity = "error"
    rationale = (
        "stream_for() call sites must be statically distinguishable: "
        "identical constant label tuples draw the same stream"
    )


class RngGeneratorEscape(FlowRule):
    rule_id = "REP011"
    name = "rng-generator-escape"
    severity = "warning"
    rationale = (
        "RNG generators bound to module globals are shared mutable "
        "state; shards would replay identical draws"
    )


class ShardUnsafeGlobal(FlowRule):
    rule_id = "REP012"
    name = "shard-unsafe-global"
    severity = "warning"
    rationale = (
        "module globals mutated from simulation paths without a "
        "registered setter break shard determinism (ROADMAP item 3)"
    )


class SchemaProducerDrift(FlowRule):
    rule_id = "REP013"
    name = "schema-producer-drift"
    severity = "warning"
    rationale = (
        "keys added to a versioned document after its literal — "
        "directly or via helpers — must match the registered key set"
    )


_FLOW_RULE_CLASSES: tuple[type[FlowRule], ...] = (
    ClockDomainTaint,
    RngStreamHygiene,
    RngGeneratorEscape,
    ShardUnsafeGlobal,
    SchemaProducerDrift,
)


def flow_rules() -> list[Rule]:
    """Instances of the flow rule catalogue, sorted by rule id."""
    return sorted(
        (cls() for cls in _FLOW_RULE_CLASSES), key=lambda r: r.rule_id
    )


def flow_rules_by_id() -> dict[str, Rule]:
    return {r.rule_id: r for r in flow_rules()}


@dataclass(slots=True)
class FlowResult:
    """Everything one flow pass learned, plus its reusable artifacts."""

    findings: list[Finding]
    files_analyzed: int
    suppressed: int
    parse_errors: int
    index: ProjectIndex
    graph: CallGraph
    shard_reports: list[GlobalReport]

    def as_analysis_result(self) -> AnalysisResult:
        return AnalysisResult(
            findings=list(self.findings),
            files_analyzed=self.files_analyzed,
            suppressed=self.suppressed,
            parse_errors=self.parse_errors,
        )


def build_index(
    paths: Sequence[Path | str],
) -> tuple[ProjectIndex, list[Finding], int, int]:
    """Parse ``paths`` into a :class:`ProjectIndex`.

    Returns ``(index, parse-error findings, files seen, files skipped)``.
    Files bearing ``# lint: skip-file`` are excluded from the index —
    they asked to be invisible to analysis — and unparseable files
    surface as REP000 findings exactly as in the per-file walker.
    """
    contexts: list[ModuleContext] = []
    errors: list[Finding] = []
    skipped = 0
    files = collect_files(paths)
    for src in files:
        try:
            ctx = build_context(src.path, src.relpath)
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="REP000",
                    severity="error",
                    path=src.relpath,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        if should_skip_file(ctx.lines):
            skipped += 1
            continue
        contexts.append(ctx)
    return ProjectIndex(contexts), errors, len(files), skipped


def analyze_flow(
    paths: Sequence[Path | str],
    select: set[str] | None = None,
) -> FlowResult:
    """Run every flow pass (or the ``select``\\ ed subset) over ``paths``."""
    index, parse_findings, n_files, _ = build_index(paths)
    graph = build_callgraph(index)
    rules = flow_rules_by_id()
    wanted = set(rules) if select is None else (set(rules) & select)

    raw: dict[str, list[tuple[ModuleContext, ast.AST, str]]] = {}
    if "REP009" in wanted:
        raw["REP009"] = taint.run_clock_taint(index)
    if "REP010" in wanted:
        raw["REP010"] = rngflow.run_stream_hygiene(index)
    if "REP011" in wanted:
        raw["REP011"] = rngflow.run_generator_escape(index)
    shard_reports: list[GlobalReport] = []
    if "REP012" in wanted:
        shard_reports, shard_raw = shard.run_shard_safety(index, graph)
    else:
        shard_reports = shard.audit_globals(index, graph)
        shard_raw = []
    if "REP012" in wanted:
        raw["REP012"] = shard_raw
    if "REP013" in wanted:
        raw["REP013"] = schemaflow.run_schema_producers(index)

    findings: list[Finding] = list(parse_findings)
    suppressed = 0
    for rule_id in sorted(raw):
        rule = rules[rule_id]
        for ctx, node, message in raw[rule_id]:
            finding = rule.finding(ctx, node, message)
            if ctx.is_suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return FlowResult(
        findings=findings,
        files_analyzed=n_files,
        suppressed=suppressed,
        parse_errors=len(parse_findings),
        index=index,
        graph=graph,
        shard_reports=shard_reports,
    )
