"""Schema producer cross-check: post-construction key drift (REP013).

REP006 validates every versioned-schema **dict literal** against the
registry in ``repro.analysis.rules.schema``. What it cannot see is a
producer that builds a conforming literal and then grows it: a
``doc["extra"] = ...`` three lines later, a ``doc.update(...)``, or a
helper function that takes the document and adds keys inside — the
exported artifact's top-level key set silently drifts from the parsing
contract downstream tooling compiled against.

This pass tracks, per function scope, every local bound to a registered
versioned-schema dict literal, then follows subscript stores,
``update``/``setdefault`` calls, and calls into project-internal helper
functions (whose per-parameter key additions are summarized
interprocedurally). Any key added after construction that is not part
of the registered key set is reported at the addition site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import ModuleContext
from repro.analysis.flow.symbols import (
    _FUNCTION_NODES,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.analysis.rules.schema import SCHEMA_KEYS, _VERSIONED

Raw = tuple[ModuleContext, ast.AST, str]


@dataclass(slots=True)
class _Doc:
    schema: str
    keys: set[str] = field(default_factory=set)


def _literal_keys(
    index: ProjectIndex, mod: ModuleInfo, node: ast.Dict
) -> tuple[str | None, set[str]]:
    """(schema id, constant keys) for a dict literal, if schema'd."""
    schema: str | None = None
    keys: set[str] = set()
    for key, value in zip(node.keys, node.values):
        if key is None:
            continue
        resolved = index.constant_string(mod, key)
        if resolved is None:
            continue
        keys.add(resolved)
        if resolved == "schema" and value is not None:
            candidate = index.constant_string(mod, value)
            if candidate is not None and _VERSIONED.match(candidate):
                schema = candidate
    return schema, keys


def _param_names(fn: FunctionInfo) -> list[str]:
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if fn.class_name is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _helper_key_adds(
    index: ProjectIndex, fn: FunctionInfo
) -> dict[str, set[str]]:
    """Constant top-level keys ``fn`` adds to each of its parameters."""
    mod = index.modules[fn.module]
    params = set(_param_names(fn))
    adds: dict[str, set[str]] = {}
    for stmt in fn.node.body:
        for node in ast.walk(stmt):
            for param, key in _key_additions(index, mod, node, params):
                adds.setdefault(param, set()).add(key)
    return adds


def _key_additions(
    index: ProjectIndex,
    mod: ModuleInfo,
    node: ast.AST,
    names: set[str],
) -> list[tuple[str, str]]:
    """``(name, key)`` pairs for top-level key additions in ``node``."""
    out: list[tuple[str, str]] = []
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            list(node.targets)
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in names
            ):
                key = index.constant_string(mod, target.slice)
                if key is not None:
                    out.append((target.value.id, key))
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in names
        ):
            if func.attr == "setdefault" and node.args:
                key = index.constant_string(mod, node.args[0])
                if key is not None:
                    out.append((func.value.id, key))
            elif func.attr == "update":
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        for k in arg.keys:
                            if k is None:
                                continue
                            key = index.constant_string(mod, k)
                            if key is not None:
                                out.append((func.value.id, key))
                for kw in node.keywords:
                    if kw.arg is not None:
                        out.append((func.value.id, kw.arg))
    return out


def _scope_findings(
    index: ProjectIndex,
    mod: ModuleInfo,
    ctx: ModuleContext,
    class_name: str | None,
    body: list[ast.stmt],
    helper_adds: dict[str, dict[str, set[str]]],
) -> list[Raw]:
    docs: dict[str, _Doc] = {}
    findings: list[Raw] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and isinstance(
                        node.value, ast.Dict
                    ):
                        schema, keys = _literal_keys(index, mod, node.value)
                        if schema is not None and schema in SCHEMA_KEYS:
                            docs[target.id] = _Doc(schema=schema, keys=keys)
                        else:
                            docs.pop(target.id, None)
                    elif isinstance(target, ast.Name):
                        docs.pop(target.id, None)
            if not docs:
                continue
            for name, key in _key_additions(index, mod, node, set(docs)):
                doc = docs[name]
                registered = SCHEMA_KEYS[doc.schema]
                doc.keys.add(key)
                if key not in registered:
                    findings.append(
                        (
                            ctx,
                            node,
                            f'key "{key}" added to "{doc.schema}" '
                            f'document "{name}" after construction is '
                            "not in the registered key set — bump the "
                            "schema version or update the registry in "
                            "repro.analysis.rules.schema",
                        )
                    )
            if isinstance(node, ast.Call):
                target, internal = index.resolve_call(
                    mod, node, class_name
                )
                if not internal or target not in helper_adds:
                    continue
                adds = helper_adds[target]
                if not adds:
                    continue
                helper = index.functions[target]
                params = _param_names(helper)
                bound: list[tuple[str, str]] = []
                for pos, arg in enumerate(node.args):
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in docs
                        and pos < len(params)
                    ):
                        bound.append((arg.id, params[pos]))
                for kw in node.keywords:
                    if (
                        kw.arg is not None
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in docs
                    ):
                        bound.append((kw.value.id, kw.arg))
                for doc_name, param in bound:
                    doc = docs[doc_name]
                    registered = SCHEMA_KEYS[doc.schema]
                    for key in sorted(adds.get(param, set())):
                        doc.keys.add(key)
                        if key not in registered:
                            findings.append(
                                (
                                    ctx,
                                    node,
                                    f'helper {target}() adds key "{key}" '
                                    f'to "{doc.schema}" document '
                                    f'"{doc_name}" — the key is not in '
                                    "the registered key set; bump the "
                                    "schema version or update the "
                                    "registry",
                                )
                            )
    return findings


def run_schema_producers(index: ProjectIndex) -> list[Raw]:
    """REP013 findings over every function and module body."""
    helper_adds: dict[str, dict[str, set[str]]] = {}
    for qualname in sorted(index.functions):
        helper_adds[qualname] = _helper_key_adds(
            index, index.functions[qualname]
        )
    findings: list[Raw] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for fn_name in sorted(mod.functions):
            fn = mod.functions[fn_name]
            findings.extend(
                _scope_findings(
                    index, mod, mod.ctx, None, fn.node.body, helper_adds
                )
            )
        for cls_name in sorted(mod.methods):
            for meth_name in sorted(mod.methods[cls_name]):
                fn = mod.methods[cls_name][meth_name]
                findings.extend(
                    _scope_findings(
                        index, mod, mod.ctx, cls_name, fn.node.body,
                        helper_adds,
                    )
                )
        module_body = [
            stmt
            for stmt in mod.ctx.tree.body
            if not isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef))
        ]
        findings.extend(
            _scope_findings(
                index, mod, mod.ctx, None, module_body, helper_adds
            )
        )
    findings.sort(key=lambda f: (f[0].relpath, f[1].lineno, f[1].col_offset))
    return findings
