"""Clock-domain taint: host-clock values must not meet simulated time.

Two taint domains. HOST taint originates from ``time.*`` /
``datetime.*`` clock calls and from any project function whose return
value is (transitively) derived from one — discovered by a project-wide
fixpoint over return summaries, so ``host_clock_s`` and every helper
wrapping it are sources without hand-listing. SIM taint originates from
``.now`` attribute reads (the event loop's simulated clock surface).

Sinks (rule REP009):

* arithmetic or comparison whose operands carry *both* domains — the
  canonical "wall-clock leaked into simulated math" bug;
* a HOST-tainted value stored into a versioned-schema document (a dict
  literal with a ``"schema": "name/vN"`` key, or a later subscript store
  into a name bound to one) — exported artifacts must be byte-stable;
* a HOST-tainted argument to an event-bus ``publish(...)`` call.

Attribute *stores* deliberately cut taint: the profiler writing a host
duration into ``self._wall_s`` is legitimate wall-time bookkeeping, and
values read back out of attributes start untainted. The analysis is a
forward pass per function (no CFG; branches merge into one environment),
tuned to be quiet on correct code rather than complete.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.core import ModuleContext
from repro.analysis.flow.symbols import (
    _FUNCTION_NODES,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.analysis.rules.determinism import _CLOCK_CALLS
from repro.analysis.rules.schema import _VERSIONED

Raw = tuple[ModuleContext, ast.AST, str]

#: Attribute names whose reads carry SIM taint.
_SIM_ATTRS = frozenset({"now"})


@dataclass(frozen=True, slots=True)
class Taint:
    """A value's membership in the two clock domains."""

    host: bool = False
    sim: bool = False

    def __or__(self, other: "Taint") -> "Taint":
        return Taint(self.host or other.host, self.sim or other.sim)


_CLEAN = Taint()
_HOST = Taint(host=True)
_SIM = Taint(sim=True)


@dataclass(slots=True)
class _FnResult:
    returns: Taint = _CLEAN
    findings: list[Raw] = field(default_factory=list)


class _FunctionTaint:
    """Forward taint pass over one function (or module) body."""

    def __init__(
        self,
        index: ProjectIndex,
        mod: ModuleInfo,
        ctx: ModuleContext,
        class_name: str | None,
        summaries: dict[str, Taint],
        collect: bool,
    ) -> None:
        self.index = index
        self.mod = mod
        self.ctx = ctx
        self.class_name = class_name
        self.summaries = summaries
        self.collect = collect
        self.env: dict[str, Taint] = {}
        self.schema_docs: set[str] = set()
        self.result = _FnResult()

    # ---------------------------------------------------------- reporting
    def _report(self, node: ast.AST, message: str) -> None:
        if self.collect:
            self.result.findings.append((self.ctx, node, message))

    # --------------------------------------------------------- statements
    def run(self, body: Iterable[ast.stmt]) -> _FnResult:
        for stmt in body:
            self._stmt(stmt)
        return self.result

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self._expr(stmt.value)
                self._assign_target(stmt.target, stmt.value, taint)
        elif isinstance(stmt, ast.AugAssign):
            value_taint = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                target_taint = self.env.get(stmt.target.id, _CLEAN)
                self._check_mix(stmt, target_taint, value_taint)
                self.env[stmt.target.id] = target_taint | value_taint
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.result.returns = self.result.returns | self._expr(
                    stmt.value
                )
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._expr(stmt.iter)
            self._bind_names(stmt.target, iter_taint)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_names(item.optional_vars, taint)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, _FUNCTION_NODES):
            # Nested defs share the enclosing environment (closure).
            self.run(stmt.body)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc)

    def _assign_target(
        self, target: ast.expr, value: ast.expr, taint: Taint
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if isinstance(value, ast.Dict) and self._schema_id(value):
                self.schema_docs.add(target.id)
            elif not isinstance(value, ast.Dict):
                self.schema_docs.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, value, taint)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.schema_docs
                and taint.host
            ):
                self._report(
                    target,
                    "host-clock value stored into versioned-schema "
                    f'document "{base.id}" — schema\'d artifacts must be '
                    "byte-stable across runs; record simulated time or "
                    "drop the field",
                )
        # Attribute stores cut taint deliberately (see module docstring).

    def _bind_names(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            children = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target.value]
            )
            for elt in children:
                self._bind_names(elt, taint)

    # -------------------------------------------------------- expressions
    def _check_mix(self, node: ast.AST, left: Taint, right: Taint) -> None:
        if (left.host and right.sim) or (left.sim and right.host):
            self._report(
                node,
                "host-clock value meets simulated time in the same "
                "expression — wall-clock durations must never enter "
                "simulated-time arithmetic; derive both operands from "
                "the event loop's clock",
            )

    def _schema_id(self, node: ast.Dict) -> str | None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "schema"
            ):
                schema = self.index.constant_string(self.mod, value)
                if schema is not None and _VERSIONED.match(schema):
                    return schema
        return None

    def _expr(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CLEAN)
        if isinstance(node, ast.Attribute):
            self._expr(node.value)
            if node.attr in _SIM_ATTRS:
                return _SIM
            return _CLEAN
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            self._check_mix(node, left, right)
            return left | right
        if isinstance(node, ast.Compare):
            taints = [self._expr(node.left)]
            taints.extend(self._expr(cmp) for cmp in node.comparators)
            combined = _CLEAN
            for taint in taints:
                self._check_mix(node, combined, taint)
                combined = combined | taint
            return _CLEAN  # a comparison result is a bool, not a time
        if isinstance(node, ast.BoolOp):
            combined = _CLEAN
            for value in node.values:
                combined = combined | self._expr(value)
            return combined
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            combined = _CLEAN
            for elt in node.elts:
                combined = combined | self._expr(elt)
            return combined
        if isinstance(node, ast.Dict):
            schema = self._schema_id(node)
            combined = _CLEAN
            for value in node.values:
                if value is None:
                    continue
                taint = self._expr(value)
                if schema is not None and taint.host:
                    self._report(
                        value,
                        "host-clock value placed into versioned-schema "
                        f'document "{schema}" — schema\'d artifacts must '
                        "be byte-stable across runs; record simulated "
                        "time or drop the field",
                    )
                combined = combined | taint
            return combined
        if isinstance(node, ast.Subscript):
            return self._expr(node.value)
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Await):
            return self._expr(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return _CLEAN
        if isinstance(node, ast.NamedExpr):
            taint = self._expr(node.value)
            self._bind_names(node.target, taint)
            return taint
        return _CLEAN

    def _call(self, node: ast.Call) -> Taint:
        arg_taints: list[tuple[ast.expr, Taint]] = []
        for arg in node.args:
            arg_taints.append((arg, self._expr(arg)))
        for kw in node.keywords:
            arg_taints.append((kw.value, self._expr(kw.value)))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "publish"
        ):
            for arg, taint in arg_taints:
                if taint.host:
                    self._report(
                        arg,
                        "host-clock value passed to an event-bus "
                        "publish() — bus consumers treat payload times "
                        "as simulated; derive the value from the event "
                        "loop's clock instead",
                    )
        target, internal = self.index.resolve_call(
            self.mod, node, self.class_name
        )
        if target is None:
            return _CLEAN
        if not internal:
            if target in _CLOCK_CALLS:
                return _HOST
            return _CLEAN
        return self.summaries.get(target, _CLEAN)


def _analyze_function(
    index: ProjectIndex,
    fn: FunctionInfo,
    summaries: dict[str, Taint],
    collect: bool,
) -> _FnResult:
    mod = index.modules[fn.module]
    walker = _FunctionTaint(
        index, mod, fn.ctx, fn.class_name, summaries, collect
    )
    return walker.run(fn.node.body)


def compute_summaries(index: ProjectIndex) -> dict[str, Taint]:
    """Fixpoint over per-function return taints, project-wide."""
    summaries: dict[str, Taint] = {}
    changed = True
    while changed:
        changed = False
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            result = _analyze_function(index, fn, summaries, collect=False)
            previous = summaries.get(qualname, _CLEAN)
            merged = previous | result.returns
            if merged != previous:
                summaries[qualname] = merged
                changed = True
    return summaries


def run_clock_taint(
    index: ProjectIndex,
    summaries: dict[str, Taint] | None = None,
) -> list[Raw]:
    """REP009 findings over every function and module body."""
    if summaries is None:
        summaries = compute_summaries(index)
    findings: list[Raw] = []
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        result = _analyze_function(index, fn, summaries, collect=True)
        findings.extend(result.findings)
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        walker = _FunctionTaint(
            index, mod, mod.ctx, None, summaries, collect=True
        )
        body = [
            stmt
            for stmt in mod.ctx.tree.body
            if not isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef))
        ]
        findings.extend(walker.run(body).findings)
    return findings
