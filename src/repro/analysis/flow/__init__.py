"""Interprocedural flow analysis: call graph, taint, shard safety.

Where ``repro.analysis.rules`` checks one file at a time, this package
sees the whole program: a project symbol table (:mod:`.symbols`), a
deterministic call graph (:mod:`.callgraph`, ``repro-callgraph/v1``),
and four dataflow passes packaged as rules REP009–REP013 —
clock-domain taint (:mod:`.taint`), RNG stream hygiene
(:mod:`.rngflow`), the shard-safety audit (:mod:`.shard`,
``repro-sharding/v1``), and the schema producer cross-check
(:mod:`.schemaflow`). ``repro lint --flow`` and ``repro analyze``
are the CLI surfaces; :func:`analyze_flow` is the library entry point.
"""

from repro.analysis.flow.callgraph import (
    CALLGRAPH_SCHEMA,
    CallEdge,
    CallGraph,
    build_callgraph,
    callgraph_payload,
    callgraph_to_dot,
    callgraph_to_json,
)
from repro.analysis.flow.engine import (
    FlowResult,
    FlowRule,
    analyze_flow,
    build_index,
    flow_rules,
    flow_rules_by_id,
)
from repro.analysis.flow.shard import (
    SHARDING_SCHEMA,
    GlobalReport,
    audit_globals,
    run_shard_safety,
    sharding_payload,
    sharding_to_json,
)
from repro.analysis.flow.symbols import ProjectIndex, module_name_of

__all__ = [
    "CALLGRAPH_SCHEMA",
    "CallEdge",
    "CallGraph",
    "FlowResult",
    "FlowRule",
    "GlobalReport",
    "ProjectIndex",
    "SHARDING_SCHEMA",
    "analyze_flow",
    "audit_globals",
    "build_callgraph",
    "build_index",
    "callgraph_payload",
    "callgraph_to_dot",
    "callgraph_to_json",
    "flow_rules",
    "flow_rules_by_id",
    "module_name_of",
    "run_shard_safety",
    "sharding_payload",
    "sharding_to_json",
]
