"""Shard-safety audit: classify module globals, emit ``repro-sharding/v1``.

ROADMAP item 3 (sharded event kernel) forks the simulation across
processes; every module-level mutable object is then duplicated
per-shard and silent divergence follows unless the object is either
immutable, init-time-only, or explicitly managed. This pass enumerates
every interesting module-level binding in the analyzed tree and
classifies it:

* ``null_singleton`` — the repository's registered pattern: a private
  global defaulting to a Null-object instance, rebound only through a
  ``global``-declaring setter (``set_registry`` et al). Shard-aware by
  construction: each shard installs its own collector.
* ``registered`` — a ``global``-rebound singleton without a Null-object
  default (still explicit, still visible to the shard bootstrapper).
* ``table`` — a mutable container literal that is only ever built at
  module level and never mutated from function scope: a lookup table,
  safe to duplicate.
* ``instance`` — a constructed object never rebound or mutated through
  its module-level name.
* ``cache`` — a private container mutated from function scope within
  its own module only (memoisation); safe per-shard but flagged in the
  report when simulation call paths reach the mutator.
* ``bare_mutable`` — mutated from function scope without a registered
  setter: the shard blocker rule REP012 reports.

Mutation is traced interprocedurally: a mutator function is marked
"from sim path" when it is defined in, or reachable through the call
graph from, the simulated packages (REP002's scope). Module-level
statements (building a table right after its literal) are init-time
construction, not runtime mutation. The exported report is byte-stable:
sorted globals, sorted keys, no timestamps or absolute paths.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass

from repro.analysis.core import ModuleContext
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.symbols import (
    GlobalVar,
    ModuleInfo,
    ProjectIndex,
)
from repro.analysis.rules.determinism import _SIM_PACKAGES

Raw = tuple[ModuleContext, ast.AST, str]

SHARDING_SCHEMA = "repro-sharding/v1"

#: Container methods that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "appendleft",
        "popleft", "sort", "reverse",
    }
)

#: Value shapes that never need shard review (immutable by shape).
_SAFE_SHAPES = frozenset({"constant", "tuple", "frozen"})

#: Classification kinds, in report order.
KINDS = (
    "null_singleton", "registered", "table", "instance", "cache",
    "bare_mutable",
)


@dataclass(slots=True)
class GlobalReport:
    """Audit result for one module-level global."""

    var: GlobalVar
    kind: str
    setter: str | None  # qualname of the global-rebinding setter, if any
    mutators: list[str]  # function qualnames mutating it (sorted)
    mutated_from_sim: bool


def _constructor_name(value: ast.expr | None) -> str:
    if not isinstance(value, ast.Call):
        return ""
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _has_null_default(mod: ModuleInfo, var: GlobalVar) -> bool:
    """True when the global's initial value is a Null-object instance."""
    value = var.value
    if isinstance(value, ast.Name):
        aliased = mod.globals.get(value.id)
        if aliased is None:
            return False
        value = aliased.value
    return _constructor_name(value).startswith("Null")


def _resolve_global_ref(
    index: ProjectIndex, mod: ModuleInfo, expr: ast.expr
) -> str | None:
    """Qualified name of the module global ``expr`` refers to, if any."""
    if isinstance(expr, ast.Name):
        if expr.id in mod.globals:
            return mod.globals[expr.id].qualname
        dotted = mod.imports.objects.get(expr.id)
        if dotted is None:
            return None
        return index.canonicalize(dotted)
    if isinstance(expr, ast.Attribute):
        dotted = mod.imports.resolve(expr)
        if dotted is None:
            return None
        return index.canonicalize(dotted)
    return None


def _scopes(mod: ModuleInfo) -> list[tuple[str, list[ast.stmt]]]:
    scopes: list[tuple[str, list[ast.stmt]]] = []
    for fn_name in sorted(mod.functions):
        fn = mod.functions[fn_name]
        scopes.append((fn.qualname, fn.node.body))
    for cls_name in sorted(mod.methods):
        for meth_name in sorted(mod.methods[cls_name]):
            fn = mod.methods[cls_name][meth_name]
            scopes.append((fn.qualname, fn.node.body))
    return scopes


def _collect_mutations(
    index: ProjectIndex, tracked: set[str]
) -> tuple[dict[str, set[str]], dict[str, str]]:
    """``qualname -> mutating function qualnames`` and ``-> setter``.

    Only function-scope mutations count; module-level statements are
    init-time construction. A ``global``-declared rebind is recorded as
    the setter, not as a mutation.
    """
    mutators: dict[str, set[str]] = {name: set() for name in sorted(tracked)}
    setters: dict[str, str] = {}
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for owner, body in _scopes(mod):
            declared_global: set[str] = set()
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Global):
                        declared_global.update(node.names)
            for stmt in body:
                for node in ast.walk(stmt):
                    _record_mutations(
                        index, mod, owner, node, declared_global,
                        tracked, mutators, setters,
                    )
    return mutators, setters


def _record_mutations(
    index: ProjectIndex,
    mod: ModuleInfo,
    owner: str,
    node: ast.AST,
    declared_global: set[str],
    tracked: set[str],
    mutators: dict[str, set[str]],
    setters: dict[str, str],
) -> None:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in declared_global:
                    qual = f"{mod.name}.{target.id}"
                    if qual in tracked:
                        setters.setdefault(qual, owner)
                continue
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                qual = _resolve_global_ref(index, mod, target.value)
                if qual in tracked:
                    mutators[qual].add(owner)  # type: ignore[index]
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                qual = _resolve_global_ref(index, mod, target.value)
                if qual in tracked:
                    mutators[qual].add(owner)  # type: ignore[index]
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            qual = _resolve_global_ref(index, mod, func.value)
            if qual in tracked:
                mutators[qual].add(owner)  # type: ignore[index]


def _sim_reachable(index: ProjectIndex, graph: CallGraph) -> set[str]:
    roots = {
        qualname
        for qualname, fn in index.functions.items()
        if fn.ctx.in_package(*_SIM_PACKAGES)
    }
    return graph.reachable_from(roots)


def _classify(
    mod: ModuleInfo,
    var: GlobalVar,
    setter: str | None,
    mutator_names: list[str],
) -> str:
    if setter is not None:
        if _has_null_default(mod, var):
            return "null_singleton"
        return "registered"
    if mutator_names:
        in_module_only = all(
            name.startswith(f"{var.module}.") for name in mutator_names
        )
        if var.name.startswith("_") and in_module_only:
            return "cache"
        return "bare_mutable"
    shape = var.shape
    if isinstance(var.value, ast.Name):
        aliased = mod.globals.get(var.value.id)
        if aliased is not None:
            shape = aliased.shape
    if shape == "mutable_literal":
        return "table"
    return "instance"


def audit_globals(index: ProjectIndex, graph: CallGraph) -> list[GlobalReport]:
    """Classify every interesting module-level global, sorted by name."""
    tracked: set[str] = set()
    candidates: list[tuple[ModuleInfo, GlobalVar]] = []
    for mod_name in sorted(index.modules):
        mod = index.modules[mod_name]
        for var_name in sorted(mod.globals):
            var = mod.globals[var_name]
            if var.shape in _SAFE_SHAPES:
                continue
            if var_name.startswith("__") and var_name.endswith("__"):
                continue  # __all__ et al: interpreter conventions, not state
            candidates.append((mod, var))
            tracked.add(var.qualname)
    mutators, setters = _collect_mutations(index, tracked)
    sim_reachable = _sim_reachable(index, graph)
    reports: list[GlobalReport] = []
    for mod, var in candidates:
        setter = setters.get(var.qualname)
        mutator_names = sorted(mutators.get(var.qualname, set()))
        kind = _classify(mod, var, setter, mutator_names)
        touched = list(mutator_names)
        if setter is not None:
            touched.append(setter)
        mutated_from_sim = any(name in sim_reachable for name in touched)
        reports.append(
            GlobalReport(
                var=var, kind=kind, setter=setter,
                mutators=mutator_names,
                mutated_from_sim=mutated_from_sim,
            )
        )
    reports.sort(key=lambda r: r.var.qualname)
    return reports


def run_shard_safety(
    index: ProjectIndex, graph: CallGraph
) -> tuple[list[GlobalReport], list[Raw]]:
    """REP012 findings: bare mutable globals (always) and caches whose
    mutators are reachable from simulation code."""
    reports = audit_globals(index, graph)
    findings: list[Raw] = []
    for report in reports:
        var = report.var
        if report.kind == "bare_mutable":
            findings.append(
                (
                    var.ctx,
                    var.node,
                    f'module global "{var.name}" is mutated from '
                    f"{', '.join(report.mutators)} without a registered "
                    "setter — bare mutable module state breaks shard "
                    "determinism; register it behind a get/set pair with "
                    "a Null-object default, or pass it explicitly",
                )
            )
        elif report.kind == "cache" and report.mutated_from_sim:
            findings.append(
                (
                    var.ctx,
                    var.node,
                    f'module-level cache "{var.name}" is filled from '
                    "simulation call paths — per-shard caches diverge "
                    "unless keyed purely on inputs; move the cache onto "
                    "the simulation object or prove it input-pure",
                )
            )
    findings.sort(key=lambda f: (f[0].relpath, f[1].lineno, f[1].col_offset))
    return reports, findings


# ------------------------------------------------------------------ export
def sharding_payload(
    index: ProjectIndex, reports: list[GlobalReport]
) -> dict[str, object]:
    """The audit as a versioned, JSON-serializable document."""
    roots = sorted({ctx.parts[0] for ctx in index.contexts})
    by_kind = {kind: 0 for kind in KINDS}
    n_sim = 0
    blocking: list[str] = []
    entries: list[dict[str, object]] = []
    for report in reports:
        var = report.var
        by_kind[report.kind] += 1
        if report.mutated_from_sim:
            n_sim += 1
        if report.kind == "bare_mutable":
            blocking.append(var.qualname)
        entries.append(
            {
                "qualname": var.qualname,
                "module": var.module,
                "name": var.name,
                "path": var.ctx.relpath,
                "line": var.lineno,
                "shape": var.shape,
                "kind": report.kind,
                "setter": report.setter,
                "mutators": report.mutators,
                "mutated_from_sim": report.mutated_from_sim,
            }
        )
    return {
        "schema": SHARDING_SCHEMA,
        "meta": {
            "tool": "repro-flow",
            "roots": roots,
            "n_files": len(index.contexts),
        },
        "globals": entries,
        "summary": {
            "n_globals": len(entries),
            "by_kind": by_kind,
            "n_mutated_from_sim": n_sim,
            "blocking": sorted(blocking),
        },
        "verdict": "ready" if not blocking else "blocked",
    }


def sharding_to_json(
    index: ProjectIndex, reports: list[GlobalReport]
) -> str:
    payload = sharding_payload(index, reports)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
