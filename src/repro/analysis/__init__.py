"""Static analysis for determinism and simulation safety.

The reproduction's core promises — one seed reproduces every figure
bit-exactly, simulated time never touches the host clock, exported
artifacts are byte-stable — are invariants of the *source*, so this
package checks them at the source level: a pluggable AST rule framework
(:mod:`repro.analysis.core`), a package-aware walker
(:mod:`repro.analysis.walker`), the rule catalogue
(:mod:`repro.analysis.rules`, IDs ``REP001``–``REP007``), a baseline
ledger for accepted findings (:mod:`repro.analysis.baseline`), and the
deterministic ``repro-lint/v1`` report (:mod:`repro.analysis.report`).

Entry point: ``repro lint`` (see ``docs/static-analysis.md``), which CI
runs over ``src/repro`` on every change. Stdlib-only by design.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineEntry,
    find_baseline,
)
from repro.analysis.core import (
    SEVERITIES,
    Finding,
    ModuleContext,
    Rule,
    run_rules,
)
from repro.analysis.report import (
    LINT_SCHEMA,
    render_rule_list,
    render_table,
    to_json,
    to_payload,
)
from repro.analysis.rules import SCHEMA_KEYS, all_rules, rules_by_id
from repro.analysis.walker import (
    AnalysisResult,
    Analyzer,
    analyze_source,
    collect_files,
)

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "LINT_SCHEMA",
    "SCHEMA_KEYS",
    "SEVERITIES",
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_source",
    "collect_files",
    "find_baseline",
    "render_rule_list",
    "render_table",
    "rules_by_id",
    "run_rules",
    "to_json",
    "to_payload",
]
