"""Static analysis for determinism and simulation safety.

The reproduction's core promises — one seed reproduces every figure
bit-exactly, simulated time never touches the host clock, exported
artifacts are byte-stable — are invariants of the *source*, so this
package checks them at the source level: a pluggable AST rule framework
(:mod:`repro.analysis.core`), a package-aware walker
(:mod:`repro.analysis.walker`), the rule catalogue
(:mod:`repro.analysis.rules`, IDs ``REP001``–``REP008``), a baseline
ledger for accepted findings (:mod:`repro.analysis.baseline`), the
deterministic ``repro-lint/v1`` report (:mod:`repro.analysis.report`),
and an interprocedural flow layer (:mod:`repro.analysis.flow`, IDs
``REP009``–``REP013``: call graph, clock-domain taint, RNG stream
hygiene, shard-safety audit, schema producer cross-check).

Entry point: ``repro lint`` (see ``docs/static-analysis.md``), which CI
runs over ``src/repro`` on every change. Stdlib-only by design.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineEntry,
    find_baseline,
)
from repro.analysis.core import (
    SEVERITIES,
    Finding,
    ModuleContext,
    Rule,
    run_rules,
)
from repro.analysis.flow import (
    CALLGRAPH_SCHEMA,
    SHARDING_SCHEMA,
    CallGraph,
    FlowResult,
    ProjectIndex,
    analyze_flow,
    build_callgraph,
    build_index,
    callgraph_payload,
    callgraph_to_dot,
    callgraph_to_json,
    flow_rules,
    flow_rules_by_id,
    sharding_payload,
    sharding_to_json,
)
from repro.analysis.report import (
    LINT_SCHEMA,
    render_rule_list,
    render_table,
    to_json,
    to_payload,
)
from repro.analysis.rules import SCHEMA_KEYS, all_rules, rules_by_id
from repro.analysis.walker import (
    AnalysisResult,
    Analyzer,
    analyze_source,
    collect_files,
)

__all__ = [
    "BASELINE_SCHEMA",
    "CALLGRAPH_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "LINT_SCHEMA",
    "SCHEMA_KEYS",
    "SEVERITIES",
    "SHARDING_SCHEMA",
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "Finding",
    "FlowResult",
    "ModuleContext",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "analyze_flow",
    "analyze_source",
    "build_callgraph",
    "build_index",
    "callgraph_payload",
    "callgraph_to_dot",
    "callgraph_to_json",
    "collect_files",
    "find_baseline",
    "flow_rules",
    "flow_rules_by_id",
    "render_rule_list",
    "render_table",
    "rules_by_id",
    "run_rules",
    "sharding_payload",
    "sharding_to_json",
    "to_json",
    "to_payload",
]
