"""REP007 — unordered-collection iteration on deterministic paths.

Python ``set``/``frozenset`` iteration order depends on insertion history
and hash seeding of the stored objects; iterating one into any ordered
output (a list, a report row, a joined string, a Pareto candidate list)
makes the output run-dependent. Dicts are insertion-ordered and therefore
fine. The fix is always the same: ``sorted(s, key=...)`` with an explicit,
total key.

The rule tracks set-typed expressions structurally: literals, set
comprehensions, ``set(...)``/``frozenset(...)`` calls, set-operator
results, set-returning methods, and local names bound to any of those.
Iteration contexts are ``for`` loops, comprehension generators, and
order-sensitive consumers (``list``, ``tuple``, ``enumerate``, ``iter``,
``str.join``). Order-insensitive consumers (``sorted``, ``len``, ``sum``,
``min``, ``max``, ``any``, ``all``, membership tests) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})
_SET_METHODS = frozenset(
    {"union", "difference", "intersection", "symmetric_difference", "copy"}
)
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class UnorderedIterationRule(Rule):
    """REP007: iterating a set where order reaches the output."""

    rule_id = "REP007"
    name = "unordered-iteration"
    severity = "warning"
    rationale = (
        "Set iteration order is insertion- and hash-dependent; any path "
        "that feeds exporters, the Pareto front or the planner must wrap "
        "it in sorted(..., key=...) with an explicit total key."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree, frozenset())

    def _check_scope(
        self, ctx: ModuleContext, scope: ast.AST, outer_sets: frozenset[str]
    ) -> Iterator[Finding]:
        set_names = outer_sets | _set_bound_names(scope)
        for node in _scope_walk(scope):
            if isinstance(node, _FUNCTION_NODES):
                yield from self._check_scope(ctx, node, set_names)
            else:
                yield from self._check_node(ctx, node, set_names)

    def _check_node(
        self, ctx: ModuleContext, node: ast.AST, set_names: frozenset[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names):
                yield self.finding(
                    ctx, node,
                    "for-loop over a set: iteration order is not "
                    "deterministic; use sorted(..., key=...)",
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_names):
                    yield self.finding(
                        ctx, node,
                        "comprehension over a set: iteration order is not "
                        "deterministic; use sorted(..., key=...)",
                    )
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if (
                name in _ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield self.finding(
                    ctx, node,
                    f"{name}() over a set materializes a non-deterministic "
                    "order; use sorted(..., key=...)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield self.finding(
                    ctx, node,
                    "str.join over a set produces a non-deterministic "
                    "string; use sorted(..., key=...)",
                )


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending past nested function boundaries.

    Nested function defs are yielded (so the caller can recurse with the
    right name table) but their bodies are not traversed here.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FUNCTION_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _set_bound_names(scope: ast.AST) -> frozenset[str]:
    """Names bound to a set-typed expression or annotation (and never to
    anything else) directly within ``scope``."""
    is_set: dict[str, bool] = {}

    def mark(name: str, setlike: bool) -> None:
        prev = is_set.get(name)
        is_set[name] = setlike if prev is None else (prev and setlike)

    if isinstance(scope, _FUNCTION_NODES):
        a = scope.args
        for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                mark(arg.arg, True)
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    mark(t.id, _is_set_expr(node.value, frozenset()))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_set_annotation(node.annotation):
                mark(node.target.id, True)
            elif node.value is not None:
                mark(node.target.id, _is_set_expr(node.value, frozenset()))
    return frozenset(name for name, ok in is_set.items() if ok)


def _is_set_annotation(ann: ast.expr) -> bool:
    """``set``, ``frozenset``, ``set[T]``, ``typing.Set[T]`` annotations."""
    if isinstance(ann, ast.Subscript):
        ann = ann.value
    if isinstance(ann, ast.Attribute):
        return ann.attr in ("Set", "FrozenSet")
    return isinstance(ann, ast.Name) and ann.id in (
        "set", "frozenset", "Set", "FrozenSet"
    )


def _is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("set", "frozenset"):
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None
