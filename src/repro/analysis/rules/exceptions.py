"""REP005 — exception hygiene.

Every library error derives from ``repro.common.errors.ReproError``
precisely so that callers can catch library failures without masking
programming errors. A bare ``except:`` or ``except Exception:`` that does
not re-raise defeats that design: it swallows ``SimulationError`` (an
inconsistent event loop!), ``ValidationError``, and — for bare excepts —
even ``KeyboardInterrupt``-adjacent control-flow exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

_BROAD = frozenset({"Exception", "BaseException"})


class BroadExceptRule(Rule):
    """REP005: bare/broad except handlers that swallow library errors."""

    rule_id = "REP005"
    name = "broad-except"
    severity = "warning"
    rationale = (
        "Broad handlers swallow repro.common.errors types (and worse). "
        "Catch the narrowest ReproError subclass; a deliberately broad "
        "handler must re-raise or carry a baseline entry."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt/SystemExit; name the exception",
                )
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue  # inspected and re-raised: acceptable boundary
            yield self.finding(
                ctx,
                node,
                f"'except {broad}' without re-raise swallows "
                "repro.common.errors types; catch the specific error",
            )

    @staticmethod
    def _broad_name(expr: ast.expr) -> str | None:
        names = []
        elts = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for e in elts:
            if isinstance(e, ast.Name) and e.id in _BROAD:
                names.append(e.id)
        return names[0] if names else None
