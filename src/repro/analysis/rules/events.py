"""REP003 — event-loop safety in ``repro.faas``.

The simulator stays deterministic because events at equal timestamps fire
in scheduling order: every heap entry carries a monotonically increasing
sequence number as the tie-break. This rule guards the two ways that
property gets lost during maintenance:

* a ``heapq.heappush`` whose entry has no room for a tie-break key (fewer
  than three tuple elements, or not a tuple at all) — equal-time events
  would then compare on the payload, which is either unstable or raises;
* an event-handler generator that mutates module-level (shared) state
  after yielding control — the mutation's visibility then depends on event
  interleaving rather than on explicit scheduling order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.imports import ImportMap

_HEAPPUSH = frozenset({"heapq.heappush", "heapq.heappushpop"})


class EventLoopSafetyRule(Rule):
    """REP003: heap entries without tie-breaks; shared mutation after yield."""

    rule_id = "REP003"
    name = "event-loop-safety"
    severity = "error"
    rationale = (
        "Equal-timestamp events must fire in a deterministic order: heap "
        "entries need a (time, seq, ...) layout, and handlers must not "
        "mutate shared module state after yielding."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("faas")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        yield from self._check_heap_pushes(ctx, imports)
        yield from self._check_post_yield_mutation(ctx)

    # -- (a) heap entries ---------------------------------------------------
    def _check_heap_pushes(
        self, ctx: ModuleContext, imports: ImportMap
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or len(node.args) < 2:
                continue
            if imports.resolve(node.func) not in _HEAPPUSH:
                continue
            entry = node.args[1]
            if not isinstance(entry, ast.Tuple):
                yield self.finding(
                    ctx,
                    node,
                    "heappush entry is not a literal tuple; equal-time "
                    "events need an explicit (time, seq, ...) tie-break",
                )
            elif len(entry.elts) < 3:
                yield self.finding(
                    ctx,
                    node,
                    f"heappush entry has {len(entry.elts)} element(s); "
                    "schedule as (time, seq, payload) so equal timestamps "
                    "break ties deterministically",
                )

    # -- (b) shared-state mutation after yield ------------------------------
    def _check_post_yield_mutation(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_names = {
            t.id
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign))
            for t in _assign_targets(stmt)
            if isinstance(t, ast.Name)
        }
        if not module_names:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            first_yield = _first_yield_line(fn)
            if first_yield is None:
                continue
            declared_global = {
                name
                for stmt in ast.walk(fn)
                if isinstance(stmt, ast.Global)
                for name in stmt.names
            }
            shared = (module_names & declared_global) | (
                module_names - _locally_bound(fn)
            )
            for stmt in ast.walk(fn):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    continue
                if stmt.lineno <= first_yield:
                    continue
                for target in _assign_targets(stmt):
                    root = _root_name(target)
                    if root is None:
                        continue
                    is_rebind = isinstance(target, ast.Name)
                    if is_rebind and root not in declared_global:
                        continue  # plain local rebinding
                    if root in shared:
                        yield self.finding(
                            ctx,
                            stmt,
                            f"handler mutates shared state {root!r} after "
                            "yielding; move the mutation before the yield "
                            "or schedule it as its own event",
                        )


def _assign_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return [stmt.target]
    return []


def _first_yield_line(fn: ast.AST) -> int | None:
    lines = [
        n.lineno
        for n in ast.walk(fn)
        if isinstance(n, (ast.Yield, ast.YieldFrom))
    ]
    return min(lines) if lines else None


def _locally_bound(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside the function (params, assignments, for-targets)."""
    bound = {a.arg for a in fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs}
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for t in _assign_targets(node):
                if isinstance(t, ast.Name):
                    bound.add(t.id)
        elif isinstance(node, ast.For):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.withitem) and isinstance(
            node.optional_vars, ast.Name
        ):
            bound.add(node.optional_vars.id)
    return bound


def _root_name(target: ast.expr) -> str | None:
    cur = target
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None
