"""REP008 — bounded-retry discipline for simulated components.

The resilience layer (``repro.faults``) makes retries a first-class part
of execution, which creates a new way to hang a simulation: a retry loop
with no attempt bound spins forever when a fault plan makes the failure
deterministic. Every retry in a simulated package must therefore carry an
explicit bound — ``for attempt in range(max_attempts)`` or
``while attempt < max_attempts`` — and exhaust into an error
(:class:`repro.common.errors.RetryExhaustedError`) rather than looping.

Three shapes are flagged:

* a constant-true ``while`` loop with no ``break``/``return``/``raise``
  anywhere in its body — it cannot terminate;
* an ``except`` handler that ends in ``continue`` inside a constant-true
  ``while`` loop — the swallow-and-retry idiom, unbounded by construction;
* a constant-true ``while`` loop or an ``itertools.count()`` iteration
  inside a function whose name marks it as a retry helper — such helpers
  must take their bound from a max-attempts parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.imports import ImportMap

#: Packages whose retry loops must be statically bounded. Matches the
#: determinism rules' simulated scope, plus the storage substrate and the
#: fault/resilience layer itself.
_RETRY_SCOPE = (
    "faas", "training", "tuning", "workflow", "slo", "storage", "faults",
)

#: Function-name fragments that mark a retry helper.
_RETRY_NAMES = ("retry", "retries", "with_backoff")


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _loop_escapes(loop: ast.While) -> bool:
    """Whether the loop body can leave the loop (break/return/raise).

    Nested function definitions and nested loops get their own analysis;
    a ``break`` inside a nested loop does not escape the outer one.
    """
    for child in _body_walk(loop.body, through_loops=False):
        if isinstance(child, (ast.Break, ast.Return, ast.Raise)):
            return True
    return False


def _body_walk(
    body: list[ast.stmt], through_loops: bool
) -> Iterator[ast.AST]:
    """Walk statements without descending into nested defs (or loops)."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if not through_loops and isinstance(stmt, (ast.For, ast.While)):
            # A break in a nested loop exits the nested loop only, but a
            # return/raise still escapes the outer one.
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Return, ast.Raise)):
                    yield inner
            continue
        yield stmt
        for field_body in (
            getattr(stmt, "body", []),
            getattr(stmt, "orelse", []),
            getattr(stmt, "finalbody", []),
        ):
            yield from _body_walk(list(field_body), through_loops)
        for handler in getattr(stmt, "handlers", []):
            yield handler
            yield from _body_walk(list(handler.body), through_loops)


class UnboundedRetryRule(Rule):
    """REP008: retry loops without an attempt bound in simulated packages."""

    rule_id = "REP008"
    name = "unbounded-retry"
    severity = "warning"
    rationale = (
        "Fault injection can make a failure deterministic; a retry loop "
        "without a max-attempts bound then spins the simulation forever. "
        "Bound every retry and exhaust into RetryExhaustedError."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*_RETRY_SCOPE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While) and _is_constant_true(node.test):
                yield from self._check_constant_while(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_retry_helper(ctx, node, imports)

    def _check_constant_while(
        self, ctx: ModuleContext, loop: ast.While
    ) -> Iterator[Finding]:
        if not _loop_escapes(loop):
            yield self.finding(
                ctx,
                loop,
                "constant-true while loop with no break/return/raise can "
                "never terminate; bound it by attempt count",
            )
            return
        for child in _body_walk(loop.body, through_loops=False):
            if (
                isinstance(child, ast.ExceptHandler)
                and child.body
                and isinstance(child.body[-1], ast.Continue)
            ):
                yield self.finding(
                    ctx,
                    child,
                    "except-and-continue inside a constant-true while loop "
                    "retries without an attempt bound; count attempts and "
                    "raise RetryExhaustedError when they run out",
                )

    def _check_retry_helper(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        if not any(tag in func.name.lower() for tag in _RETRY_NAMES):
            return
        for node in ast.walk(func):
            if isinstance(node, ast.While) and _is_constant_true(node.test):
                yield self.finding(
                    ctx,
                    node,
                    f"retry helper {func.name}() loops on a constant-true "
                    "while; take a max-attempts bound instead",
                )
            elif isinstance(node, ast.For):
                target = imports.resolve(node.iter.func) if isinstance(
                    node.iter, ast.Call
                ) else None
                if target == "itertools.count":
                    yield self.finding(
                        ctx,
                        node,
                        f"retry helper {func.name}() iterates "
                        "itertools.count(); use range(max_attempts)",
                    )
