"""REP014 — event-queue unification: heaps belong to the kernel.

The repository has exactly one event loop: :class:`repro.kernel.EventKernel`,
whose heap entries carry the deterministic ``(time, priority, seq)``
tie-break and whose dispatch feeds the crash-consistent run journal. A
second ad-hoc queue — a raw ``heapq`` workqueue, a ``queue.PriorityQueue``
— would own its own clock ordering, invisible to both the determinism
contract and ``repro resume``. This rule flags direct priority-queue use
anywhere outside :mod:`repro.kernel`; the kernel's own two heap calls are
pragma-suppressed at the call sites (``# lint: ignore[REP014]``), keeping
the exemption visible in the code it exempts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.imports import ImportMap

#: The mutating heap-queue operations (selection helpers like
#: ``heapq.nsmallest`` are fine — they order data, not events).
_HEAP_OPS = frozenset(
    {
        "heapq.heappush",
        "heapq.heappop",
        "heapq.heapify",
        "heapq.heappushpop",
        "heapq.heapreplace",
    }
)

_QUEUE_TYPES = frozenset({"queue.PriorityQueue", "asyncio.PriorityQueue"})


class EventQueueUnificationRule(Rule):
    """REP014: ad-hoc event queues outside ``repro.kernel``."""

    rule_id = "REP014"
    name = "event-queue-unification"
    severity = "error"
    rationale = (
        "All event scheduling must go through repro.kernel.EventKernel: a "
        "private heapq or PriorityQueue orders events outside the kernel's "
        "deterministic (time, priority, seq) dispatch and is invisible to "
        "the run journal that `repro resume` replays."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in _HEAP_OPS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct {resolved} builds an ad-hoc event queue; "
                    "schedule through repro.kernel.EventKernel so dispatch "
                    "order and the run journal stay authoritative",
                )
            elif resolved in _QUEUE_TYPES:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved} is a second priority queue next to the "
                    "event kernel; route the work through "
                    "repro.kernel.EventKernel.schedule instead",
                )
