"""The rule catalogue: stable IDs to analyses.

``all_rules()`` builds one fresh instance of every registered rule;
``rules_by_id`` resolves ``--select``/``--ignore`` CLI filters. IDs are
append-only — a retired rule's ID is never reused, so baselines and
suppression comments stay meaningful across versions.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.determinism import UnseededRandomnessRule, WallClockRule
from repro.analysis.rules.events import EventLoopSafetyRule
from repro.analysis.rules.eventqueue import EventQueueUnificationRule
from repro.analysis.rules.exceptions import BroadExceptRule
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.retry import UnboundedRetryRule
from repro.analysis.rules.schema import SCHEMA_KEYS, SchemaDisciplineRule
from repro.analysis.rules.units import UnitSafetyRule

_RULE_CLASSES: tuple[type[Rule], ...] = (
    UnseededRandomnessRule,  # REP001
    WallClockRule,  # REP002
    EventLoopSafetyRule,  # REP003
    UnitSafetyRule,  # REP004
    BroadExceptRule,  # REP005
    SchemaDisciplineRule,  # REP006
    UnorderedIterationRule,  # REP007
    UnboundedRetryRule,  # REP008
    EventQueueUnificationRule,  # REP014 (REP009-REP013 are flow rules)
)


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in rule-ID order."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.rule_id)


def rules_by_id() -> dict[str, Rule]:
    return {rule.rule_id: rule for rule in all_rules()}


__all__ = [
    "SCHEMA_KEYS",
    "all_rules",
    "rules_by_id",
    "UnseededRandomnessRule",
    "WallClockRule",
    "EventLoopSafetyRule",
    "EventQueueUnificationRule",
    "UnitSafetyRule",
    "BroadExceptRule",
    "SchemaDisciplineRule",
    "UnorderedIterationRule",
    "UnboundedRetryRule",
]
