"""REP004 — unit safety for physical quantities.

The library's convention (``repro.common.units``) is positional: seconds,
megabytes, GB-seconds and USD are all plain floats, distinguished only by
the ``_s`` / ``_mb`` / ``_gb_s`` / ``_usd`` suffix of the name that holds
them. That convention is cheap to violate silently — ``budget_usd=qos_s``
type-checks and runs. This rule recovers units from name suffixes and a
small signature registry and flags:

* arithmetic (``+``/``-``) or comparisons mixing two different units;
* keyword arguments whose name carries one unit receiving a value whose
  name carries another;
* calls to registered quantity-taking functions with an argument of the
  wrong unit, or (for positions marked strict) a raw numeric literal where
  a derived quantity is expected.

Names containing ``_per_`` form ratio units (``usd_per_minute``,
``compute_s_per_mb``) and only match themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

#: Longest-match suffix table: name suffix -> unit tag.
_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_usd", "USD"),
    ("_gb_seconds", "GB-s"),
    ("_gb_s", "GB-s"),
    ("_mb_s", "MB/s"),
    ("_mbps", "MB/s"),
    ("_gb", "GB"),
    ("_mb", "MB"),
    ("_kb", "KB"),
    ("_bytes", "B"),
    ("_seconds", "s"),
    ("_ms", "ms"),
    ("_s", "s"),
)

#: Cross-module signature registry: function name -> expected unit per
#: positional argument (None = unconstrained). "strict" positions also
#: reject raw numeric literals, because the value is a derived quantity
#: that is never a sensible constant.
_SIGNATURES: dict[str, tuple[tuple[str | None, bool], ...]] = {
    "gb_seconds": (("MB", False), ("s", False)),
    "format_usd": (("USD", False),),
    "format_duration": (("s", False),),
    "bytes_from_mb": (("MB", False),),
    "mb_from_bytes": (("B", True),),
    "usd_per_million": ((None, False), (None, False)),
}


def unit_of(name: str) -> str | None:
    """Unit tag carried by ``name``'s suffix, ratio-aware."""
    if "_per_" in name:
        head, _, tail = name.rpartition("_per_")
        num = unit_of(head)
        if num is None:
            return None
        # Normalize the denominator through the suffix table too, so
        # `usd_per_gb_s` and a `_usd` / `_gb_s` quotient carry one tag.
        return f"{num}/{unit_of('x_' + tail) or tail}"
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix):
            return unit
    return None


def _expr_unit(node: ast.expr) -> tuple[str, str] | None:
    """(unit, display-name) for a Name/Attribute expression, if any."""
    if isinstance(node, ast.Name):
        unit = unit_of(node.id)
        return (unit, node.id) if unit else None
    if isinstance(node, ast.Attribute):
        unit = unit_of(node.attr)
        return (unit, node.attr) if unit else None
    return None


def _is_number(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_number(node.operand)
    return False


class UnitSafetyRule(Rule):
    """REP004: mixed physical units or raw literals where quantities go."""

    rule_id = "REP004"
    name = "unit-safety"
    severity = "warning"
    rationale = (
        "Seconds, MB, GB-s and USD are all floats; only the name suffix "
        "carries the unit. Mixing suffixes in arithmetic or across call "
        "boundaries is a silent correctness bug."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        registry = dict(_SIGNATURES)
        registry.update(_local_signatures(ctx.tree))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                if isinstance(
                    node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                ):
                    yield from self._check_pair(
                        ctx, node, node.left, node.comparators[0]
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, registry)

    def _check_pair(
        self, ctx: ModuleContext, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> Iterator[Finding]:
        lu, ru = _expr_unit(left), _expr_unit(right)
        if lu and ru and lu[0] != ru[0]:
            yield self.finding(
                ctx,
                node,
                f"mixing units: {lu[1]!r} is {lu[0]} but {ru[1]!r} is {ru[0]}",
            )

    def _check_call(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        registry: dict[str, tuple[tuple[str | None, bool], ...]],
    ) -> Iterator[Finding]:
        # Keyword arguments: unit-suffixed name fed a differently-suffixed value.
        for kw in node.keywords:
            if kw.arg is None:
                continue
            expected = unit_of(kw.arg)
            if expected is None:
                continue
            got = _expr_unit(kw.value)
            if got and got[0] != expected:
                yield self.finding(
                    ctx,
                    node,
                    f"keyword {kw.arg!r} expects {expected} but "
                    f"{got[1]!r} is {got[0]}",
                )
        # Registered signatures: positional unit and strict-literal checks.
        fn_name = _call_name(node)
        sig = registry.get(fn_name) if fn_name else None
        if not sig:
            return
        for i, arg in enumerate(node.args[: len(sig)]):
            expected, strict = sig[i]
            if expected is None:
                continue
            got = _expr_unit(arg)
            if got and got[0] != expected:
                yield self.finding(
                    ctx,
                    node,
                    f"{fn_name}() argument {i + 1} expects {expected} but "
                    f"{got[1]!r} is {got[0]}",
                )
            elif strict and _is_number(arg):
                yield self.finding(
                    ctx,
                    node,
                    f"{fn_name}() argument {i + 1} expects a {expected} "
                    "quantity, not a raw numeric literal; build it via "
                    "repro.common.units",
                )


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _local_signatures(
    tree: ast.Module,
) -> dict[str, tuple[tuple[str | None, bool], ...]]:
    """Signature entries inferred from this module's own function defs.

    Any parameter whose name carries a unit suffix constrains positional
    call sites within the same file — the "annotation" is the naming
    convention itself.
    """
    out: dict[str, tuple[tuple[str | None, bool], ...]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = [a.arg for a in node.args.posonlyargs + node.args.args]
        if args and args[0] in ("self", "cls"):
            args = args[1:]
        sig = tuple((unit_of(a), False) for a in args)
        if any(unit for unit, _ in sig):
            out[node.name] = sig
    return out
