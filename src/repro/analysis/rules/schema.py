"""REP006 — schema discipline for versioned JSON exports.

The repository promises byte-stable, versioned artifacts: telemetry
captures (``repro-telemetry/v1``), run reports (``repro-report/v1``),
diagnostics (``repro-diagnostics/v1``) and lint output (``repro-lint/v1``).
Downstream tooling — the regression harness, ``repro report``, CI diffs —
keys on their top-level layout. This rule pins each document's top-level
key set to the registry below, so a drive-by "just add a field" shows up
in review as the schema change it actually is (bump the version or update
the registry deliberately).

Detection: a dict literal with a ``"schema"`` key, whose value is either a
version-string literal or a module-level constant holding one.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

#: The checked-in key sets for every versioned document the repo emits.
SCHEMA_KEYS: dict[str, frozenset[str]] = {
    "repro-telemetry/v1": frozenset({"schema", "meta", "run", "metrics"}),
    "repro-journal/v1": frozenset({"schema", "kind", "run", "meta"}),
    "repro-report/v1": frozenset(
        {"schema", "meta", "run", "time", "cost", "activity"}
    ),
    "repro-diagnostics/v1": frozenset(
        {
            "schema", "meta", "critical_path", "stragglers", "drift",
            "regret", "findings",
        }
    ),
    "repro-lint/v1": frozenset({"schema", "tool", "summary", "findings"}),
    "repro-baseline/v1": frozenset({"schema", "entries"}),
    "repro-slo/v1": frozenset(
        {
            "schema", "name", "deadline_s", "budget_usd", "stage_budgets_usd",
            "warn_ratio", "predictor_drift_threshold", "straggler_slowdown",
        }
    ),
    "repro-events/v1": frozenset({"schema", "meta"}),
    "repro-slo-report/v1": frozenset(
        {"schema", "meta", "spec", "objectives", "alerts", "verdict"}
    ),
    "repro-faults/v1": frozenset(
        {
            "schema", "name", "crash_prob", "crash_mid_fraction",
            "invocation_timeout_s", "cold_start_failure_prob", "storage",
            "permanent_loss", "retry",
        }
    ),
    "repro-faults-report/v1": frozenset(
        {"schema", "meta", "plan", "summary", "records"}
    ),
    "repro-profile/v1": frozenset({"schema", "meta", "frames", "totals"}),
    "repro-profile-diff/v1": frozenset(
        {"schema", "meta", "base", "target", "threshold", "frames", "summary"}
    ),
    "repro-report/v2": frozenset(
        {"schema", "meta", "run", "time", "cost", "activity", "peaks"}
    ),
    "repro-timeseries/v1": frozenset(
        {"schema", "meta", "series", "markers", "totals"}
    ),
    "repro-timeseries-diff/v1": frozenset(
        {"schema", "meta", "base", "target", "series", "summary"}
    ),
    "repro-callgraph/v1": frozenset(
        {"schema", "meta", "nodes", "edges", "summary"}
    ),
    "repro-sharding/v1": frozenset(
        {"schema", "meta", "globals", "summary", "verdict"}
    ),
    "repro-bundle/v1": frozenset(
        {"schema", "meta", "run_id", "artifacts", "summary"}
    ),
    "repro-compare/v1": frozenset(
        {"schema", "meta", "base", "target", "deltas", "attribution", "verdict"}
    ),
}

_VERSIONED = re.compile(r"^[a-z][a-z0-9-]*/v\d+$")


class SchemaDisciplineRule(Rule):
    """REP006: versioned-JSON top-level keys must match the registry."""

    rule_id = "REP006"
    name = "schema-discipline"
    severity = "warning"
    rationale = (
        "Versioned artifacts are diffed and parsed downstream; their "
        "top-level key sets are contracts. Changing one requires a "
        "version bump or a deliberate registry update."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        constants = _string_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            schema_id, keys = self._document_shape(node, constants)
            if schema_id is None:
                continue
            expected = SCHEMA_KEYS.get(schema_id)
            if expected is None:
                yield self.finding(
                    ctx,
                    node,
                    f"document declares unregistered schema {schema_id!r}; "
                    "register its key set in repro.analysis.rules.schema",
                )
                continue
            if keys is None:
                continue  # dynamic keys (e.g. **spread) — nothing to pin
            missing = sorted(expected - keys)
            extra = sorted(keys - expected)
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"{schema_id} document is missing registered key(s) "
                    f"{missing}; emit them or bump the schema version",
                )
            if extra:
                yield self.finding(
                    ctx,
                    node,
                    f"{schema_id} document adds unregistered key(s) "
                    f"{extra}; bump the schema version or update the "
                    "registry",
                )

    @staticmethod
    def _document_shape(
        node: ast.Dict, constants: dict[str, str]
    ) -> tuple[str | None, frozenset[str] | None]:
        """(schema id, top-level literal keys) for a versioned dict literal.

        Returns ``(None, None)`` for ordinary dicts; ``(id, None)`` when the
        dict has non-literal keys so only registration can be checked.
        """
        schema_id: str | None = None
        keys: set[str] = set()
        literal_only = True
        for key, value in zip(node.keys, node.values):
            if key is None or not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                literal_only = False
                continue
            keys.add(key.value)
            if key.value != "schema":
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                candidate = value.value
            elif isinstance(value, ast.Name):
                candidate = constants.get(value.id, "")
            elif isinstance(value, ast.Attribute):
                candidate = constants.get(value.attr, "")
            else:
                candidate = ""
            if _VERSIONED.match(candidate):
                schema_id = candidate
        if schema_id is None:
            return None, None
        return schema_id, frozenset(keys) if literal_only else None


def _string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    out: dict[str, str] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.value.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and stmt.value is not None
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
            and isinstance(stmt.target, ast.Name)
        ):
            out[stmt.target.id] = stmt.value.value
    return out
