"""REP001/REP002 — randomness and wall-clock discipline.

REP001: every stochastic draw must flow through ``repro.common.rng`` so a
single integer seed reproduces a run bit-exactly. Module-level ``random.*``
or legacy ``numpy.random.*`` calls, ``uuid1/uuid4``, ``os.urandom``,
``secrets`` and bare ``hash()`` (randomized per interpreter via
PYTHONHASHSEED) all break that contract.

REP002: simulated components must read time from the discrete-event clock
(``Simulator.now`` in ``repro.faas.events``), never the host. A single
``time.time()`` on a simulation path couples results to the machine that
produced them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.imports import ImportMap

#: numpy.random entry points that are part of the *seeded* Generator API.
_NUMPY_SEEDED_API = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)

_UUID_NONDETERMINISTIC = frozenset({"uuid.uuid1", "uuid.uuid4"})

_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Packages whose only legal time source is the simulation clock. The
#: profiling package is included deliberately: its sole sanctioned host
#: clock is ``repro.profiling.clock.host_clock_s`` (pragma'd at the call
#: site); every other profiling module — and every instrumented simulation
#: module — must route host timing through that helper. ``analysis/flow``
#: is in scope too: its exported documents (call graph, shard report) are
#: byte-stable contracts, so the flow analyzer itself must never read the
#: host clock.
_SIM_PACKAGES = (
    "faas", "training", "tuning", "workflow", "slo", "faults", "profiling",
    "timeseries", "flow", "runs", "kernel",
)


class UnseededRandomnessRule(Rule):
    """REP001: randomness outside the seeded ``repro.common.rng`` streams."""

    rule_id = "REP001"
    name = "unseeded-randomness"
    severity = "error"
    rationale = (
        "All stochastic draws must come from repro.common.rng streams; "
        "global RNGs, uuid1/uuid4, os.urandom and hash() vary across "
        "processes and break seed-exact reproduction."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        # The one module allowed to touch raw generators is rng.py itself.
        return not ctx.endswith("common/rng.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve(node.func)
            if target is None:
                continue
            message = self._judge(target)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _judge(target: str) -> str | None:
        if target == "hash" or target == "builtins.hash":
            return (
                "hash() is randomized per interpreter (PYTHONHASHSEED); "
                "use zlib.crc32 as in repro.common.rng.stream_for"
            )
        if target.startswith("random."):
            return (
                f"{target}() draws from the global stdlib RNG; derive a "
                "generator via repro.common.rng (make_rng/stream_for)"
            )
        if target.startswith("numpy.random."):
            tail = target.rsplit(".", 1)[1]
            if tail not in _NUMPY_SEEDED_API:
                return (
                    f"{target}() uses numpy's legacy global RNG; use "
                    "numpy.random.default_rng via repro.common.rng"
                )
        if target in _UUID_NONDETERMINISTIC:
            return f"{target}() is non-deterministic; derive ids from the seed"
        if target == "os.urandom" or target.startswith("secrets."):
            return f"{target}() is an entropy source; simulation must be seeded"
        return None


class WallClockRule(Rule):
    """REP002: host-clock reads inside simulated packages."""

    rule_id = "REP002"
    name = "wall-clock-in-sim"
    severity = "error"
    rationale = (
        "faas/, training/, tuning/ and workflow/ run on the discrete-event "
        "clock; host-clock reads make results machine-dependent. Host-side "
        "instrumentation that is deliberate belongs in the lint baseline."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*_SIM_PACKAGES) and not ctx.in_package("benchmarks")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve(node.func)
            if target in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() reads the host clock inside a simulated "
                    "package; use the event-loop clock (Simulator.now)",
                )
