"""Lint output: terminal table and the ``repro-lint/v1`` JSON document.

Both renderings are deterministic — findings arrive sorted from the
walker, the JSON serializes with sorted keys and carries no timestamps or
absolute paths — so two runs over the same tree are byte-identical and a
lint document can be diffed across commits like any other artifact.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding, Rule
from repro.analysis.walker import AnalysisResult

LINT_SCHEMA = "repro-lint/v1"


def to_payload(
    result: AnalysisResult,
    rules: Sequence[Rule],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> dict:
    """The lint run as a versioned, JSON-serializable document."""
    ordered = sorted([*new, *baselined], key=Finding.sort_key)
    by_rule: dict[str, int] = {}
    for f in ordered:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "schema": LINT_SCHEMA,
        "tool": {
            "name": "repro-lint",
            "rules": [
                {
                    "id": r.rule_id,
                    "name": r.name,
                    "severity": r.severity,
                    "rationale": r.rationale,
                }
                for r in sorted(rules, key=lambda r: r.rule_id)
            ],
        },
        "summary": {
            "files_analyzed": result.files_analyzed,
            "findings_total": len(ordered),
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": result.suppressed,
            "parse_errors": result.parse_errors,
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "baselined": f.baselined,
            }
            for f in ordered
        ],
    }


def to_json(
    result: AnalysisResult,
    rules: Sequence[Rule],
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    return (
        json.dumps(
            to_payload(result, rules, new, baselined), indent=2, sort_keys=True
        )
        + "\n"
    )


def render_table(
    result: AnalysisResult,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """Human-readable rendering: one line per finding, grouped by file."""
    lines: list[str] = []
    ordered = sorted([*new, *baselined], key=Finding.sort_key)
    current_path = None
    for f in ordered:
        if f.path != current_path:
            if current_path is not None:
                lines.append("")
            lines.append(f.path)
            current_path = f.path
        marker = " (baselined)" if f.baselined else ""
        lines.append(
            f"  {f.line}:{f.col}  {f.rule} [{f.severity}]  {f.message}{marker}"
        )
        if f.snippet:
            lines.append(f"      {f.snippet}")
    if ordered:
        lines.append("")
    lines.append(
        f"{result.files_analyzed} file(s) analyzed: "
        f"{len(new)} new finding(s), {len(baselined)} baselined, "
        f"{result.suppressed} suppressed inline"
    )
    return "\n".join(lines)


def render_rule_list(rules: Sequence[Rule]) -> str:
    """The catalogue as a table (``repro lint --list-rules``)."""
    lines = [f"{'ID':8s} {'severity':9s} name"]
    for r in sorted(rules, key=lambda r: r.rule_id):
        lines.append(f"{r.rule_id:8s} {r.severity:9s} {r.name}")
        lines.append(f"{'':18s} {r.rationale}")
    return "\n".join(lines)
