"""Baseline suppression: accepted findings that don't gate CI.

A baseline entry identifies a finding by ``(rule, path, snippet)`` — the
stripped source line, not the line number, so unrelated edits above a
finding don't invalidate it. Each entry carries a ``count`` (how many
occurrences of that key are accepted) and a human ``reason``; the file is
JSON (schema ``repro-baseline/v1``), written sorted so regeneration is
diff-stable.

A finding that matches an entry is reported with ``baselined: true`` and
does not fail the lint; anything beyond an entry's ``count`` is new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding
from repro.common.errors import BaselineError

BASELINE_SCHEMA = "repro-baseline/v1"
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    count: int = 1
    reason: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


@dataclass(slots=True)
class Baseline:
    """The accepted-findings ledger."""

    entries: list[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if payload.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"baseline {path} declares schema {payload.get('schema')!r}; "
                f"expected {BASELINE_SCHEMA!r}"
            )
        entries = []
        for raw in payload.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        snippet=str(raw["snippet"]),
                        count=int(raw.get("count", 1)),
                        reason=str(raw.get("reason", "")),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"baseline {path} has a malformed entry: {raw!r}"
                ) from exc
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reason: str = "accepted at baseline creation"
    ) -> "Baseline":
        counts: dict[tuple[str, str, str], int] = {}
        for f in findings:
            key = (f.rule, f.path, f.snippet)
            counts[key] = counts.get(key, 0) + 1
        return cls(
            entries=[
                BaselineEntry(
                    rule=rule, path=path, snippet=snippet, count=n, reason=reason
                )
                for (rule, path, snippet), n in sorted(counts.items())
            ]
        )

    # ------------------------------------------------------------------ apply
    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined), preserving sort order."""
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + entry.count
        new: list[Finding] = []
        accepted: list[Finding] = []
        for f in findings:
            key = (f.rule, f.path, f.snippet)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(f.with_baselined())
            else:
                new.append(f)
        return new, accepted

    # ------------------------------------------------------------------ export
    def to_payload(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "snippet": e.snippet,
                    "count": e.count,
                    "reason": e.reason,
                }
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Path) -> None:
        path.write_text(self.to_json(), encoding="utf-8")


def find_baseline(start: Path, explicit: str | None = None) -> Path | None:
    """Locate the baseline file.

    An explicit path wins (and must exist); otherwise walk up from
    ``start`` looking for ``lint-baseline.json`` — linting ``src/repro``
    from anywhere inside the repository finds the committed ledger.
    """
    if explicit is not None:
        path = Path(explicit)
        if not path.is_file():
            raise BaselineError(f"baseline file not found: {path}")
        return path
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in [cur, *cur.parents]:
        path = candidate / DEFAULT_BASELINE_NAME
        if path.is_file():
            return path
    return None
