"""Rule framework for the determinism & simulation-safety linter.

The reproduction's invariants — all randomness through ``repro.common.rng``,
simulated time from the ``repro.faas.events`` clock, byte-identical exports,
no mixed physical units — are enforced here as machine-checked AST rules
instead of conventions. A :class:`Rule` inspects one :class:`ModuleContext`
(a parsed source file plus its logical location in the package) and yields
:class:`Finding`\\ s with stable identifiers (``REP001`` ...), which the
``repro lint`` CLI renders as a table or a deterministic ``repro-lint/v1``
JSON document.

Suppression is per physical line::

    t0 = time.perf_counter()  # lint: ignore[REP002]

A bare ``# lint: ignore`` silences every rule on that line; a file whose
first five lines contain ``# lint: skip-file`` is skipped entirely.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.errors import AnalysisError

#: Severities, in decreasing order of concern. Both gate CI; the split only
#: communicates whether a finding breaks reproducibility outright ("error")
#: or merely risks it under maintenance ("warning").
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # stable rule id, e.g. "REP002"
    severity: str  # one of SEVERITIES
    path: str  # package-relative posix path, e.g. "repro/faas/events.py"
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    snippet: str = ""  # stripped source line, used for baseline matching
    baselined: bool = False

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def with_baselined(self) -> "Finding":
        return Finding(
            rule=self.rule, severity=self.severity, path=self.path,
            line=self.line, col=self.col, message=self.message,
            snippet=self.snippet, baselined=True,
        )


@dataclass(slots=True)
class ModuleContext:
    """One parsed source file plus its logical package location.

    ``parts`` is the dotted-module path split into components (for
    ``src/repro/faas/events.py`` that is ``("repro", "faas", "events")``),
    which is what path-scoped rules match against; fixture trees reproduce
    a scope simply by placing a file under a directory of the same name.
    """

    path: Path
    relpath: str
    parts: tuple[str, ...]
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)

    def in_package(self, *names: str) -> bool:
        """True when any directory component matches one of ``names``."""
        return any(p in names for p in self.parts[:-1])

    def endswith(self, suffix: str) -> bool:
        """Match the tail of the relative path, e.g. ``common/rng.py``."""
        return self.relpath.endswith(suffix)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line, ...)
        if rules is ...:
            return False
        return rules is None or finding.rule in rules  # type: ignore[union-attr]


class Rule:
    """Base class: one named analysis with a stable identifier.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to part of the package layout.
    """

    rule_id: str = "REP000"
    name: str = "unnamed"
    severity: str = "error"
    rationale: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = int(getattr(node, "lineno", 1))
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.relpath,
            line=lineno,
            col=int(getattr(node, "col_offset", 0)),
            message=message,
            snippet=ctx.line_at(lineno),
        )


def parse_suppressions(lines: list[str]) -> dict[int, set[str] | None]:
    """Per-line suppression directives (``None`` silences every rule)."""
    out: dict[int, set[str] | None] = {}
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[i] = None
        else:
            out[i] = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
    return out


def should_skip_file(lines: list[str]) -> bool:
    return any(_SKIP_FILE_RE.search(line) for line in lines[:5])


def build_context(path: Path, relpath: str) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    Raises :class:`AnalysisError` on unreadable files; syntax errors are the
    caller's concern (the walker turns them into ``REP000`` findings).
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    stem_parts = relpath[:-3] if relpath.endswith(".py") else relpath
    return ModuleContext(
        path=path,
        relpath=relpath,
        parts=tuple(stem_parts.split("/")),
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )


def run_rules(
    ctx: ModuleContext, rules: Iterable[Rule]
) -> tuple[list[Finding], int]:
    """Apply ``rules`` to one module; returns (kept findings, n suppressed)."""
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept, suppressed
