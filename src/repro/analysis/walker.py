"""File discovery and analysis orchestration.

``collect_files`` resolves CLI path arguments into a sorted, de-duplicated
list of Python files; ``analyze_paths`` parses each one and runs the rule
set over it. Discovery order is sorted by relative path so the resulting
finding list — and therefore the ``repro-lint/v1`` document — is
byte-identical across runs and filesystems (``os.scandir`` order is not).

Relative paths are anchored at each argument's parent directory, so
linting ``src/repro`` yields paths like ``repro/faas/events.py`` — stable
identifiers for baselines regardless of where the repository lives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import (
    Finding,
    Rule,
    build_context,
    run_rules,
    should_skip_file,
)
from repro.common.errors import AnalysisError

#: Directory names never descended into.
_PRUNE_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(slots=True)
class AnalysisResult:
    """Everything one lint pass learned."""

    findings: list[Finding]
    files_analyzed: int
    suppressed: int
    parse_errors: int = 0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))


@dataclass(frozen=True, slots=True)
class _SourceFile:
    path: Path
    relpath: str  # posix, anchored at the lint root's parent


def collect_files(paths: Sequence[Path | str]) -> list[_SourceFile]:
    """Expand path arguments into a sorted list of Python source files."""
    out: dict[str, _SourceFile] = {}
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise AnalysisError(f"no such file or directory: {root}")
        if root.is_file():
            rel = root.name
            out.setdefault(str(root.resolve()), _SourceFile(root, rel))
            continue
        anchor = root.resolve().parent
        for path in sorted(root.resolve().rglob("*.py")):
            if any(part in _PRUNE_DIRS for part in path.parts):
                continue
            rel = path.relative_to(anchor).as_posix()
            out.setdefault(str(path), _SourceFile(path, rel))
    return sorted(out.values(), key=lambda s: s.relpath)


@dataclass(slots=True)
class Analyzer:
    """Runs a rule set over a set of files."""

    rules: Sequence[Rule] = field(default_factory=list)

    def analyze_paths(self, paths: Sequence[Path | str]) -> AnalysisResult:
        findings: list[Finding] = []
        suppressed = 0
        parse_errors = 0
        files = collect_files(paths)
        for src in files:
            file_findings, n_suppressed, failed = self.analyze_file(src)
            findings.extend(file_findings)
            suppressed += n_suppressed
            parse_errors += int(failed)
        findings.sort(key=Finding.sort_key)
        return AnalysisResult(
            findings=findings,
            files_analyzed=len(files),
            suppressed=suppressed,
            parse_errors=parse_errors,
        )

    def analyze_file(self, src: _SourceFile) -> tuple[list[Finding], int, bool]:
        """(findings, suppressed count, parse failed) for one file."""
        try:
            ctx = build_context(src.path, src.relpath)
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        rule="REP000",
                        severity="error",
                        path=src.relpath,
                        line=int(exc.lineno or 1),
                        col=int(exc.offset or 0),
                        message=f"syntax error: {exc.msg}",
                    )
                ],
                0,
                True,
            )
        if should_skip_file(ctx.lines):
            return [], 0, False
        findings, n_suppressed = run_rules(ctx, self.rules)
        return findings, n_suppressed, False


def analyze_source(
    source: str,
    rules: Iterable[Rule],
    relpath: str = "module.py",
) -> list[Finding]:
    """Lint an in-memory source string (test and tooling hook).

    ``relpath`` positions the snippet in the package layout so path-scoped
    rules (``faas/``, ``common/rng.py`` ...) behave as they would on disk.
    """
    lines = source.splitlines()
    if should_skip_file(lines):
        return []
    from repro.analysis.core import ModuleContext, parse_suppressions

    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    ctx = ModuleContext(
        path=Path(relpath),
        relpath=relpath,
        parts=tuple(stem.split("/")),
        source=source,
        lines=lines,
        tree=ast.parse(source),
        suppressions=parse_suppressions(lines),
    )
    findings, _ = run_rules(ctx, list(rules))
    return findings
