"""Import-alias resolution shared by the AST rules.

Rules need to know what a call like ``_time.perf_counter()`` or
``nprand.shuffle(...)`` actually refers to. :class:`ImportMap` records the
module-level (and function-level) import statements of one file and
resolves attribute chains and bare names back to fully-qualified dotted
names — ``_time.perf_counter`` -> ``time.perf_counter``,
``shuffle`` -> ``random.shuffle`` after ``from random import shuffle``.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Alias table built from every import statement in a module."""

    def __init__(self, tree: ast.Module) -> None:
        #: local name -> dotted module path ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: local name -> dotted object path ("shuffle" -> "random.shuffle")
        self.objects: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.objects[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name for a Name/Attribute chain, if known.

        Unknown roots resolve to ``None`` — a local variable's attribute is
        not attributed to any module, keeping the rules low-noise.
        """
        chain: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        chain.reverse()
        root = cur.id
        if root in self.modules:
            return ".".join([self.modules[root], *chain])
        if root in self.objects:
            return ".".join([self.objects[root], *chain])
        if not chain:
            return root  # bare builtin or local name
        return None
