"""CE-scaling — QoS-aware, cost-efficient dynamic resource allocation for
serverless ML workflows (reproduction of Wu et al., IPDPS 2023).

The public API in one import::

    from repro import (
        Allocation, StorageKind, Objective, SHASpec,
        ParetoProfiler, GreedyHeuristicPlanner, AdaptiveScheduler,
        run_training, run_tuning, workload,
    )

Layer map (bottom-up):

* ``repro.faas`` — discrete-event serverless platform simulator.
* ``repro.storage`` — simulated S3/DynamoDB/ElastiCache/VM-PS services.
* ``repro.ml`` — datasets, model zoo, convergence curves, real SGD.
* ``repro.analytical`` — Eq. (2)-(5) time/cost models + Pareto profiler.
* ``repro.tuning`` — SHA engine and Algorithm 1 (greedy partitioning).
* ``repro.training`` — online/offline predictors and Algorithm 2.
* ``repro.baselines`` — LambdaML, Siren, Cirrus, Fixed.
* ``repro.workflow`` — one-call job runners.
* ``repro.experiments`` — one module per paper table/figure.
* ``repro.telemetry`` — metrics registry, live span tracing, run reports.
* ``repro.diagnostics`` — critical path, stragglers, drift, regret.
* ``repro.slo`` — online QoS/SLO guard: burn-rate accounting, alerts,
  structured event log.
* ``repro.faults`` — declarative fault injection plus the resilience
  layer: retries, checkpoint/restore, degraded replanning.
* ``repro.profiling`` — deterministic hot-path profiler: host-time
  frames, attributed counters, flamegraphs, capture diffing.
* ``repro.timeseries`` — simulated-time resource series: sampler,
  terminal dashboard, capture diffing, anomaly detection.
* ``repro.runs`` — provenance-stamped run bundles: content-addressed
  local registry plus the cross-run regression observatory.
"""

from repro.common.types import Allocation, JobResult, PricingPattern, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.diagnostics import DiagnosticsReport, RunObservation, diagnose
from repro.faults import FaultInjector, FaultLedger, FaultPlan
from repro.telemetry import (
    MetricsRegistry,
    RunReport,
    Tracer,
    set_registry,
    set_tracer,
)
from repro.analytical.profiler import ParetoProfiler, ProfileResult
from repro.ml.models import WORKLOADS, Workload, workload
from repro.profiling import Profiler, profile_phase, set_profiler
from repro.runs import (
    ProvenanceStamp,
    RunBundle,
    RunStore,
    compare_runs,
    save_run,
)
from repro.slo import SLOGuard, SLOSession, SLOSpec, evaluate_guard, replay_events
from repro.timeseries import (
    TimeSeriesSampler,
    TimeSeriesSession,
    detect_anomalies,
    set_sampler,
)
from repro.training.adaptive_scheduler import AdaptiveScheduler
from repro.training.offline_predictor import OfflinePredictor
from repro.training.online_predictor import OnlinePredictor
from repro.tuning.greedy_planner import GreedyHeuristicPlanner
from repro.tuning.plan import Objective
from repro.tuning.sha import SHASpec
from repro.workflow.runner import run_training, run_tuning

from repro._version import __version__

__all__ = [
    "AdaptiveScheduler",
    "Allocation",
    "DEFAULT_PLATFORM",
    "DiagnosticsReport",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "GreedyHeuristicPlanner",
    "JobResult",
    "MetricsRegistry",
    "Objective",
    "OfflinePredictor",
    "OnlinePredictor",
    "ParetoProfiler",
    "PlatformConfig",
    "PricingPattern",
    "ProfileResult",
    "Profiler",
    "ProvenanceStamp",
    "RunBundle",
    "RunObservation",
    "RunReport",
    "RunStore",
    "SHASpec",
    "SLOGuard",
    "SLOSession",
    "SLOSpec",
    "StorageKind",
    "TimeSeriesSampler",
    "TimeSeriesSession",
    "Tracer",
    "WORKLOADS",
    "Workload",
    "__version__",
    "compare_runs",
    "detect_anomalies",
    "diagnose",
    "evaluate_guard",
    "profile_phase",
    "replay_events",
    "run_training",
    "run_tuning",
    "save_run",
    "set_profiler",
    "set_registry",
    "set_sampler",
    "set_tracer",
    "workload",
]
