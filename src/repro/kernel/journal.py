"""The crash-consistent run journal (schema ``repro-journal/v1``).

An append-only JSONL write-ahead log of one run's epoch boundaries. The
first line is the *header* (the complete run configuration plus the
provenance stamp, everything ``repro resume`` needs to re-execute the
run); each subsequent line is one *epoch record* — the job/event clocks,
RNG stream cursors, event count and result digest at a consistent
boundary — and a final *commit* line marks normal completion.

Durability contract:

* every epoch record is flushed **and fsynced** before the executor
  moves past the boundary, so a host SIGKILL can lose at most the epoch
  in flight;
* on open, a torn tail (a partial last line from a crash mid-write, or
  a record whose embedded digest no longer matches its fields) is
  detected and truncated, leaving the longest consistent prefix;
* records are self-checking: ``digest`` is the sha256 of the record's
  canonical JSON (sorted keys, without the digest field itself).

Replay is deterministic re-execution: the simulation is a pure function
of (configuration, seed), so ``repro resume`` re-runs it from the start
and *validates* each produced epoch against the journaled record — any
divergence (changed code, changed config) fails loudly instead of
silently writing a different run under the old identity. Past the last
journaled boundary the journal switches back to append mode and the run
continues as if never interrupted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.common.errors import ReproError

JOURNAL_SCHEMA = "repro-journal/v1"

#: Epoch-record fields covered by the digest, in canonical order.
EPOCH_FIELDS = (
    "epoch", "attempt", "job_clock_s", "event_clock_s", "events_processed",
    "noise_draws", "fault_records", "loss", "cost_usd", "allocation",
)


class JournalError(ReproError):
    """A journal could not be opened, parsed, or replayed consistently."""


def epoch_record_digest(fields: dict) -> str:
    """Self-check digest of one epoch record's canonical JSON."""
    payload = {k: fields[k] for k in EPOCH_FIELDS}
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _parse_consistent_prefix(text: str) -> tuple[list[dict], bool]:
    """(valid records, tail_was_torn) from raw journal bytes.

    A line is part of the consistent prefix while it parses as JSON and —
    for epoch records — its digest verifies. The first failure truncates
    everything from that line on (fsync ordering guarantees nothing after
    a torn record survived the crash coherently).
    """
    records: list[dict] = []
    torn = False
    raw_lines = text.split("\n")
    # A journal that does not end with a newline has a partial last line.
    complete = raw_lines[:-1]
    if raw_lines[-1] != "":
        torn = True
    for line in complete:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            torn = True
            break
        if not isinstance(record, dict) or "kind" not in record:
            torn = True
            break
        if record["kind"] == "epoch":
            expected = record.get("digest")
            try:
                actual = epoch_record_digest(record)
            except KeyError:
                torn = True
                break
            if expected != actual:
                torn = True
                break
        records.append(record)
    return records, torn


class RunJournal:
    """One run's write-ahead log: create fresh, or reopen to resume.

    In *fresh* mode every :meth:`record_epoch` appends (and fsyncs) a new
    record. In *resume* mode the journaled prefix acts as an oracle: the
    first ``n`` epoch boundaries produced by the re-execution are
    validated against it (raising :class:`JournalError` on divergence)
    and only boundaries past the prefix are appended.
    """

    def __init__(self, path: str | Path, header: dict, records: list[dict],
                 committed: bool) -> None:
        self.path = Path(path)
        self.header = header
        self._expected = [r for r in records if r.get("kind") == "epoch"]
        self.committed = committed
        self._cursor = 0
        self._appended = 0
        self._fh = None

    # ------------------------------------------------------------------ open
    @classmethod
    def create(cls, path: str | Path, run: dict, meta: dict | None = None) -> "RunJournal":
        """Start a fresh journal: write + fsync the header line."""
        header = {
            "schema": JOURNAL_SCHEMA,
            "kind": "header",
            "run": run,
            "meta": meta or {},
        }
        journal = cls(path, header, [], committed=False)
        journal._fh = open(path, "w", encoding="utf-8")
        journal._append(header)
        return journal

    @classmethod
    def open_resume(cls, path: str | Path) -> "RunJournal":
        """Reopen an interrupted journal, truncating any torn tail."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        records, torn = _parse_consistent_prefix(text)
        if not records:
            raise JournalError(f"journal {path} has no consistent header line")
        header = records[0]
        if header.get("kind") != "header" or header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {path} does not start with a {JOURNAL_SCHEMA} header"
            )
        body = records[1:]
        committed = any(r.get("kind") == "commit" for r in body)
        if torn:
            # Rewrite the consistent prefix: the torn bytes are gone for
            # good, and the file ends at a clean epoch boundary again.
            with open(path, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        journal = cls(path, header, body, committed=committed)
        journal._fh = open(path, "a", encoding="utf-8")
        return journal

    # ------------------------------------------------------------------ state
    @property
    def n_epochs_journaled(self) -> int:
        """Epoch boundaries durably on disk: the loaded prefix plus any
        records appended since open."""
        return len(self._expected) + self._appended

    @property
    def replay_remaining(self) -> int:
        """Epoch boundaries still to be validated before appending resumes."""
        return max(0, len(self._expected) - self._cursor)

    # ------------------------------------------------------------------ write
    def _append(self, record: dict) -> None:
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_epoch(self, **fields) -> None:
        """Journal one epoch boundary (or validate it during replay)."""
        missing = [k for k in EPOCH_FIELDS if k not in fields]
        if missing:
            raise JournalError(f"epoch record lacks fields {missing}")
        record = {"kind": "epoch", **{k: fields[k] for k in EPOCH_FIELDS}}
        record["digest"] = epoch_record_digest(record)
        if self._cursor < len(self._expected):
            expected = self._expected[self._cursor]
            self._cursor += 1
            if expected != record:
                diverged = [
                    k for k in EPOCH_FIELDS if expected.get(k) != record.get(k)
                ]
                raise JournalError(
                    f"replay diverged from journal {self.path} at epoch "
                    f"{fields['epoch']} (fields {diverged}); the code or "
                    "configuration no longer reproduces the journaled run"
                )
            return
        self._append(record)
        self._appended += 1

    def commit(self, summary: dict | None = None) -> None:
        """Mark normal completion; a committed journal needs no resume."""
        if self.committed:
            return
        self._append({"kind": "commit", "summary": summary or {}})
        self.committed = True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
