"""The unified discrete-event kernel: one clock, one heap, one journal.

Every simulated subsystem — platform epoch execution, storage sync
rounds, scheduler reallocation points, SLO burn-rate evaluation, fault
injection — runs on one :class:`EventKernel`. The kernel owns both
timelines of a run:

* the **event clock** (``now``): simulated resource time advanced by the
  binary-heap event loop, with deterministic ``(time, priority, seq)``
  tie-breaks;
* the **job clock** (``job_clock_s``): the job-time ledger (JCT) that
  additionally accumulates zero-event-time scheduling work — planner
  searches, checkpoint restores, visible restart overhead — via
  :meth:`EventKernel.credit_job_time`.

Crash consistency rides on top: :class:`~repro.kernel.journal.RunJournal`
is the append-only ``repro-journal/v1`` write-ahead log (fsync at epoch
boundaries, torn-tail truncation on open) and the ``repro resume`` CLI
replays it so an interrupted run continues to a bundle byte-identical
to an uninterrupted one.
"""

from repro.kernel.core import (
    Acquire,
    EventKernel,
    Join,
    Priority,
    Process,
    Release,
    Resource,
    Task,
)
from repro.kernel.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    RunJournal,
    epoch_record_digest,
)

__all__ = [
    "Acquire",
    "EventKernel",
    "JOURNAL_SCHEMA",
    "Join",
    "JournalError",
    "Priority",
    "Process",
    "Release",
    "Resource",
    "RunJournal",
    "Task",
    "epoch_record_digest",
]
