"""The discrete-event kernel: generator processes on one binary heap.

Processes are Python generators that yield *effects*:

* a ``float`` — sleep for that many simulated seconds;
* ``Acquire(resource, amount)`` — block until the resource grants capacity;
* ``Release(resource, amount)`` — return capacity (never blocks);
* ``Join(tasks)`` — block until every task (from ``EventKernel.spawn``) is
  done;
* another generator — run it as a sub-process and wait for its completion.

The kernel is deterministic: heap entries are ``(time, priority, seq)``
tuples, so events at equal timestamps fire first by priority class and
then in scheduling order (a monotonically increasing sequence number
breaks the final tie). Every scheduling call defaults to
:attr:`Priority.EXECUTION`, which keeps the dispatch order of plain
process code identical to a priority-free ``(time, seq)`` heap; the
other classes exist so cross-subsystem events landing on the same
timestamp resolve by design rather than by insertion accident.

Besides the event clock the kernel owns the run's *job clock*: the
JCT ledger that also accumulates scheduling work which costs job time
but no simulated resource time (planner searches, checkpoint restores,
visible restart overhead). Executors credit it via
:meth:`EventKernel.credit_job_time` instead of keeping private
high-water marks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable, Generator, Sequence

from repro.common.errors import SimulationError

Process = Generator[Any, Any, Any]


class Priority(IntEnum):
    """Dispatch order for events sharing one timestamp (lower fires first).

    ``FAULT`` precedes ``EXECUTION`` so an injected failure lands before
    the work it kills; ``STORAGE`` and ``SCHEDULER`` follow execution so
    sync completions and reallocation points observe a finished epoch;
    ``SLO`` evaluates last, once the timestamp's state is final.
    """

    FAULT = 0
    EXECUTION = 1
    STORAGE = 2
    SCHEDULER = 3
    SLO = 4


class Resource:
    """A counted resource with a FIFO wait queue (e.g. account concurrency)."""

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.available = capacity
        self.name = name
        self._waiters: list[tuple[int, "Task"]] = []
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name}, {self.available}/{self.capacity})"


@dataclass(frozen=True, slots=True)
class Acquire:
    """Effect: block until ``amount`` units of ``resource`` are available."""

    resource: Resource
    amount: int = 1


@dataclass(frozen=True, slots=True)
class Release:
    """Effect: return ``amount`` units to ``resource``."""

    resource: Resource
    amount: int = 1


class Task:
    """Handle for a spawned process; exposes completion state and result."""

    __slots__ = (
        "gen", "parent", "waiting_child", "done", "result", "_joiners",
        "_join_pending",
    )

    def __init__(self, gen: Process, parent: "Task | None" = None) -> None:
        self.gen = gen
        self.parent = parent
        self.waiting_child: Task | None = None
        self.done = False
        self.result: Any = None
        self._joiners: list[Task] = []
        self._join_pending: tuple[Task, ...] | None = None


@dataclass(frozen=True, slots=True)
class Join:
    """Effect: block until every task in ``tasks`` has completed."""

    tasks: tuple[Task, ...]

    @staticmethod
    def of(tasks: Sequence[Task]) -> "Join":
        return Join(tuple(tasks))


class EventKernel:
    """The event loop: schedules processes and advances virtual time."""

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, int, Callable[[], None]]] = []
        self.events_processed = 0
        # The job-time ledger: scheduling work that takes no simulated
        # resource time but real job time (JCT). Executors credit it in
        # the exact order the overheads occur, so it is bit-reproducible.
        self.job_clock_s = 0.0

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: Priority = Priority.EXECUTION,
    ) -> None:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(  # lint: ignore[REP014]
            self._heap, (self.now + delay, int(priority), self._seq, action)
        )

    def credit_job_time(self, dt_s: float) -> float:
        """Add ``dt_s`` seconds of scheduling work to the job clock.

        Returns the updated job clock. The credit order is the float
        accumulation order, so crediting the same overheads in the same
        sequence reproduces the job clock bit-exactly.
        """
        if dt_s < 0:
            raise SimulationError(f"cannot credit negative job time ({dt_s})")
        self.job_clock_s += dt_s
        return self.job_clock_s

    def spawn(self, gen: Process, priority: Priority = Priority.EXECUTION) -> Task:
        """Start a top-level process immediately; returns its handle."""
        task = Task(gen)
        self.schedule(0.0, lambda: self._step(task, None), priority)
        return task

    def _finish(self, task: Task, result: Any) -> None:
        task.done = True
        task.result = result
        parent = task.parent
        if parent is not None and parent.waiting_child is task:
            parent.waiting_child = None
            self.schedule(0.0, lambda: self._step(parent, result))
        for joiner in task._joiners:
            self.schedule(0.0, lambda j=joiner: self._maybe_resume_joiner(j))
        task._joiners.clear()

    def _maybe_resume_joiner(self, joiner: Task) -> None:
        pending = joiner._join_pending
        if pending is None:
            return
        if all(t.done for t in pending):
            joiner._join_pending = None
            self._step(joiner, [t.result for t in pending])

    def _step(self, task: Task, send_value: Any) -> None:
        try:
            effect = task.gen.send(send_value)
        except StopIteration as stop:
            self._finish(task, stop.value)
            return
        self._dispatch(task, effect)

    def _dispatch(self, task: Task, effect: Any) -> None:
        if isinstance(effect, (int, float)):
            self.schedule(float(effect), lambda: self._step(task, None))
        elif isinstance(effect, Acquire):
            self._acquire(task, effect.resource, effect.amount)
        elif isinstance(effect, Release):
            self._release(effect.resource, effect.amount)
            self.schedule(0.0, lambda: self._step(task, None))
        elif isinstance(effect, Join):
            if all(t.done for t in effect.tasks):
                self.schedule(
                    0.0, lambda: self._step(task, [t.result for t in effect.tasks])
                )
            else:
                task._join_pending = effect.tasks
                for t in effect.tasks:
                    if not t.done:
                        t._joiners.append(task)
        elif isinstance(effect, Generator):
            child = Task(effect, parent=task)
            task.waiting_child = child
            self.schedule(0.0, lambda: self._step(child, None))
        else:
            raise SimulationError(f"process yielded unsupported effect {effect!r}")

    def _acquire(self, task: Task, resource: Resource, amount: int) -> None:
        if amount > resource.capacity:
            raise SimulationError(
                f"acquire({amount}) exceeds capacity {resource.capacity} "
                f"of {resource.name}"
            )
        if resource.available >= amount and not resource._waiters:
            resource.available -= amount
            resource.peak_in_use = max(resource.peak_in_use, resource.in_use)
            self.schedule(0.0, lambda: self._step(task, None))
        else:
            resource._waiters.append((amount, task))

    def _release(self, resource: Resource, amount: int) -> None:
        resource.available = min(resource.capacity, resource.available + amount)
        while resource._waiters and resource._waiters[0][0] <= resource.available:
            amt, waiter = resource._waiters.pop(0)
            resource.available -= amt
            resource.peak_in_use = max(resource.peak_in_use, resource.in_use)
            self.schedule(0.0, lambda w=waiter: self._step(w, None))

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Drain the event heap; returns the final simulated time."""
        while self._heap:
            t, _, _, action = self._heap[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._heap)  # lint: ignore[REP014]
            self.now = t
            self.events_processed += 1
            if self.events_processed > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a livelock")
            action()
        if until is not None and self.now < until and not self._heap:
            self.now = until
        return self.now
