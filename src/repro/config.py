"""Global platform configuration: pricing tables and platform limits.

All monetary constants are public AWS us-east-1 prices contemporaneous with
the paper (2022/2023). Absolute dollar values only anchor the *ratios*
between allocations — which is what every scheduling decision in CE-scaling
consumes — so small price drift does not affect the reproduced behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import PricingPattern, StorageKind


@dataclass(frozen=True, slots=True)
class LambdaPricing:
    """AWS Lambda billing model.

    Attributes:
        usd_per_gb_second: compute price per GB-second (x86, us-east-1).
        usd_per_invocation: request price ($0.20 per million).
        billing_granularity_s: duration is rounded up to this granularity.
    """

    usd_per_gb_second: float = 0.0000166667
    usd_per_invocation: float = 0.20 / 1e6
    billing_granularity_s: float = 0.001


@dataclass(frozen=True, slots=True)
class LambdaLimits:
    """AWS Lambda platform limits (paper §III-B.3)."""

    min_memory_mb: int = 128
    max_memory_mb: int = 10240
    max_concurrency: int = 3000
    # Memory level at which a function owns one full vCPU; CPU share scales
    # linearly with memory (AWS-documented behaviour).
    full_vcpu_memory_mb: int = 1769
    # Cold-start latency for a Python ML runtime (seconds): "second-level
    # cold start overhead of functions" (paper §IV-G).
    cold_start_s: float = 2.0
    # Per-function S3 download bandwidth used for the initial dataset load
    # (B_S3 in Eq. 2), MB/s.
    dataset_load_bandwidth_mb_s: float = 85.0


@dataclass(frozen=True, slots=True)
class StorageServiceConfig:
    """Performance/price profile of one external storage service (Table I).

    Attributes:
        kind: which service this is.
        latency_s: per-request latency l_s in Eq. (3).
        bandwidth_mb_s: per-transfer bandwidth b_s in Eq. (3).
        pricing: request-charged or runtime-charged (Eq. 5).
        usd_per_request: price per data request (request-charged services).
        usd_per_request_per_mb: size-dependent request price component
            (DynamoDB bills per 1KB/4KB unit, so large items cost more).
        usd_per_minute: provisioned price per minute (runtime-charged).
        object_limit_mb: maximum object size; ``inf`` when unlimited.
        elastic: True if the service scales automatically (Table I).
    """

    kind: StorageKind
    latency_s: float
    bandwidth_mb_s: float
    pricing: PricingPattern
    usd_per_request: float = 0.0
    usd_per_request_per_mb: float = 0.0
    usd_per_minute: float = 0.0
    object_limit_mb: float = float("inf")
    elastic: bool = True

    def request_price_usd(self, object_mb: float) -> float:
        """Price of one request moving an object of ``object_mb`` MB."""
        return self.usd_per_request + self.usd_per_request_per_mb * object_mb


def default_storage_catalog() -> dict[StorageKind, StorageServiceConfig]:
    """The four services of paper Table I with calibrated profiles.

    * S3 — elastic, high latency (~25 ms), request-priced (blended GET/PUT).
    * DynamoDB — elastic, medium latency (~8 ms), request-priced with a
      size-dependent component (1KB write units / 4KB read units), items
      capped at 400 KB (hence "N/A" for MobileNet+ in Table II / Fig. 18).
    * ElastiCache — manually provisioned Redis node, low latency (~1 ms),
      charged per provisioned minute (cache.r5.large).
    * VM-PS — EC2-based parameter server (c5.2xlarge), low latency, charged
      per provisioned minute; the only service that aggregates gradients
      locally (Eq. 3's (2n-2) pattern).
    """
    # Bandwidths are *effective aggregate* values: Eq. (3) treats the
    # (3n-2)/(2n-2) transfers as sequential, so b_s and l_s here are the
    # fitted per-transfer constants that absorb the real systems' request
    # overlap — exactly how the paper's analytical model is calibrated.
    return {
        StorageKind.S3: StorageServiceConfig(
            kind=StorageKind.S3,
            latency_s=0.012,
            bandwidth_mb_s=400.0,
            pricing=PricingPattern.REQUEST,
            # Blend of PUT ($5/M) and GET ($0.4/M) at the ~1:8 put:get ratio
            # of the (10n+2)-requests-per-round accounting.
            usd_per_request=0.9e-6,
            elastic=True,
        ),
        StorageKind.DYNAMODB: StorageServiceConfig(
            kind=StorageKind.DYNAMODB,
            latency_s=0.005,
            bandwidth_mb_s=150.0,
            pricing=PricingPattern.REQUEST,
            # Blend of write ($1.25/M WRU) and read ($0.25/M RRU) units...
            usd_per_request=0.36e-6,
            # ...plus the size-dependent component (1 WRU per KB written).
            usd_per_request_per_mb=1.25e-6 * 1024.0 * 0.2,
            object_limit_mb=400.0 / 1024.0,  # 400 KB item limit
            elastic=True,
        ),
        StorageKind.ELASTICACHE: StorageServiceConfig(
            kind=StorageKind.ELASTICACHE,
            latency_s=0.0008,
            bandwidth_mb_s=1200.0,
            pricing=PricingPattern.RUNTIME,
            usd_per_minute=1.82 / 60.0,  # cache.r5.4xlarge on-demand
            elastic=False,
        ),
        StorageKind.VMPS: StorageServiceConfig(
            kind=StorageKind.VMPS,
            latency_s=0.0005,
            bandwidth_mb_s=1250.0,  # 10 Gb/s NIC
            pricing=PricingPattern.RUNTIME,
            usd_per_minute=0.68 / 60.0,  # c5.4xlarge on-demand
            elastic=False,
        ),
    }


@dataclass(frozen=True)
class PlatformConfig:
    """Aggregate configuration consumed by the analytical models and simulator."""

    pricing: LambdaPricing = field(default_factory=LambdaPricing)
    limits: LambdaLimits = field(default_factory=LambdaLimits)
    storage: dict[StorageKind, StorageServiceConfig] = field(
        default_factory=default_storage_catalog
    )
    # Multiplicative lognormal noise applied by the simulator to compute and
    # network phases (σ of log). Calibrated so the analytical model's error
    # against the simulator lands in the paper's 0.2-7.6% validation band
    # (Fig. 19/20).
    compute_noise_sigma: float = 0.02
    network_noise_sigma: float = 0.06
    # Lognormal σ of the cold-start jitter (heavier-tailed than compute);
    # chaos profiles widen it to stress the retry/timeout paths.
    cold_start_noise_sigma: float = 0.25

    def storage_config(self, kind: StorageKind) -> StorageServiceConfig:
        """Profile for one storage service."""
        return self.storage[kind]

    def vcpu_share(self, memory_mb: int) -> float:
        """CPU share granted to a function with ``memory_mb`` MB of memory."""
        return min(memory_mb, self.limits.max_memory_mb) / self.limits.full_vcpu_memory_mb


DEFAULT_PLATFORM = PlatformConfig()
