"""Live telemetry: metrics registry, span tracing, exporters, run reports.

The process-global defaults are no-ops (:class:`NullRegistry`,
:class:`NullTracer`), so instrumented hot paths cost ~nothing until a
caller installs real collectors::

    from repro.telemetry import MetricsRegistry, Tracer, set_registry, set_tracer

    registry, tracer = MetricsRegistry(), Tracer()
    set_registry(registry)
    set_tracer(tracer)
    ...  # run jobs; platform/scheduler/planner/storage record as they go
    print(to_prometheus_text(registry.snapshot()))

or, scoped, via :class:`repro.telemetry.session.TelemetrySession` (what the
CLI's ``--telemetry`` / ``--trace`` flags use). Instrumentation components
capture the globals at *construction* time, so install collectors before
building platforms/schedulers (``run_training`` et al. construct everything
per call, which makes this automatic).

Telemetry is strictly observational: it never consumes randomness and never
branches simulation logic, so results are bit-identical with collectors
installed or not.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSnapshot,
    MetricsRegistry,
    NullRegistry,
    Sample,
    Timer,
)
from repro.telemetry.spans import NullTracer, Tracer
from repro.telemetry.exporters import (
    from_json_payload,
    to_json,
    to_prometheus_text,
)
from repro.telemetry.report import RunReport

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()
_registry = _NULL_REGISTRY
_tracer = _NULL_TRACER


def get_registry():
    """The process-global metrics registry (a no-op unless installed)."""
    return _registry


def set_registry(registry) -> None:
    """Install (or, with ``None``, uninstall) the global metrics registry."""
    global _registry
    _registry = registry if registry is not None else _NULL_REGISTRY


def get_tracer():
    """The process-global span tracer (a no-op unless installed)."""
    return _tracer


def set_tracer(tracer) -> None:
    """Install (or, with ``None``, uninstall) the global span tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER


def telemetry_enabled() -> bool:
    """True when a real registry or tracer is installed."""
    return _registry.enabled or _tracer.enabled


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "RunReport",
    "Sample",
    "Timer",
    "Tracer",
    "from_json_payload",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "telemetry_enabled",
    "to_json",
    "to_prometheus_text",
]
