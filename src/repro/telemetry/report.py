"""RunReport — aggregate a telemetry capture into the paper's breakdowns.

Answers the questions the paper's figures ask of a run: where did the time
go (cold starts vs communication vs scheduling — Fig. 8/12/21) and where
did the money go (invocation fees vs GB-seconds vs storage — Fig. 13 /
Table II). Built either live from a :class:`MetricsRegistry` or from a
saved JSON capture (the ``repro report`` subcommand).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.telemetry.exporters import payload_to_snapshots
from repro.telemetry.metrics import MetricSnapshot

JSON_SCHEMA = "repro-report/v2"


def _scalar(snapshots: dict[str, MetricSnapshot], name: str) -> float:
    """Sum of a counter/gauge family's sample values (0.0 when absent)."""
    snap = snapshots.get(name)
    if snap is None:
        return 0.0
    return sum(s.value for s in snap.samples)


def _labeled(snapshots: dict[str, MetricSnapshot], name: str) -> dict[str, float]:
    """Per-child values of a single-label family, keyed by label value."""
    snap = snapshots.get(name)
    if snap is None:
        return {}
    out: dict[str, float] = {}
    for s in snap.samples:
        key = "/".join(s.labels[n] for n in snap.labelnames) or "(all)"
        out[key] = out.get(key, 0.0) + s.value
    return out


def _histogram_sum(snapshots: dict[str, MetricSnapshot], name: str) -> float:
    snap = snapshots.get(name)
    if snap is None:
        return 0.0
    return sum(s.sum for s in snap.samples)


@dataclass(frozen=True, slots=True)
class BreakdownRow:
    """One line of a report section: a quantity and its share of the total."""

    label: str
    value: float
    share: float | None  # fraction of the section total, None when undefined
    unit: str


@dataclass
class RunReport:
    """Time/cost/activity breakdowns for one captured run."""

    meta: dict = field(default_factory=dict)
    run: dict = field(default_factory=dict)
    time_rows: list[BreakdownRow] = field(default_factory=list)
    cost_rows: list[BreakdownRow] = field(default_factory=list)
    activity_rows: list[BreakdownRow] = field(default_factory=list)
    peaks_rows: list[BreakdownRow] = field(default_factory=list)

    # ------------------------------------------------------------------ builders
    @classmethod
    def from_snapshots(
        cls,
        snapshots: list[MetricSnapshot],
        run: dict | None = None,
        meta: dict | None = None,
    ) -> "RunReport":
        run = dict(run or {})
        meta = dict(meta or {})
        by_name = {s.name: s for s in snapshots}

        jct = float(run.get("jct_s", 0.0))
        cold_s = _scalar(by_name, "repro_faas_cold_start_seconds_total")
        queue_s = _histogram_sum(by_name, "repro_faas_queue_wait_seconds")
        comm_s = float(run.get("comm_overhead_s", 0.0))
        sched_s = float(run.get("scheduling_overhead_s", 0.0))
        hidden_s = _scalar(by_name, "repro_scheduler_restart_hidden_seconds_total")

        def pct(x: float) -> float | None:
            return x / jct if jct > 0 else None

        time_rows = [
            BreakdownRow("total JCT", jct, None, "s"),
            BreakdownRow("cold starts", cold_s, pct(cold_s), "s"),
            BreakdownRow("gang queue wait", queue_s, pct(queue_s), "s"),
            BreakdownRow("communication (sync)", comm_s, pct(comm_s), "s"),
            BreakdownRow("scheduling overhead", sched_s, pct(sched_s), "s"),
            BreakdownRow("restart overhead hidden", hidden_s, None, "s"),
        ]

        billed = _labeled(by_name, "repro_faas_billed_usd_total")
        total_cost = float(run.get("cost_usd", sum(billed.values())))

        def cpct(x: float) -> float | None:
            return x / total_cost if total_cost > 0 else None

        # Cost components come from the observed labels of the billing
        # counter, so a capture from a build with extra components (e.g. a
        # future egress charge) reports them instead of dropping them. The
        # canonical Eq. (4) components always appear, even at zero, to keep
        # reports comparable across runs.
        canonical = ("invocation", "compute", "storage")
        components = list(canonical) + sorted(set(billed) - set(canonical))
        cost_rows = [BreakdownRow("total cost", total_cost, None, "USD")]
        for component in components:
            usd = billed.get(component, 0.0)
            cost_rows.append(
                BreakdownRow(f"{component} cost", usd, cpct(usd), "USD")
            )

        activity_rows = [
            BreakdownRow(
                "invocations",
                _scalar(by_name, "repro_faas_invocations_total"), None, "",
            ),
            BreakdownRow(
                "cold starts",
                _scalar(by_name, "repro_faas_cold_starts_total"), None, "",
            ),
            BreakdownRow(
                "warm-pool hits",
                _scalar(by_name, "repro_faas_warm_pool_hits_total"), None, "",
            ),
            BreakdownRow(
                "warm-pool evictions",
                _scalar(by_name, "repro_faas_warm_pool_evictions_total"), None, "",
            ),
            BreakdownRow(
                "billed GB-seconds",
                _scalar(by_name, "repro_faas_billed_gb_seconds_total"), None, "",
            ),
            BreakdownRow(
                "storage requests",
                _scalar(by_name, "repro_storage_requests_total"), None, "",
            ),
            BreakdownRow(
                "scheduler reallocations",
                _scalar(by_name, "repro_scheduler_reallocations_total"), None, "",
            ),
            BreakdownRow(
                "planner candidates evaluated",
                _scalar(by_name, "repro_planner_candidates_evaluated_total"),
                None, "",
            ),
        ]
        # Trajectory high-water marks (schema v2). Primary source is the
        # run summary's "peaks" block, written when a time-series sampler
        # was live; the concurrency peak falls back to the platform's
        # occupancy-peak gauge so sampler-off captures still report it.
        peaks = run.get("peaks") or {}
        peak_conc = float(
            peaks.get("concurrency")
            or _scalar(by_name, "repro_faas_concurrency_peak_in_use")
        )
        peaks_rows = [
            BreakdownRow("peak concurrency in use", peak_conc, None, ""),
            BreakdownRow(
                "peak warm pool", float(peaks.get("warm_pool", 0.0)), None, ""
            ),
            BreakdownRow(
                "peak storage bandwidth",
                float(peaks.get("storage_bandwidth_mb_s", 0.0)), None, "MB/s",
            ),
        ]
        return cls(
            meta=meta, run=run, time_rows=time_rows,
            cost_rows=cost_rows, activity_rows=activity_rows,
            peaks_rows=peaks_rows,
        )

    @classmethod
    def from_registry(
        cls, registry, run: dict | None = None, meta: dict | None = None
    ) -> "RunReport":
        return cls.from_snapshots(registry.snapshot(), run=run, meta=meta)

    @classmethod
    def from_payload(cls, payload: dict) -> "RunReport":
        return cls.from_snapshots(
            payload_to_snapshots(payload.get("metrics", [])),
            run=payload.get("run", {}),
            meta=payload.get("meta", {}),
        )

    # ------------------------------------------------------------------ export
    def to_payload(self) -> dict:
        """The report as a versioned, JSON-serializable document."""

        def rows(items: list[BreakdownRow]) -> list[dict]:
            return [
                {
                    "label": r.label,
                    "value": r.value,
                    "share": r.share,
                    "unit": r.unit,
                }
                for r in items
            ]

        return {
            "schema": JSON_SCHEMA,
            "meta": dict(sorted(self.meta.items())),
            "run": dict(sorted(self.run.items())),
            "time": rows(self.time_rows),
            "cost": rows(self.cost_rows),
            "activity": rows(self.activity_rows),
            "peaks": rows(self.peaks_rows),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    # ------------------------------------------------------------------ rendering
    def render(self) -> str:
        lines: list[str] = []
        header = " ".join(
            f"{k}={self.meta[k]}"
            for k in ("command", "workload", "method", "seed")
            if k in self.meta
        )
        lines.append(f"run report{': ' + header if header else ''}")
        for title, rows in (
            ("time breakdown", self.time_rows),
            ("cost breakdown", self.cost_rows),
            ("activity", self.activity_rows),
            ("peaks", self.peaks_rows),
        ):
            if not rows:
                continue
            lines.append("")
            lines.append(title)
            width = max(len(r.label) for r in rows)
            for r in rows:
                share = f"  ({r.share * 100.0:5.1f}%)" if r.share is not None else ""
                if r.unit == "USD":
                    value = f"${r.value:.6f}"
                elif r.unit == "s":
                    value = f"{r.value:12.3f} s"
                elif r.unit:
                    value = f"{r.value:12.1f} {r.unit}"
                else:
                    value = f"{r.value:12.1f}"
                lines.append(f"  {r.label.ljust(width)}  {value}{share}")
        return "\n".join(lines)
