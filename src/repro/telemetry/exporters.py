"""Exporters: Prometheus text exposition and JSON.

The Chrome trace-event export lives on :class:`repro.faas.trace.TraceRecorder`
(reached through ``Tracer.to_chrome_trace``); this module covers the metric
side. ``to_prometheus_text`` follows the text exposition format 0.0.4
(HELP/TYPE comment lines, ``_bucket``/``_sum``/``_count`` histogram series
with cumulative ``le`` buckets); ``to_json`` / ``from_json_payload`` is the
lossless round-trip format the ``repro report`` subcommand reads.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.common.meta import coerce_meta
from repro.telemetry.metrics import MetricSnapshot, Sample

JSON_SCHEMA = "repro-telemetry/v1"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in merged.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _le_str(bound: float) -> str:
    return _format_value(bound) if bound != float("inf") else "+Inf"


def to_prometheus_text(snapshots: Iterable[MetricSnapshot]) -> str:
    """Render metric snapshots in the Prometheus text exposition format."""
    lines: list[str] = []
    for snap in snapshots:
        if snap.help:
            lines.append(f"# HELP {snap.name} {snap.help}")
        lines.append(f"# TYPE {snap.name} {snap.type}")
        for sample in snap.samples:
            if snap.type == "histogram":
                cumulative = 0
                for bound, n in zip(
                    list(snap.bucket_bounds) + [float("inf")], sample.buckets
                ):
                    cumulative += n
                    labels = _format_labels(sample.labels, {"le": _le_str(bound)})
                    lines.append(f"{snap.name}_bucket{labels} {cumulative}")
                labels = _format_labels(sample.labels)
                lines.append(f"{snap.name}_sum{labels} {_format_value(sample.sum)}")
                lines.append(f"{snap.name}_count{labels} {sample.count}")
            else:
                labels = _format_labels(sample.labels)
                lines.append(f"{snap.name}{labels} {_format_value(sample.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshots_to_payload(snapshots: Iterable[MetricSnapshot]) -> list[dict]:
    """JSON-ready structure for a list of metric snapshots."""
    out = []
    for snap in snapshots:
        entry: dict = {
            "name": snap.name,
            "type": snap.type,
            "help": snap.help,
            "labelnames": list(snap.labelnames),
            "samples": [],
        }
        if snap.type == "histogram":
            entry["bucket_bounds"] = list(snap.bucket_bounds)
        for sample in snap.samples:
            if snap.type == "histogram":
                entry["samples"].append(
                    {
                        "labels": dict(sample.labels),
                        "sum": sample.sum,
                        "count": sample.count,
                        "buckets": list(sample.buckets),
                    }
                )
            else:
                entry["samples"].append(
                    {"labels": dict(sample.labels), "value": sample.value}
                )
        out.append(entry)
    return out


def payload_to_snapshots(metrics: list[dict]) -> list[MetricSnapshot]:
    """Inverse of :func:`snapshots_to_payload`."""
    out = []
    for entry in metrics:
        samples = []
        for s in entry.get("samples", []):
            if entry["type"] == "histogram":
                samples.append(
                    Sample(
                        labels=dict(s["labels"]),
                        sum=float(s["sum"]),
                        count=int(s["count"]),
                        buckets=tuple(int(n) for n in s["buckets"]),
                    )
                )
            else:
                samples.append(
                    Sample(labels=dict(s["labels"]), value=float(s["value"]))
                )
        out.append(
            MetricSnapshot(
                name=entry["name"],
                type=entry["type"],
                help=entry.get("help", ""),
                labelnames=tuple(entry.get("labelnames", [])),
                bucket_bounds=tuple(entry.get("bucket_bounds", [])),
                samples=tuple(samples),
            )
        )
    return out


def to_json(
    snapshots: Iterable[MetricSnapshot],
    run: dict | None = None,
    meta: dict | None = None,
) -> str:
    """Serialize a telemetry capture: metrics plus the run summary."""
    payload = {
        "schema": JSON_SCHEMA,
        "meta": coerce_meta(meta),
        "run": dict(run or {}),
        "metrics": snapshots_to_payload(snapshots),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json_payload(text: str) -> dict:
    """Parse and validate a telemetry JSON document."""
    payload = json.loads(text)
    if payload.get("schema") != JSON_SCHEMA:
        raise ValueError(
            f"unsupported telemetry schema {payload.get('schema')!r}; "
            f"expected {JSON_SCHEMA!r}"
        )
    return payload
