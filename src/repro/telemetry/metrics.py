"""Label-aware metrics: Counter, Gauge, Histogram, Timer, and the registry.

The model follows the Prometheus client convention — a metric object is a
*family*; ``labels(**kv)`` binds one child per label-value combination — but
is deliberately tiny: values live in plain dicts, snapshots are immutable
dataclasses, and a :class:`NullRegistry` variant turns every operation into
a no-op so the hot simulation loop pays ~zero cost when telemetry is off.

Instrumentation never consumes randomness and never branches simulation
logic, so results are bit-identical with telemetry on or off (pinned by
``tests/telemetry/test_determinism.py``).
"""

from __future__ import annotations

import bisect
import time as _time
from dataclasses import dataclass, field

from repro.common.errors import ValidationError

DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)

LabelValues = tuple[str, ...]


def _label_key(labelnames: tuple[str, ...], kv: dict[str, str]) -> LabelValues:
    if set(kv) != set(labelnames):
        raise ValidationError(
            f"labels {sorted(kv)} do not match declared {sorted(labelnames)}"
        )
    return tuple(str(kv[name]) for name in labelnames)


# --------------------------------------------------------------------------- samples
@dataclass(frozen=True, slots=True)
class Sample:
    """One child's exported state: scalar value or histogram triple."""

    labels: dict[str, str]
    value: float = 0.0
    sum: float = 0.0
    count: int = 0
    buckets: tuple[int, ...] = ()  # per-bucket (non-cumulative) counts


@dataclass(frozen=True, slots=True)
class MetricSnapshot:
    """Immutable export view of one metric family."""

    name: str
    type: str  # "counter" | "gauge" | "histogram"
    help: str
    labelnames: tuple[str, ...]
    bucket_bounds: tuple[float, ...] = ()
    samples: tuple[Sample, ...] = ()


# --------------------------------------------------------------------------- metrics
class _Metric:
    """Common family behaviour: label binding and child storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[LabelValues, object] = {}

    def labels(self, **kv: str) -> "_Metric":
        """The child bound to one label-value combination."""
        key = _label_key(self.labelnames, kv)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child  # type: ignore[return-value]

    def _make_child(self):
        raise NotImplementedError

    def _default_child(self):
        """The unlabeled child (for metrics declared without labelnames)."""
        if self.labelnames:
            raise ValidationError(
                f"metric {self.name} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def snapshot(self) -> MetricSnapshot:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (events, seconds, dollars)."""

    kind = "counter"

    class _Child:
        __slots__ = ("value",)

        def __init__(self) -> None:
            self.value = 0.0

        def inc(self, amount: float = 1.0) -> None:
            if amount < 0:
                raise ValidationError(f"counter increment must be >= 0, got {amount}")
            self.value += amount

    def _make_child(self) -> "_Child":
        return Counter._Child()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        """Unlabeled value (0.0 before the first increment)."""
        if not self._children and not self.labelnames:
            return 0.0
        return self._default_child().value

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(
            name=self.name, type=self.kind, help=self.help,
            labelnames=self.labelnames,
            samples=tuple(
                Sample(labels=dict(zip(self.labelnames, key)), value=child.value)
                for key, child in sorted(self._children.items())
            ),
        )


class Gauge(_Metric):
    """A value that can go up and down (occupancy, latest prediction)."""

    kind = "gauge"

    class _Child:
        __slots__ = ("value",)

        def __init__(self) -> None:
            self.value = 0.0

        def set(self, value: float) -> None:
            self.value = float(value)

        def inc(self, amount: float = 1.0) -> None:
            self.value += amount

        def dec(self, amount: float = 1.0) -> None:
            self.value -= amount

    def _make_child(self) -> "_Child":
        return Gauge._Child()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        if not self._children and not self.labelnames:
            return 0.0
        return self._default_child().value

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(
            name=self.name, type=self.kind, help=self.help,
            labelnames=self.labelnames,
            samples=tuple(
                Sample(labels=dict(zip(self.labelnames, key)), value=child.value)
                for key, child in sorted(self._children.items())
            ),
        )


class Histogram(_Metric):
    """Distribution over fixed buckets (latencies, queue waits, drifts)."""

    kind = "histogram"

    class _Child:
        __slots__ = ("bounds", "counts", "sum", "count")

        def __init__(self, bounds: tuple[float, ...]) -> None:
            self.bounds = bounds
            self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
            self.sum = 0.0
            self.count = 0

        def observe(self, value: float) -> None:
            self.counts[bisect.bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValidationError(f"buckets must be strictly increasing: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> "_Child":
        return Histogram._Child(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(
            name=self.name, type=self.kind, help=self.help,
            labelnames=self.labelnames, bucket_bounds=self.buckets,
            samples=tuple(
                Sample(
                    labels=dict(zip(self.labelnames, key)),
                    sum=child.sum, count=child.count,
                    buckets=tuple(child.counts),
                )
                for key, child in sorted(self._children.items())
            ),
        )


class Timer:
    """Times a block of *host* code into a histogram (planner wall time).

    Simulated durations should be observed directly via
    ``histogram.observe(sim_seconds)``; the timer is for measuring the
    reproduction's own compute, which never feeds back into simulation
    state.
    """

    def __init__(self, histogram) -> None:
        self._histogram = histogram
        self._start: float | None = None
        self.last_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.last_s = _time.perf_counter() - (self._start or 0.0)
        self._histogram.observe(self.last_s)


# --------------------------------------------------------------------------- registry
@dataclass
class MetricsRegistry:
    """Creates and owns metric families; the unit of export.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same family, so independent components
    can share a metric without coordination.
    """

    namespace: str = ""
    _metrics: dict[str, _Metric] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return True

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kw) -> _Metric:
        full = f"{self.namespace}_{name}" if self.namespace else name
        existing = self._metrics.get(full)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValidationError(
                    f"metric {full} already registered as {existing.kind}"
                )
            return existing
        metric = cls(full, help, tuple(labelnames), **kw)
        self._metrics[full] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def snapshot(self) -> list[MetricSnapshot]:
        """Stable-ordered export view of every registered family."""
        return [self._metrics[k].snapshot() for k in sorted(self._metrics)]

    def get(self, name: str) -> _Metric | None:
        """Look up a family by full name (None when absent)."""
        return self._metrics.get(name)


class _NullInstrument:
    """One object that satisfies every instrument interface by doing nothing."""

    __slots__ = ()

    value = 0.0

    def labels(self, **kv):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL = _NullInstrument()


class NullRegistry:
    """The default process-global registry: every operation is a no-op."""

    namespace = ""

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL

    def gauge(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return _NULL

    def snapshot(self) -> list[MetricSnapshot]:
        return []

    def get(self, name: str) -> None:
        return None
