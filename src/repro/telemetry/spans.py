"""Live span tracing: feed the TraceRecorder *during* simulation.

``repro.faas.trace.trace_epochs`` reconstructs a timeline from
``EpochRecord``s after a run; the :class:`Tracer` instead lets the platform
and executors emit spans as they happen, so the trace shows what the
post-hoc reconstruction cannot — gang queue waits, cold-start windows, the
delayed-restart overlap hidden under a running epoch.

Timebase: spans are recorded in the platform simulator's clock plus a
cumulative *offset*. Scheduling work (prediction refits, planner searches,
visible restart overhead) takes zero simulator time but real job time; the
executor advances the offset by those amounts so the live trace lines up
with the job's JCT, exactly like the post-hoc reconstruction.
"""

from __future__ import annotations


class Tracer:
    """Collects live spans onto a :class:`repro.faas.trace.TraceRecorder`."""

    def __init__(self, recorder=None) -> None:
        # Imported lazily: faas modules import telemetry at module level,
        # so a module-level import here would be mutually recursive.
        from repro.faas.trace import TraceRecorder

        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.offset_s = 0.0

    @property
    def enabled(self) -> bool:
        return True

    def span(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: str,
        **args,
    ) -> None:
        """Record one completed span at ``start_s`` (simulator clock)."""
        self.recorder.record(
            name, category, start_s + self.offset_s, duration_s, track, **args
        )

    def instant(self, name: str, category: str, t_s: float, track: str, **args) -> None:
        """Record one zero-duration marker at ``t_s``.

        Unlike :meth:`span`, ``t_s`` is *absolute job time* and the offset
        is not added — instant sources (the SLO guard) already work in the
        job-time coordinate the offset exists to reconstruct.
        """
        self.recorder.instant(name, category, t_s, track, **args)

    def advance(self, dt_s: float) -> None:
        """Shift subsequent spans right by ``dt_s`` job-time seconds."""
        self.offset_s += dt_s

    def now(self, sim_now_s: float) -> float:
        """Job-time coordinate of the simulator clock value ``sim_now_s``."""
        return sim_now_s + self.offset_s

    def to_chrome_trace(self) -> str:
        return self.recorder.to_chrome_trace()


class NullTracer:
    """The default tracer: drops everything."""

    offset_s = 0.0
    # The empty Chrome trace is a constant; build it once per process
    # instead of allocating a TraceRecorder on every call.
    _empty_trace: str | None = None

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name, category, start_s, duration_s, track, **args) -> None:
        pass

    def instant(self, name, category, t_s, track, **args) -> None:
        pass

    def advance(self, dt_s: float) -> None:
        pass

    def now(self, sim_now_s: float) -> float:
        return sim_now_s

    def to_chrome_trace(self) -> str:
        if NullTracer._empty_trace is None:
            from repro.faas.trace import TraceRecorder

            NullTracer._empty_trace = TraceRecorder().to_chrome_trace()
        return NullTracer._empty_trace
