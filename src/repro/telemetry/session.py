"""Scoped telemetry capture: install collectors, run, export, restore.

The CLI's ``--telemetry PATH`` / ``--trace PATH`` flags wrap each command
in a :class:`TelemetrySession`; libraries embedding the reproduction can do
the same around any block of work::

    with TelemetrySession(metrics_path="out.json", trace_path="out.trace.json",
                          meta={"command": "train"}) as session:
        run = run_training("lr-higgs", budget_usd=2.0)
        session.set_run_summary({"jct_s": run.result.jct_s, ...})

On exit the session writes the JSON telemetry document (metrics + run
summary, readable by ``repro report``) and the Chrome trace, then restores
whatever collectors were installed before — sessions nest safely.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.meta import coerce_meta
from repro.telemetry import get_registry, get_tracer, set_registry, set_tracer
from repro.telemetry.exporters import to_json
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


class TelemetrySession:
    """Context manager that captures metrics and/or spans to files.

    Either path may be ``None``; with both ``None`` and
    ``force_install=False`` the session installs nothing and writes
    nothing (so callers never need to branch). ``force_install=True``
    installs both collectors without writing files — the ``--save-run``
    bundler reads :meth:`metrics_json` and the tracer after exit. ``meta``
    accepts a plain dict or anything with a ``to_meta()`` method (a
    :class:`~repro.runs.provenance.ProvenanceStamp`).
    """

    def __init__(
        self,
        metrics_path: str | Path | None = None,
        trace_path: str | Path | None = None,
        meta: dict | None = None,
        force_install: bool = False,
    ) -> None:
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.trace_path = Path(trace_path) if trace_path else None
        self.meta = coerce_meta(meta)
        self.force_install = force_install
        self.registry: MetricsRegistry | None = None
        self.tracer: Tracer | None = None
        self._run_summary: dict = {}
        self._prev_registry = None
        self._prev_tracer = None

    @property
    def active(self) -> bool:
        return (
            self.metrics_path is not None
            or self.trace_path is not None
            or self.force_install
        )

    @property
    def run_summary(self) -> dict:
        """The headline numbers attached via :meth:`set_run_summary`."""
        return dict(self._run_summary)

    def set_run_summary(self, summary: dict) -> None:
        """Attach the run's headline numbers to the JSON document."""
        self._run_summary = dict(summary)

    def metrics_json(self) -> str:
        """The ``repro-telemetry/v1`` document for this session's registry."""
        if self.registry is None:
            raise RuntimeError("session never installed a registry")
        return to_json(
            self.registry.snapshot(),
            run=self._run_summary,
            meta=self.meta,
        )

    def __enter__(self) -> "TelemetrySession":
        if self.metrics_path is not None or self.force_install:
            self._prev_registry = get_registry()
            self.registry = MetricsRegistry()
            set_registry(self.registry)
        if self.trace_path is not None or self.force_install:
            self._prev_tracer = get_tracer()
            self.tracer = Tracer()
            set_tracer(self.tracer)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.registry is not None:
            set_registry(self._prev_registry)
        if self.tracer is not None:
            set_tracer(self._prev_tracer)
        if exc_type is not None:
            return  # don't write partial captures over a crash
        if self.registry is not None and self.metrics_path is not None:
            self.metrics_path.write_text(self.metrics_json())
        if self.tracer is not None and self.trace_path is not None:
            self.trace_path.write_text(self.tracer.to_chrome_trace())
