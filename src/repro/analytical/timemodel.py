"""Execution-time model for one epoch — paper Eq. (2) and (3).

``t'(θ) = t_load + k * (t_grad + t_sync)`` where

* ``t_load = (D / n) / B_S3`` — each function pulls its dataset partition
  from long-term storage once per epoch;
* ``t_grad`` — gradient computation on the per-iteration mini-batch, derived
  from the model's per-MB compute cost and the memory-proportional CPU share
  u(m) Lambda grants;
* ``t_sync`` — Eq. (3): ``(3n - 2) * (M / b_s + l_s)`` for passive storage
  (functions aggregate through the store: push gradient, re-pull, push
  merged model) and ``(2n - 2) * (M / b_s + l_s)`` for VM-PS, which
  aggregates locally (Fig. 5).
"""

from __future__ import annotations

from repro.common.errors import InfeasibleAllocationError
from repro.common.types import Allocation, EpochTimeBreakdown
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.ml.models import Workload


def compute_speedup(
    workload: Workload, memory_mb: int, platform: PlatformConfig = DEFAULT_PLATFORM
) -> float:
    """Effective speedup from the CPU share granted at ``memory_mb``.

    Lambda grants ``memory / 1769`` vCPUs; a model can only exploit them up
    to its ``max_speedup`` (intra-function parallel efficiency), and never
    runs faster than its share when below one full vCPU.
    """
    share = platform.vcpu_share(memory_mb)
    return min(share, workload.profile.max_speedup)


def sync_time_per_iteration(
    workload: Workload, alloc: Allocation, platform: PlatformConfig = DEFAULT_PLATFORM
) -> float:
    """Parameter-synchronization time per BSP iteration t_p(θ) — Eq. (3)."""
    svc = platform.storage_config(alloc.storage)
    transfers = (
        2 * alloc.n_functions - 2
        if not alloc.storage.is_passive
        else 3 * alloc.n_functions - 2
    )
    transfers = max(0, transfers)  # n=1 with VM-PS: nothing to synchronize
    return transfers * (workload.model_mb / svc.bandwidth_mb_s + svc.latency_s)


def is_feasible(
    workload: Workload, alloc: Allocation, platform: PlatformConfig = DEFAULT_PLATFORM
) -> bool:
    """True when θ violates no hard platform/storage limit."""
    try:
        check_feasible(workload, alloc, platform)
    except InfeasibleAllocationError:
        return False
    return True


def check_feasible(
    workload: Workload, alloc: Allocation, platform: PlatformConfig = DEFAULT_PLATFORM
) -> None:
    """Raise :class:`InfeasibleAllocationError` when θ breaks a hard limit.

    Checks: memory bounds, working-set floor, account concurrency, and the
    storage object-size limit (DynamoDB's 400 KB cap makes it "N/A" for
    MobileNet/ResNet/BERT — Table II, Fig. 18).
    """
    lim = platform.limits
    if alloc.memory_mb < lim.min_memory_mb or alloc.memory_mb > lim.max_memory_mb:
        raise InfeasibleAllocationError(
            f"memory {alloc.memory_mb} MB outside [{lim.min_memory_mb}, {lim.max_memory_mb}]"
        )
    if alloc.n_functions > lim.max_concurrency:
        raise InfeasibleAllocationError(
            f"{alloc.n_functions} functions exceed account concurrency {lim.max_concurrency}"
        )
    floor = workload.min_memory_mb(alloc.n_functions)
    if alloc.memory_mb < floor:
        raise InfeasibleAllocationError(
            f"{workload.name} needs >= {floor} MB per function, got {alloc.memory_mb}"
        )
    svc = platform.storage_config(alloc.storage)
    if workload.model_mb > svc.object_limit_mb:
        raise InfeasibleAllocationError(
            f"model {workload.model_mb:.2f} MB exceeds {alloc.storage.value} "
            f"object limit {svc.object_limit_mb:.2f} MB"
        )


def epoch_time(
    workload: Workload, alloc: Allocation, platform: PlatformConfig = DEFAULT_PLATFORM
) -> EpochTimeBreakdown:
    """Per-epoch execution-time breakdown t'(θ) — Eq. (2).

    Raises :class:`InfeasibleAllocationError` for infeasible allocations.
    """
    check_feasible(workload, alloc, platform)
    n = alloc.n_functions
    k = workload.iterations_per_epoch(n)
    partition_mb = workload.dataset_mb / n
    load_s = partition_mb / platform.limits.dataset_load_bandwidth_mb_s
    u = workload.profile.compute_s_per_mb / compute_speedup(
        workload, alloc.memory_mb, platform
    )
    compute_s = partition_mb * u  # = k * (per-iteration batch MB) * u
    sync_s = k * sync_time_per_iteration(workload, alloc, platform)
    return EpochTimeBreakdown(load_s=load_s, compute_s=compute_s, sync_s=sync_s)
