"""Analytical JCT/cost models and Pareto-boundary profiling (paper §III-B)."""

from repro.analytical.calibration import (
    ComputeCalibration,
    StorageCalibration,
    fit_compute_constant,
    fit_storage_constants,
    measure_epochs,
)
from repro.analytical.costmodel import epoch_cost, function_price_per_second
from repro.analytical.pareto import ProfiledAllocation, pareto_front
from repro.analytical.profiler import ParetoProfiler, ProfileResult
from repro.analytical.sensitivity import (
    SensitivityReport,
    full_sweep,
    sweep_knob,
)
from repro.analytical.space import AllocationSpace, default_space
from repro.analytical.timemodel import (
    check_feasible,
    compute_speedup,
    epoch_time,
    is_feasible,
    sync_time_per_iteration,
)

__all__ = [
    "AllocationSpace",
    "ComputeCalibration",
    "StorageCalibration",
    "fit_compute_constant",
    "fit_storage_constants",
    "measure_epochs",
    "ParetoProfiler",
    "ProfileResult",
    "ProfiledAllocation",
    "SensitivityReport",
    "full_sweep",
    "sweep_knob",
    "check_feasible",
    "compute_speedup",
    "default_space",
    "epoch_cost",
    "epoch_time",
    "function_price_per_second",
    "is_feasible",
    "pareto_front",
    "sync_time_per_iteration",
]
