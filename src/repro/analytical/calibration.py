"""Calibrating the analytical models from measurements.

The paper's authors fitted Eq. (2)-(5)'s constants (u(m), b_s, l_s) from
profiling runs on AWS. This module closes the same loop against the
simulator: run measured epochs, then recover the constants by least
squares. It serves two purposes:

* **self-validation** — the recovered constants must match the configured
  ones (tested), which certifies that the simulator and the analytical
  model describe the same system;
* **user workflow** — a user porting this library to a different substrate
  (their own cluster, another cloud) can calibrate a
  :class:`~repro.config.PlatformConfig` from their own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import InfeasibleAllocationError, ValidationError
from repro.common.types import Allocation, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.timemodel import compute_speedup, epoch_time
from repro.faas.platform import EpochExecution, FaaSPlatform
from repro.ml.models import Workload


@dataclass(frozen=True, slots=True)
class ComputeCalibration:
    """Fitted compute constant for one model family."""

    compute_s_per_mb: float
    residual_rel: float
    n_samples: int


@dataclass(frozen=True, slots=True)
class StorageCalibration:
    """Fitted per-transfer constants of one storage service (Eq. 3)."""

    kind: StorageKind
    latency_s: float
    bandwidth_mb_s: float
    residual_rel: float


def measure_epochs(
    workload: Workload,
    allocations: list[Allocation],
    seeds: list[int],
    platform: PlatformConfig = DEFAULT_PLATFORM,
    warmup: int = 1,
    epochs: int = 3,
) -> dict[Allocation, float]:
    """Mean measured (simulated) epoch wall time per allocation."""
    if not allocations:
        raise ValidationError("need at least one allocation to measure")
    out: dict[Allocation, float] = {}
    for alloc in allocations:
        times = []
        base = epoch_time(workload, alloc, platform)
        for seed in seeds:
            sim = FaaSPlatform(platform=platform, seed=seed)
            spec = EpochExecution(
                group="calib",
                n_functions=alloc.n_functions,
                memory_mb=alloc.memory_mb,
                load_s=base.load_s,
                compute_s=base.compute_s,
                sync_s=base.sync_s,
            )
            for _ in range(warmup):
                sim.execute_epoch(spec)
            for _ in range(epochs):
                times.append(sim.execute_epoch(spec).wall_time_s)
        out[alloc] = float(np.mean(times))
    return out


def fit_compute_constant(
    workload: Workload,
    seeds: list[int] | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> ComputeCalibration:
    """Recover u's base constant from measured epochs at varying memory.

    Runs single-function epochs (no synchronization to first order) at
    several memory levels, subtracts the known load time, and solves
    ``compute = partition_mb * c / speedup(m)`` for ``c`` by least squares.
    """
    seeds = seeds or [0, 1]
    n = 1
    memories = [m for m in (1024, 1769, 3072) if m >= workload.min_memory_mb(n)]
    if not memories:
        memories = [workload.min_memory_mb(n) + 512]
    allocs = [Allocation(n, m, StorageKind.VMPS) for m in memories]
    measured = measure_epochs(workload, allocs, seeds, platform)
    partition_mb = workload.dataset_mb / n
    xs, ys = [], []
    for alloc, wall in measured.items():
        base = epoch_time(workload, alloc, platform)
        compute_measured = wall - base.load_s - base.sync_s
        speed = compute_speedup(workload, alloc.memory_mb, platform)
        xs.append(partition_mb / speed)
        ys.append(compute_measured)
    xs_arr, ys_arr = np.asarray(xs), np.asarray(ys)
    c = float((xs_arr @ ys_arr) / (xs_arr @ xs_arr))
    resid = float(
        np.linalg.norm(ys_arr - c * xs_arr) / max(np.linalg.norm(ys_arr), 1e-12)
    )
    return ComputeCalibration(
        compute_s_per_mb=c, residual_rel=resid, n_samples=len(xs)
    )


def fit_compute_constant_from_epochs(
    workload: Workload,
    samples: list[tuple[Allocation, float]],
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> ComputeCalibration | None:
    """Refit u's base constant from *already executed* epochs.

    The diagnostics drift audit feeds this with (allocation, observed
    compute seconds) pairs from a finished run, closing the calibration
    loop without extra measurement runs: ``compute = (D/n) * c / speedup(m)``
    solved for ``c`` by least squares over the observed epochs.

    Returns ``None`` when no usable samples exist (e.g. every observed
    compute time is zero, as in a trace without compute spans).
    """
    xs, ys = [], []
    for alloc, compute_s in samples:
        if compute_s <= 0:
            continue
        partition_mb = workload.dataset_mb / alloc.n_functions
        speed = compute_speedup(workload, alloc.memory_mb, platform)
        xs.append(partition_mb / speed)
        ys.append(compute_s)
    if not xs:
        return None
    xs_arr, ys_arr = np.asarray(xs), np.asarray(ys)
    c = float((xs_arr @ ys_arr) / (xs_arr @ xs_arr))
    resid = float(
        np.linalg.norm(ys_arr - c * xs_arr) / max(np.linalg.norm(ys_arr), 1e-12)
    )
    return ComputeCalibration(
        compute_s_per_mb=c, residual_rel=resid, n_samples=len(xs)
    )


def fit_storage_constants(
    workload: Workload,
    kind: StorageKind,
    seeds: list[int] | None = None,
    platform: PlatformConfig = DEFAULT_PLATFORM,
    function_counts: tuple[int, ...] = (2, 6, 12, 24),
) -> StorageCalibration:
    """Recover (l_s, b_s) from measured sync times at varying n.

    Per Eq. (3), sync per iteration is ``T(n) = a(n) * (M / b_s + l_s)``
    with ``a(n) = 3n - 2`` (passive) or ``2n - 2`` (VM-PS). Measuring total
    epoch time at several n and subtracting the known load/compute parts
    isolates ``k * T(n)``; regressing the per-transfer time on 1 recovers
    the combined constant, and the model size then splits it into latency
    and bandwidth via a two-size measurement.
    """
    seeds = seeds or [0, 1]
    svc = platform.storage_config(kind)
    memory = max(1769, workload.min_memory_mb(max(function_counts)))
    allocs = []
    for n in function_counts:
        alloc = Allocation(n, memory, kind)
        try:
            epoch_time(workload, alloc, platform)
        except InfeasibleAllocationError:
            continue
        allocs.append(alloc)
    if len(allocs) < 2:
        raise ValidationError(
            f"not enough feasible calibration points for {kind.value}"
        )
    measured = measure_epochs(workload, allocs, seeds, platform)
    per_transfer = []
    for alloc, wall in measured.items():
        base = epoch_time(workload, alloc, platform)
        sync_measured = wall - base.load_s - base.compute_s
        n = alloc.n_functions
        k = workload.iterations_per_epoch(n)
        transfers = (2 * n - 2) if kind is StorageKind.VMPS else (3 * n - 2)
        if transfers <= 0 or k <= 0:
            continue
        per_transfer.append(sync_measured / (k * transfers))
    t_mean = float(np.mean(per_transfer))
    # Split the combined per-transfer time into latency + size/bandwidth
    # using the configured bandwidth share as the identifying assumption
    # (a single model size cannot separate them; the self-validation test
    # uses the known split).
    size_term = workload.model_mb / svc.bandwidth_mb_s
    latency = max(1e-6, t_mean - size_term)
    resid = float(np.std(per_transfer) / max(t_mean, 1e-12))
    return StorageCalibration(
        kind=kind,
        latency_s=latency,
        bandwidth_mb_s=svc.bandwidth_mb_s,
        residual_rel=resid,
    )
