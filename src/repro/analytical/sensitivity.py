"""Sensitivity analysis over the platform's calibration constants.

The analytical models (Eq. 2-5) encode calibrated constants: storage
latencies/bandwidths, Lambda's GB-second price, the model's per-MB compute
cost. This module perturbs one knob at a time and reports how the Pareto
boundary and the constraint-optimal decision shift — which calibrations the
reproduction's conclusions are sensitive to, and which do not matter.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.types import Allocation, StorageKind
from repro.config import DEFAULT_PLATFORM, PlatformConfig, StorageServiceConfig
from repro.analytical.profiler import ParetoProfiler
from repro.ml.models import Workload


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """The profiler's outcome under one perturbed platform."""

    factor: float
    n_pareto: int
    fastest: Allocation
    cheapest: Allocation
    fastest_time_s: float
    cheapest_cost_usd: float


@dataclass(frozen=True, slots=True)
class SensitivityReport:
    """A sweep of one knob."""

    knob: str
    points: tuple[SensitivityPoint, ...]

    @property
    def decision_stable(self) -> bool:
        """True when the fastest/cheapest allocations never change."""
        fastest = {p.fastest for p in self.points}
        cheapest = {p.cheapest for p in self.points}
        return len(fastest) == 1 and len(cheapest) == 1


def _scale_storage(
    platform: PlatformConfig,
    kind: StorageKind,
    **scaled_fields: float,
) -> PlatformConfig:
    """A platform copy with one storage service's fields multiplied."""
    catalog = dict(platform.storage)
    cfg = catalog[kind]
    updates = {
        name: getattr(cfg, name) * factor for name, factor in scaled_fields.items()
    }
    catalog[kind] = dataclasses.replace(cfg, **updates)
    return dataclasses.replace(platform, storage=catalog)


KNOBS = {
    # knob name -> function(platform, factor) -> platform
    "s3_latency": lambda p, f: _scale_storage(p, StorageKind.S3, latency_s=f),
    "s3_bandwidth": lambda p, f: _scale_storage(p, StorageKind.S3, bandwidth_mb_s=f),
    "vmps_price": lambda p, f: _scale_storage(p, StorageKind.VMPS, usd_per_minute=f),
    "elasticache_price": lambda p, f: _scale_storage(
        p, StorageKind.ELASTICACHE, usd_per_minute=f
    ),
    "lambda_price": lambda p, f: dataclasses.replace(
        p,
        pricing=dataclasses.replace(
            p.pricing, usd_per_gb_second=p.pricing.usd_per_gb_second * f
        ),
    ),
}


def sweep_knob(
    workload: Workload,
    knob: str,
    factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> SensitivityReport:
    """Profile the workload under each perturbation of ``knob``."""
    if knob not in KNOBS:
        raise ValidationError(f"unknown knob {knob!r}; available: {sorted(KNOBS)}")
    points = []
    for factor in factors:
        perturbed = KNOBS[knob](platform, factor)
        profile = ParetoProfiler(platform=perturbed).profile(workload)
        points.append(
            SensitivityPoint(
                factor=factor,
                n_pareto=len(profile.pareto),
                fastest=profile.fastest().allocation,
                cheapest=profile.cheapest().allocation,
                fastest_time_s=profile.fastest().time_s,
                cheapest_cost_usd=profile.cheapest().cost_usd,
            )
        )
    return SensitivityReport(knob=knob, points=tuple(points))


def full_sweep(
    workload: Workload,
    factors: tuple[float, ...] = (0.5, 1.0, 2.0),
    platform: PlatformConfig = DEFAULT_PLATFORM,
) -> dict[str, SensitivityReport]:
    """Sweep every knob; returns reports keyed by knob name."""
    return {
        knob: sweep_knob(workload, knob, factors, platform) for knob in KNOBS
    }
