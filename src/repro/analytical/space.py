"""Enumeration of the allocation space Θ = N x M x S (paper Eq. 1).

The raw space is huge (memory 128..10240 MB at 1 MB granularity, up to 3000
concurrent functions, several storage services). Like the paper's profiler
we enumerate a geometric grid over n and the practically relevant memory
steps, then filter by feasibility for the given workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.common.types import Allocation, StorageKind
from repro.common.validation import require_non_empty
from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.analytical.timemodel import is_feasible
from repro.ml.models import Workload

DEFAULT_MEMORY_GRID: tuple[int, ...] = (
    512, 1024, 1769, 2048, 3072, 4096, 6144, 8192, 10240,
)
DEFAULT_FUNCTION_GRID: tuple[int, ...] = (
    1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 50, 75, 100, 150, 200, 300,
)


@dataclass(frozen=True)
class AllocationSpace:
    """A finite grid over Θ.

    Attributes:
        function_counts: candidate n values.
        memory_grid: candidate m values (MB).
        storages: candidate external storage services.
    """

    function_counts: Sequence[int] = DEFAULT_FUNCTION_GRID
    memory_grid: Sequence[int] = DEFAULT_MEMORY_GRID
    storages: Sequence[StorageKind] = field(
        default_factory=lambda: tuple(StorageKind)
    )

    def __post_init__(self) -> None:
        require_non_empty(self.function_counts, "function_counts")
        require_non_empty(self.memory_grid, "memory_grid")
        require_non_empty(self.storages, "storages")

    def __len__(self) -> int:
        return len(self.function_counts) * len(self.memory_grid) * len(self.storages)

    def enumerate(self) -> Iterator[Allocation]:
        """All grid points, unfiltered."""
        for s in self.storages:
            for n in self.function_counts:
                for m in self.memory_grid:
                    yield Allocation(n_functions=n, memory_mb=m, storage=s)

    def feasible(
        self, workload: Workload, platform: PlatformConfig = DEFAULT_PLATFORM
    ) -> list[Allocation]:
        """Grid points that satisfy every hard limit for ``workload``."""
        return [a for a in self.enumerate() if is_feasible(workload, a, platform)]

    def restrict_storage(self, *kinds: StorageKind) -> "AllocationSpace":
        """A copy limited to the given storage services (Fig. 16-18 pinning)."""
        return AllocationSpace(
            function_counts=self.function_counts,
            memory_grid=self.memory_grid,
            storages=tuple(kinds),
        )


def default_space(max_functions: int | None = None) -> AllocationSpace:
    """The default grid, optionally truncating the function-count axis."""
    if max_functions is None:
        return AllocationSpace()
    counts = tuple(n for n in DEFAULT_FUNCTION_GRID if n <= max_functions)
    return AllocationSpace(function_counts=counts or (max_functions,))
