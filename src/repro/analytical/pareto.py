"""Pareto-boundary extraction over the (time, cost) allocation space.

Paper §III-B.3 / Fig. 7: an allocation θ2 is *dominated* when some θ1 is
both faster and cheaper. CE-scaling restricts every search to the Pareto
subset 𝒫, which shrinks the planner's candidate set from hundreds of points
to a few dozen (the Fig. 21 overhead reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.types import Allocation, EpochCostBreakdown, EpochTimeBreakdown


@dataclass(frozen=True, slots=True)
class ProfiledAllocation:
    """An allocation with its estimated per-epoch time and cost."""

    allocation: Allocation
    time: EpochTimeBreakdown
    cost: EpochCostBreakdown

    @property
    def time_s(self) -> float:
        return self.time.total_s

    @property
    def cost_usd(self) -> float:
        return self.cost.total_usd


def pareto_front(
    points: Iterable[ProfiledAllocation], strict: bool = True
) -> list[ProfiledAllocation]:
    """The Pareto-optimal subset minimizing (time, cost), sorted by time.

    A point survives if no other point is <= in both dimensions and < in at
    least one. With ``strict=False``, duplicated (time, cost) pairs all
    survive; by default only the first of each duplicate group is kept.

    O(n log n): sort by (time, cost) ascending, keep points whose cost is a
    new running minimum.
    """
    items = sorted(points, key=lambda p: (p.time_s, p.cost_usd))
    front: list[ProfiledAllocation] = []
    best_cost = float("inf")
    for p in items:
        if p.cost_usd < best_cost:
            front.append(p)
            best_cost = p.cost_usd
        elif not strict and p.cost_usd == best_cost and front and (
            p.time_s == front[-1].time_s
        ):
            front.append(p)
    return front


def dominated_fraction(points: Sequence[ProfiledAllocation]) -> float:
    """Fraction of points pruned by the Pareto boundary (reporting helper)."""
    if not points:
        return 0.0
    return 1.0 - len(pareto_front(points)) / len(points)


def is_dominated(p: ProfiledAllocation, others: Iterable[ProfiledAllocation]) -> bool:
    """True if some other point is at least as good in both dimensions and
    strictly better in one."""
    for q in others:
        if q is p:
            continue
        if (
            q.time_s <= p.time_s
            and q.cost_usd <= p.cost_usd
            and (q.time_s < p.time_s or q.cost_usd < p.cost_usd)
        ):
            return True
    return False
